//! Crash-injection suite for the durability layer: kill the workload at
//! **every** `store.*` yield point (exhaustive over one fixed workload),
//! plus a seed-randomized mini-sweep (CI runs the big sweep via the
//! `sim --scenario store` binary). Every run must recover to the last
//! durable generation with cold-solve-parity ranks and keep serving.

use d2pr_sim::crash::{run_store_scenario, StoreScenarioConfig};
use std::collections::BTreeSet;

/// One fixed workload whose event stream covers all eleven `store.*`
/// labels: snapshots every 2 ingests force rotate + retire traffic, and
/// enough batches ride the log to crash inside appends and fsyncs. Node
/// churn is on, so the sweep also kills the store between the node-op
/// frames of the grow/tombstone batches.
fn exhaustive_config() -> StoreScenarioConfig {
    StoreScenarioConfig {
        seed: 0xE0_0001,
        nodes: 40,
        batches: 6,
        snapshot_every: 2,
        threads: 1,
        crash_at: None,
        node_churn: true,
    }
}

#[test]
fn a_crash_at_every_yield_point_recovers_to_the_durable_generation() {
    // Pass 1: count the crash-free run's events.
    let mut cfg = exhaustive_config();
    let clean = run_store_scenario(&cfg).expect("crash-free run");
    assert!(clean.crashed.is_none());
    assert_eq!(clean.final_generation, cfg.batches as u64);
    let total = clean.store_events;
    assert!(total > 30, "workload too small to be exhaustive: {total}");

    // Pass 2: kill at every event boundary. run_store_scenario checks
    // the full contract internally; here we additionally demand that the
    // sweep reached every label in the placement map.
    let mut labels: BTreeSet<&'static str> = BTreeSet::new();
    for k in 0..total {
        cfg.crash_at = Some(k);
        let report = run_store_scenario(&cfg).unwrap_or_else(|e| panic!("crash at event {k}: {e}"));
        let (label, index) = report.crashed.expect("kill point within the run");
        assert_eq!(index, k);
        labels.insert(label);
    }
    let expected: BTreeSet<&'static str> = [
        "store.log.append.frame",
        "store.log.append.body",
        "store.log.fsync",
        "store.serve.ingest",
        "store.ingest.done",
        "store.snap.write",
        "store.snap.fsync",
        "store.snap.rename",
        "store.snap.dirsync",
        "store.log.rotate",
        "store.log.retire",
    ]
    .into_iter()
    .collect();
    assert_eq!(labels, expected, "some yield points were never crashed");
}

#[test]
fn randomized_seed_sweep_always_recovers() {
    let mut crashes = 0u64;
    for seed in 0..60 {
        let report = run_store_scenario(&StoreScenarioConfig::from_seed(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        crashes += u64::from(report.crashed.is_some());
    }
    // The crash point is drawn slightly beyond the expected event count,
    // so a healthy sweep mixes crashed and crash-free runs.
    assert!(crashes >= 20, "sweep injected too few crashes: {crashes}");
    assert!(crashes <= 58, "sweep never ran crash-free: {crashes}");
}
