//! Fault-class tests for the deterministic simulation harness.
//!
//! Two disjoint suites share this file:
//!
//! * **Default build** — a seed batch must pass every invariant, and each
//!   injected fault class (slow readers pinning a retiring slot, an
//!   `UpdateError` mid-ingest, a panicking pool job, a panicking scenario
//!   task) must produce its documented response.
//! * **`--features sim-bug`** — the planted publish-ordering bug in
//!   `d2pr-core` (the writer skips the reader drain) must be *caught* by
//!   the shadow model, shrunk, and reproduced from the shrunk schedule.
//!   The two suites are mutually exclusive: with the bug compiled in, the
//!   default assertions would rightly fail.

use d2pr_sim::scenario::{run_scenario, run_scenario_with, ScenarioConfig};

#[cfg(not(feature = "sim-bug"))]
mod healthy {
    use super::*;
    use d2pr_sim::sched::{Sim, SimOptions};
    use d2pr_sim::shrink::shrink;
    use std::io::Read;
    use std::process::{Command, Stdio};
    use std::time::{Duration, Instant};

    /// A batch of seeded schedules all uphold the five invariants, and the
    /// sweep as a whole exercises the interesting interleavings: reads
    /// landing mid-refresh and writers spinning in their drain loop. (The
    /// large sweeps run in CI through the release `sim` binary; this keeps
    /// the debug-mode test suite quick.)
    #[test]
    fn seed_batch_upholds_all_invariants() {
        let mut mid_refresh = 0;
        let mut drain_spins = 0;
        let mut pin_retries = 0;
        for seed in 0..20 {
            let cfg = ScenarioConfig::from_seed(seed);
            let report = run_scenario(&cfg).unwrap_or_else(|f| panic!("seed={seed} failed:\n{f}"));
            mid_refresh += report.metrics.mid_refresh_reads;
            drain_spins += report.metrics.drain_spins;
            pin_retries += report.metrics.pin_retries;
        }
        assert!(mid_refresh > 0, "no read ever landed during a refresh");
        assert!(drain_spins > 0, "no writer ever waited on a pinned reader");
        assert!(pin_retries > 0, "no pin ever raced a publication");
    }

    /// Reader parity across node-growth publishes and tombstone masking:
    /// force node churn onto a few seeds (covering both graph-size bands
    /// and both thread counts) and let the scenario's parity check — which
    /// replicates the serving layer's teleport zero-extension and
    /// tombstone rules — vet every snapshot the readers took.
    #[test]
    fn node_churn_scenarios_uphold_reader_parity() {
        let mut grown_runs = 0;
        for seed in [1, 4, 9, 13, 19] {
            let mut cfg = ScenarioConfig::from_seed(seed);
            cfg.node_churn = true;
            let report = run_scenario(&cfg).unwrap_or_else(|f| panic!("seed={seed} failed:\n{f}"));
            grown_runs += u64::from(report.metrics.publishes > 0);
        }
        assert_eq!(grown_runs, 5, "every node-churn run must publish");
    }

    /// A successful run replays exactly from its recorded choices.
    #[test]
    fn successful_runs_replay_deterministically() {
        let cfg = ScenarioConfig::from_seed(11);
        let a = run_scenario(&cfg).expect("seed 11 passes");
        let b = run_scenario_with(&cfg, Some(a.choices.clone())).expect("replay passes");
        assert_eq!(a.choices, b.choices, "replay diverged from the recording");
        assert_eq!(
            a.metrics.publishes, b.metrics.publishes,
            "replay observed different publishes"
        );
    }

    /// Fault class: `UpdateError` mid-ingest. The scenario injects an
    /// out-of-range batch between generations and asserts (inside the
    /// writer task) that the failed `ingest_all` leaves every published
    /// generation unchanged and the manager serviceable.
    #[test]
    fn failed_ingest_leaves_published_generations_intact() {
        let mut cfg = ScenarioConfig::from_seed(21);
        cfg.invalid_batch = true;
        let report = run_scenario(&cfg).unwrap_or_else(|f| panic!("{f}"));
        // Writer still publishes every good batch on both shards.
        assert_eq!(report.metrics.publishes, 2 * cfg.batches as u64);
    }

    /// Fault class: pathologically slow readers. Holding pinned readers
    /// out of the schedule forces the writer into its drain loop; the run
    /// must still complete (liveness) with every invariant intact.
    #[test]
    fn slow_readers_pin_the_retiring_slot_without_deadlock() {
        let mut spins = 0;
        for seed in [2, 7, 12, 22] {
            let mut cfg = ScenarioConfig::from_seed(seed);
            cfg.chaos.pin_hold_steps = 60;
            let report = run_scenario(&cfg).unwrap_or_else(|f| panic!("seed={seed}:\n{f}"));
            spins += report.metrics.drain_spins;
        }
        assert!(spins > 0, "slow-reader chaos never made a writer spin");
    }

    /// Fault class: a scenario task panics (outside the pool's abort
    /// guard). The harness reports `task-panic` instead of hanging.
    #[test]
    fn injected_task_panic_fails_loudly_not_silently() {
        let mut cfg = ScenarioConfig::from_seed(5);
        // First publication attempt: the granted writer panics instead.
        cfg.chaos.panic_at = Some(("serving.publish".to_string(), 1));
        let failure = run_scenario(&cfg).expect_err("injected panic must fail the run");
        assert_eq!(failure.kind, "task-panic", "unexpected failure:\n{failure}");
        assert!(
            failure.message.contains("chaos: injected panic"),
            "wrong panic surfaced:\n{failure}"
        );
    }

    /// A failing schedule shrinks to a prefix that still reproduces the
    /// same failure kind.
    #[test]
    fn failures_shrink_to_a_replayable_prefix() {
        let mut cfg = ScenarioConfig::from_seed(5);
        cfg.chaos.panic_at = Some(("serving.publish".to_string(), 1));
        let failure = run_scenario(&cfg).expect_err("injected panic must fail the run");
        let repro = shrink(cfg.seed, &failure, |p| run_scenario_with(&cfg, Some(p)));
        assert_eq!(repro.kind, "task-panic");
        assert!(repro.schedule.len() <= failure.choices.len());
        let replayed = run_scenario_with(&cfg, Some(repro.schedule.clone()))
            .expect_err("shrunk schedule must still fail");
        assert_eq!(replayed.kind, "task-panic");
    }

    /// Fault class: a pool job panics mid-refresh. The pool's barrier
    /// protocol cannot recover, so the documented response is a loud
    /// process abort — not a deadlocked barrier pair. Must run in a
    /// subprocess: the abort takes the whole process with it.
    #[test]
    fn injected_pool_job_panic_aborts_the_process() {
        if std::env::var_os("D2PR_SIM_CHILD_ABORT").is_some() {
            // Child: a simulated pool run with a panic injected at the
            // job-execution yield point (inside the abort-on-unwind guard).
            let mut opts = SimOptions::from_seed(7);
            opts.chaos.panic_at = Some(("pool.job.run".to_string(), 1));
            let mut sim = Sim::new(opts);
            sim.spawn("pool-driver", || {
                d2pr_core::pool::run_benign_job_for_tests(2);
            });
            let _ = sim.run();
            // Reaching here means the abort never happened.
            eprintln!("sim returned without aborting");
            std::process::exit(42);
        }

        let exe = std::env::current_exe().expect("test binary path");
        let mut child = Command::new(exe)
            .args([
                "--exact",
                "healthy::injected_pool_job_panic_aborts_the_process",
            ])
            .arg("--nocapture")
            .env("D2PR_SIM_CHILD_ABORT", "1")
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn child test process");

        // The whole point: abort, not deadlock. Poll with a hard timeout.
        let deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            if let Some(s) = child.try_wait().expect("poll child") {
                break s;
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                panic!("pool deadlocked instead of aborting on a panicking job");
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        let mut stderr = String::new();
        child
            .stderr
            .take()
            .expect("piped stderr")
            .read_to_string(&mut stderr)
            .expect("read child stderr");
        assert!(
            !status.success() && status.code() != Some(42),
            "child must die to the abort, got {status:?}\nstderr:\n{stderr}"
        );
        assert!(
            stderr.contains("aborting (the barrier protocol cannot recover)"),
            "abort did not come from the pool guard:\nstderr:\n{stderr}"
        );
        assert!(
            stderr.contains("chaos: injected panic at pool.job.run"),
            "abort did not come from the injected fault:\nstderr:\n{stderr}"
        );
    }
}

#[cfg(feature = "sim-bug")]
mod planted_bug {
    use super::*;
    use d2pr_sim::shrink::shrink;

    /// The planted publish-ordering bug (`begin_write` skips the reader
    /// drain) must be caught by the shadow model within a small seed
    /// sweep, shrink to a printable schedule, and reproduce from it.
    #[test]
    fn planted_drain_skip_is_caught_and_shrunk() {
        let mut caught = None;
        for seed in 0..64 {
            let cfg = ScenarioConfig::from_seed(seed);
            if let Err(failure) = run_scenario(&cfg) {
                caught = Some((cfg, failure));
                break;
            }
        }
        let (cfg, failure) =
            caught.expect("64 seeds explored without catching the planted drain skip");
        assert_eq!(
            failure.kind, "write-begin-while-pinned",
            "planted bug surfaced as the wrong class:\n{failure}"
        );

        let repro = shrink(cfg.seed, &failure, |p| run_scenario_with(&cfg, Some(p)));
        println!("planted-bug repro: {repro}");
        assert_eq!(repro.kind, "write-begin-while-pinned");
        let replayed = run_scenario_with(&cfg, Some(repro.schedule.clone()))
            .expect_err("shrunk schedule must still trip the planted bug");
        assert_eq!(replayed.kind, "write-begin-while-pinned");
    }
}
