//! Seed-sweep driver: explore N seeded runs, print `seed=<s>` plus a
//! reproducer on the first failure.
//!
//! ```text
//! sim [--scenario serving|store] [--seeds N] [--start S] [--jobs J] [--max-steps M]
//! ```
//!
//! Two scenarios share the driver: `serving` (default) sweeps seeded
//! schedules of the reader/writer concurrency scenario and shrinks the
//! first failing schedule; `store` sweeps seeded crash-injection runs of
//! the durability layer (each seed kills the workload at a seed-derived
//! `store.*` I/O boundary and checks the recovery contract). Each seed is
//! an independent run, so both sweeps parallelize trivially across
//! `--jobs` OS threads. Exit code is non-zero on failure; the printed
//! `seed=` line is the complete reproducer
//! (`run_scenario(&ScenarioConfig::from_seed(s))` /
//! `run_store_scenario(&StoreScenarioConfig::from_seed(s))`).

use d2pr_sim::crash::{run_store_scenario, StoreScenarioConfig};
use d2pr_sim::scenario::{run_scenario, run_scenario_with, ScenarioConfig};
use d2pr_sim::sched::{SimFailure, SimMetrics};
use d2pr_sim::shrink::shrink;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct Args {
    scenario: Scenario,
    seeds: u64,
    start: u64,
    jobs: usize,
    max_steps: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Serving,
    Store,
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: Scenario::Serving,
        seeds: 100,
        start: 0,
        jobs: std::thread::available_parallelism().map_or(4, |p| p.get()),
        max_steps: 200_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--scenario" => {
                args.scenario = match value("--scenario").as_str() {
                    "serving" => Scenario::Serving,
                    "store" => Scenario::Store,
                    other => die(&format!("unknown scenario {other} (serving|store)")),
                }
            }
            "--seeds" => args.seeds = parse(&value("--seeds")),
            "--start" => args.start = parse(&value("--start")),
            "--jobs" => args.jobs = parse::<usize>(&value("--jobs")).max(1),
            "--max-steps" => args.max_steps = parse(&value("--max-steps")),
            "--help" | "-h" => {
                println!(
                    "usage: sim [--scenario serving|store] [--seeds N] [--start S] \
                     [--jobs J] [--max-steps M]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad number {s}")))
}

fn die(msg: &str) -> ! {
    eprintln!("sim: {msg}");
    std::process::exit(2);
}

/// Crash-injection sweep over the durability layer: one seeded
/// [`run_store_scenario`] per seed, parallel across jobs, fail-fast on
/// the lowest failing seed (deterministically replayable from it alone).
fn store_sweep(args: &Args) -> ! {
    let t0 = Instant::now();
    let next = AtomicU64::new(args.start);
    let end = args.start + args.seeds;
    let stop = AtomicBool::new(false);
    let first_failure: Mutex<Option<(u64, String)>> = Mutex::new(None);
    // (runs, crashes injected, store events, batches replayed on recovery)
    let totals: Mutex<(u64, u64, u64, u64)> = Mutex::new((0, 0, 0, 0));

    std::thread::scope(|scope| {
        for _ in 0..args.jobs {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let seed = next.fetch_add(1, Ordering::Relaxed);
                if seed >= end {
                    return;
                }
                match run_store_scenario(&StoreScenarioConfig::from_seed(seed)) {
                    Ok(report) => {
                        let mut t = totals.lock().unwrap();
                        t.0 += 1;
                        t.1 += u64::from(report.crashed.is_some());
                        t.2 += report.store_events;
                        t.3 += report
                            .recovered_generation
                            .map_or(0, |g| g.saturating_sub(report.acked_before_crash));
                    }
                    Err(message) => {
                        stop.store(true, Ordering::Relaxed);
                        let mut slot = first_failure.lock().unwrap();
                        if slot.as_ref().is_none_or(|(s, _)| seed < *s) {
                            *slot = Some((seed, message));
                        }
                    }
                }
            });
        }
    });

    if let Some((seed, message)) = first_failure.into_inner().unwrap() {
        eprintln!("FAIL seed={seed} scenario=store");
        eprintln!("{message}");
        eprintln!("reproduce: run_store_scenario(&StoreScenarioConfig::from_seed({seed}))");
        std::process::exit(1);
    }
    let (runs, crashes, events, in_flight) = totals.into_inner().unwrap();
    println!(
        "ok: {} crash-injection runs ({}..{}) in {:.1}s — {} crashes injected, \
         {} store events, {} in-flight generations recovered beyond the ack point",
        runs,
        args.start,
        end,
        t0.elapsed().as_secs_f64(),
        crashes,
        events,
        in_flight,
    );
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.scenario == Scenario::Store {
        store_sweep(&args);
    }
    let t0 = Instant::now();
    let next = AtomicU64::new(args.start);
    let end = args.start + args.seeds;
    let stop = AtomicBool::new(false);
    let first_failure: Mutex<Option<(u64, SimFailure)>> = Mutex::new(None);
    let totals: Mutex<(u64, SimMetrics)> = Mutex::new((0, SimMetrics::default()));

    std::thread::scope(|scope| {
        for _ in 0..args.jobs {
            scope.spawn(|| {
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let seed = next.fetch_add(1, Ordering::Relaxed);
                    if seed >= end {
                        return;
                    }
                    let mut cfg = ScenarioConfig::from_seed(seed);
                    cfg.max_steps = args.max_steps;
                    match run_scenario(&cfg) {
                        Ok(report) => {
                            let mut t = totals.lock().unwrap();
                            t.0 += 1;
                            t.1.steps += report.metrics.steps;
                            t.1.drain_spins += report.metrics.drain_spins;
                            t.1.publishes += report.metrics.publishes;
                            t.1.pin_retries += report.metrics.pin_retries;
                            t.1.mid_refresh_reads += report.metrics.mid_refresh_reads;
                            t.1.spawned_tasks += report.metrics.spawned_tasks;
                        }
                        Err(failure) => {
                            stop.store(true, Ordering::Relaxed);
                            let mut slot = first_failure.lock().unwrap();
                            // Keep the lowest failing seed for determinism.
                            if slot.as_ref().is_none_or(|(s, _)| seed < *s) {
                                *slot = Some((seed, failure));
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some((seed, failure)) = first_failure.into_inner().unwrap() {
        eprintln!("FAIL seed={seed} kind={}", failure.kind);
        eprintln!("{failure}");
        let mut cfg = ScenarioConfig::from_seed(seed);
        cfg.max_steps = args.max_steps;
        eprintln!("shrinking {} recorded choices…", failure.choices.len());
        let repro = shrink(seed, &failure, |prefix| {
            run_scenario_with(&cfg, Some(prefix))
        });
        eprintln!("{repro}");
        std::process::exit(1);
    }

    let (runs, m) = totals.into_inner().unwrap();
    println!(
        "ok: {} schedules ({}..{}) in {:.1}s — {} steps, {} publishes, \
         {} drain spins, {} pin retries, {} mid-refresh reads, {} tasks",
        runs,
        args.start,
        end,
        t0.elapsed().as_secs_f64(),
        m.steps,
        m.publishes,
        m.drain_spins,
        m.pin_retries,
        m.mid_refresh_reads,
        m.spawned_tasks,
    );
}
