//! Seed-sweep driver: explore N seeded schedules, print `seed=<s>` plus a
//! shrunk schedule on the first failure.
//!
//! ```text
//! sim [--seeds N] [--start S] [--jobs J] [--max-steps M]
//! ```
//!
//! Each seed is an independent simulation (own workload, own schedule), so
//! the sweep parallelizes trivially across `--jobs` OS threads. Exit code
//! is non-zero on failure; the printed `seed=` line is the complete
//! reproducer (`run_scenario(&ScenarioConfig::from_seed(s))`).

use d2pr_sim::scenario::{run_scenario, run_scenario_with, ScenarioConfig};
use d2pr_sim::sched::{SimFailure, SimMetrics};
use d2pr_sim::shrink::shrink;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

struct Args {
    seeds: u64,
    start: u64,
    jobs: usize,
    max_steps: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 100,
        start: 0,
        jobs: std::thread::available_parallelism().map_or(4, |p| p.get()),
        max_steps: 200_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = parse(&value("--seeds")),
            "--start" => args.start = parse(&value("--start")),
            "--jobs" => args.jobs = parse::<usize>(&value("--jobs")).max(1),
            "--max-steps" => args.max_steps = parse(&value("--max-steps")),
            "--help" | "-h" => {
                println!("usage: sim [--seeds N] [--start S] [--jobs J] [--max-steps M]");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad number {s}")))
}

fn die(msg: &str) -> ! {
    eprintln!("sim: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let next = AtomicU64::new(args.start);
    let end = args.start + args.seeds;
    let stop = AtomicBool::new(false);
    let first_failure: Mutex<Option<(u64, SimFailure)>> = Mutex::new(None);
    let totals: Mutex<(u64, SimMetrics)> = Mutex::new((0, SimMetrics::default()));

    std::thread::scope(|scope| {
        for _ in 0..args.jobs {
            scope.spawn(|| {
                loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let seed = next.fetch_add(1, Ordering::Relaxed);
                    if seed >= end {
                        return;
                    }
                    let mut cfg = ScenarioConfig::from_seed(seed);
                    cfg.max_steps = args.max_steps;
                    match run_scenario(&cfg) {
                        Ok(report) => {
                            let mut t = totals.lock().unwrap();
                            t.0 += 1;
                            t.1.steps += report.metrics.steps;
                            t.1.drain_spins += report.metrics.drain_spins;
                            t.1.publishes += report.metrics.publishes;
                            t.1.pin_retries += report.metrics.pin_retries;
                            t.1.mid_refresh_reads += report.metrics.mid_refresh_reads;
                            t.1.spawned_tasks += report.metrics.spawned_tasks;
                        }
                        Err(failure) => {
                            stop.store(true, Ordering::Relaxed);
                            let mut slot = first_failure.lock().unwrap();
                            // Keep the lowest failing seed for determinism.
                            if slot.as_ref().is_none_or(|(s, _)| seed < *s) {
                                *slot = Some((seed, failure));
                            }
                        }
                    }
                }
            });
        }
    });

    if let Some((seed, failure)) = first_failure.into_inner().unwrap() {
        eprintln!("FAIL seed={seed} kind={}", failure.kind);
        eprintln!("{failure}");
        let mut cfg = ScenarioConfig::from_seed(seed);
        cfg.max_steps = args.max_steps;
        eprintln!("shrinking {} recorded choices…", failure.choices.len());
        let repro = shrink(seed, &failure, |prefix| {
            run_scenario_with(&cfg, Some(prefix))
        });
        eprintln!("{repro}");
        std::process::exit(1);
    }

    let (runs, m) = totals.into_inner().unwrap();
    println!(
        "ok: {} schedules ({}..{}) in {:.1}s — {} steps, {} publishes, \
         {} drain spins, {} pin retries, {} mid-refresh reads, {} tasks",
        runs,
        args.start,
        end,
        t0.elapsed().as_secs_f64(),
        m.steps,
        m.publishes,
        m.drain_spins,
        m.pin_retries,
        m.mid_refresh_reads,
        m.spawned_tasks,
    );
}
