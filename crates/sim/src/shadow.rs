//! Shadow model of the double-buffered publication protocol.
//!
//! The scheduler applies one transition per granted yield point (see
//! [`crate::sched`]); because the real operation executes immediately
//! after the grant with no other task interleaved, the shadow state is an
//! exact mirror of the protocol state at scheduling granularity. Each
//! transition also checks the safety invariants — a violation means the
//! *about-to-execute* operation would break the protocol, and the
//! scheduler freezes the run before it does.
//!
//! Invariants checked here:
//! - **published-only reads** — a slot being refreshed is never read
//!   (`read-during-write`) and never freshly pinned (`pinned-while-writing`);
//! - **writer drain liveness / exclusivity** — a writer only proceeds past
//!   the drain once the retiring slot's pin count is zero
//!   (`write-begin-while-pinned`, the detector for the planted `sim-bug`);
//! - **pin-count sanity** — counts never go negative
//!   (`pin-count-negative`), publishes only follow a claimed write
//!   (`publish-without-write`);
//! - **index/score atomicity** — the maintained top-k index is only
//!   written while its slot is claimed by the writer
//!   (`index-write-outside-claim`), so it can never be mutated on a
//!   published (readable) slot.
//!
//! Generation monotonicity and score parity are checked by the scenario
//! (they need the observed values, not just the event stream).

use std::collections::{BTreeMap, HashMap};

/// Shadow state of one `PublishCore` (one shard).
#[derive(Debug, Default)]
struct CoreShadow {
    /// Mirror of the two slots' pin counts.
    phys: [i64; 2],
    /// Which tasks hold a *validated* pin on each slot (task ids).
    logical: [Vec<usize>; 2],
    /// Slot currently claimed for writing, if any.
    writing: Option<usize>,
    /// Published generation count (number of publishes observed).
    pub generation: u64,
    /// Shadow of the `front` pointer.
    front: usize,
    /// Per-task slot of the pin `fetch_add` issued but not yet validated.
    pending_pin: HashMap<usize, usize>,
}

/// A detected protocol violation: the next operation of `task` would break
/// the invariant named by `kind`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable invariant identifier (e.g. `write-begin-while-pinned`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

/// Shadow model over all cores observed in a run, keyed by the `core_id`
/// encoded in serving event args (`arg = core_id * 2 + slot`).
#[derive(Debug, Default)]
pub struct Shadow {
    // BTreeMap: iteration order must be deterministic (`any_writing` feeds
    // a metric; a RandomState HashMap would vary it across processes).
    cores: BTreeMap<usize, CoreShadow>,
}

impl Shadow {
    /// Apply the transition for `label`/`arg` about to execute on `task`.
    /// Returns a violation if the operation would break an invariant; the
    /// shadow state is *not* advanced past a violating operation.
    pub fn apply(&mut self, task: usize, label: &'static str, arg: usize) -> Option<Violation> {
        if !label.starts_with("serving.") {
            return None;
        }
        let (core_id, slot) = (arg / 2, arg % 2);
        let core = self.cores.entry(core_id).or_default();
        let fail = |kind: &'static str, message: String| Some(Violation { kind, message });
        match label {
            "serving.pin.load" => None,
            "serving.pin.inc" => {
                core.phys[slot] += 1;
                core.pending_pin.insert(task, slot);
                None
            }
            "serving.pin.validate" => None,
            "serving.pin.retry" => {
                core.phys[slot] -= 1;
                core.pending_pin.remove(&task);
                if core.phys[slot] < 0 {
                    return fail(
                        "pin-count-negative",
                        format!("core {core_id} slot {slot} pin retry below zero"),
                    );
                }
                None
            }
            "serving.pin.ok" => {
                if core.writing == Some(slot) {
                    return fail(
                        "pinned-while-writing",
                        format!(
                            "task {task} validated a pin on core {core_id} slot {slot} \
                             while that slot is being refreshed"
                        ),
                    );
                }
                core.pending_pin.remove(&task);
                core.logical[slot].push(task);
                None
            }
            "serving.unpin" => {
                core.phys[slot] -= 1;
                if core.phys[slot] < 0 {
                    return fail(
                        "pin-count-negative",
                        format!("core {core_id} slot {slot} unpin below zero"),
                    );
                }
                if let Some(pos) = core.logical[slot].iter().position(|&t| t == task) {
                    core.logical[slot].remove(pos);
                }
                None
            }
            "serving.read" => {
                if core.writing == Some(slot) {
                    return fail(
                        "read-during-write",
                        format!(
                            "task {task} read core {core_id} slot {slot} \
                             while the writer is refreshing it"
                        ),
                    );
                }
                None
            }
            "serving.write.claim" => None,
            "serving.write.drain" => None,
            "serving.index.write" => {
                // The maintained top-k index is written inside the score
                // buffer's exclusivity window: the writer must hold the
                // claim on this slot (between write.begin and publish).
                if core.writing != Some(slot) {
                    return fail(
                        "index-write-outside-claim",
                        format!(
                            "index write on core {core_id} slot {slot} without a claimed write"
                        ),
                    );
                }
                None
            }
            "serving.write.begin" => {
                if core.phys[slot] != 0 || !core.logical[slot].is_empty() {
                    return fail(
                        "write-begin-while-pinned",
                        format!(
                            "writer entered core {core_id} slot {slot} with pin count {} \
                             (holders: {:?})",
                            core.phys[slot], core.logical[slot]
                        ),
                    );
                }
                core.writing = Some(slot);
                None
            }
            "serving.publish" => {
                if core.writing != Some(slot) {
                    return fail(
                        "publish-without-write",
                        format!("publish of core {core_id} slot {slot} without a claimed write"),
                    );
                }
                core.writing = None;
                core.generation += 1;
                core.front = slot;
                None
            }
            other => fail(
                "unknown-event",
                format!("unrecognised serving event {other}"),
            ),
        }
    }

    /// Whether `task` currently holds (or is mid-acquiring) a pin on a slot
    /// another writer may be waiting to drain. Used by the slow-reader
    /// chaos mode to keep the task parked while the writer spins.
    pub fn task_holds_pin(&self, task: usize) -> bool {
        self.cores.values().any(|c| {
            c.pending_pin.contains_key(&task) || c.logical.iter().any(|l| l.contains(&task))
        })
    }

    /// True while any core has a writer mid-refresh (between `write.begin`
    /// and `publish`). Used for the mid-refresh read-coverage metric.
    pub fn any_writing(&self) -> Option<usize> {
        self.cores
            .iter()
            .find_map(|(id, c)| c.writing.map(|s| id * 2 + s))
    }
}
