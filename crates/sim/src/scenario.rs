//! The standard reader/writer/shard scenario one seed drives.
//!
//! Every run builds a two-shard personalized [`ShardManager`] (two
//! teleport views over one shared transpose — the Arc-identity invariant
//! is only meaningful with ≥ 2 shards), spawns reader tasks that hammer
//! `get_with_generation` / `snapshot_into` / `top_k` while the writer
//! streams churn batches through `ingest_all`, and checks the five
//! invariants:
//!
//! 1. **Generation monotonicity** — each reader's observed generation
//!    sequence per shard never decreases (`invariant.monotonic`).
//! 2. **Published-only reads** — the shadow model rejects any read or pin
//!    of a slot being refreshed (`read-during-write`,
//!    `pinned-while-writing`; see [`crate::shadow`]).
//! 3. **Writer drain liveness** — a writer only enters the retiring slot
//!    once its pin count is zero (`write-begin-while-pinned`); a stuck
//!    drain surfaces as `deadlock` or `step-budget`.
//! 4. **Arc identity** — after every `ingest_all`, all shards still share
//!    one transpose structure (asserted in the writer task).
//! 5. **Score parity** — every snapshot a reader recorded matches an
//!    independent single-threaded cold solve of exactly that generation's
//!    graph and teleport (`invariant.parity`), checked post-run on the
//!    main thread.
//!
//! Scenario shape (graph size, thread count, read mix, whether a poisoned
//! batch is injected mid-stream, whether the stream grows and removes
//! nodes, slow-reader chaos) is itself derived from the seed, so a seed
//! sweep varies the workload as well as the schedule.
//!
//! Under node churn the parity check replicates the serving layer's
//! bookkeeping exactly: each shard's personalization vector is
//! zero-extended to the generation's grown id space, and tombstoned
//! nodes (removed, not yet revived by a later insert) are masked to 0.0
//! in the cold reference — so a reader that snapshots across a
//! node-growth publish sees the longer vector with the same scores the
//! single-threaded model predicts.

use crate::sched::{ChaosPlan, Sim, SimFailure, SimOptions, SimReport};
use d2pr_core::engine::Engine;
use d2pr_core::exec::hooks;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::{ScoreReader, ShardManager};
use d2pr_core::transition::TransitionModel;
use d2pr_experiments::evolving::churn_stream;
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
const SHARDS: usize = 2;
/// L1 budget for snapshot-vs-cold-solve parity; both sides converge to
/// `TOLERANCE`, so a torn or half-refreshed buffer overshoots this by
/// orders of magnitude.
const PARITY_EPS: f64 = 1e-6;
const TOLERANCE: f64 = 1e-9;

/// Workload parameters of one run, derived from the seed.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Drives the schedule RNG, the graph, and every knob below.
    pub seed: u64,
    /// Graph size (spans both the dense Gauss–Seidel refresh path and the
    /// localized-operator path, which switch at 128 nodes).
    pub nodes: usize,
    /// Worker threads per shard engine (1 = serial refresh, 2 = pooled).
    pub threads: usize,
    /// Churn batches the writer streams.
    pub batches: usize,
    /// Concurrent reader tasks.
    pub readers: usize,
    /// Read operations per reader task.
    pub reads_per_reader: usize,
    /// Inject an out-of-range batch mid-stream and assert the documented
    /// error contract (no generation advances on a failed `ingest_all`).
    pub invalid_batch: bool,
    /// Fold node churn into the stream: the first batch appends a node,
    /// a middle batch tombstones one, the last batch appends another —
    /// readers then cross node-growth publishes and tombstone masking
    /// while the parity check replicates the serving rules (see module
    /// docs).
    pub node_churn: bool,
    /// Fault injection forwarded to the scheduler.
    pub chaos: ChaosPlan,
    /// Scheduling-step budget.
    pub max_steps: u64,
}

impl ScenarioConfig {
    /// The standard seed-derived workload (see module docs).
    pub fn from_seed(seed: u64) -> Self {
        let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ScenarioConfig {
            seed,
            nodes: [48, 64, 96, 160][(mix % 4) as usize],
            threads: 1 + ((mix >> 8) % 2) as usize,
            batches: 3,
            readers: 2,
            reads_per_reader: 10 + ((mix >> 16) % 9) as usize,
            invalid_batch: seed % 7 == 3,
            node_churn: seed % 3 == 1,
            chaos: ChaosPlan {
                panic_at: None,
                pin_hold_steps: if seed % 5 == 2 { 40 } else { 0 },
            },
            max_steps: 200_000,
        }
    }

    fn pagerank(&self) -> PageRankConfig {
        PageRankConfig {
            tolerance: TOLERANCE,
            max_iterations: 500,
            ..Default::default()
        }
    }

    /// The per-shard teleport distributions (normalized by the engine).
    fn teleports(&self) -> Vec<Vec<f64>> {
        (0..SHARDS)
            .map(|s| {
                let mut t = vec![0.0; self.nodes];
                let spike = (self.seed as usize * 7 + s * 13 + 3) % self.nodes;
                t[spike] = 1.0;
                // A little mass everywhere keeps the solve well-conditioned.
                for x in t.iter_mut() {
                    *x += 0.05;
                }
                t
            })
            .collect()
    }
}

/// What one reader task records about one shard.
#[derive(Debug, Clone, Default)]
struct ShardLog {
    /// Every generation observation, in order.
    sequence: Vec<u64>,
    /// First full snapshot seen of each generation.
    snapshots: Vec<(u64, Vec<f64>)>,
}

fn lcg(x: u32) -> u32 {
    x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223)
}

/// Fold deterministic node churn into a sampled edge-churn stream over a
/// graph of `nodes` nodes: the first batch appends a fresh node wired to
/// a surviving anchor, a middle batch tombstones `victim`, and the last
/// batch appends a second node wired to the first arrival (so the grown
/// region stays connected). Shared with the store crash scenario.
pub(crate) fn add_node_churn(batches: &mut [EdgeBatch], nodes: u32, victim: u32) {
    let k = batches.len();
    assert!(k >= 3, "node churn needs grow/remove/grow batches");
    let victim = victim % nodes;
    let anchor = (victim + 1) % nodes;
    batches[0].add_nodes(1);
    batches[0].insert(nodes, anchor);
    batches[k / 2].remove_node(victim);
    batches[k - 1].add_nodes(1);
    batches[k - 1].insert(nodes + 1, nodes);
}

/// Run the standard scenario for `cfg` on a fresh schedule.
pub fn run_scenario(cfg: &ScenarioConfig) -> Result<SimReport, SimFailure> {
    run_scenario_with(cfg, None)
}

/// Run the standard scenario, optionally replaying a recorded choice
/// prefix (the shrinker's entry point — the chaos plan and workload come
/// from `cfg`, so replaying against the same config reproduces the run).
pub fn run_scenario_with(
    cfg: &ScenarioConfig,
    replay: Option<Vec<u32>>,
) -> Result<SimReport, SimFailure> {
    let graph = barabasi_albert(cfg.nodes, 3, cfg.seed).expect("scenario graph");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBA7C_4E55);
    let mut batches = churn_stream(&graph, cfg.batches, 0.0, &mut rng).expect("churn stream");
    if cfg.node_churn {
        let victim = lcg(cfg.seed as u32) % cfg.nodes as u32;
        add_node_churn(&mut batches, cfg.nodes as u32, victim);
    }
    let teleports = cfg.teleports();
    let pr = cfg.pagerank();

    let logs: Vec<Arc<Mutex<Option<Vec<ShardLog>>>>> = (0..cfg.readers)
        .map(|_| Arc::new(Mutex::new(None)))
        .collect();

    let mut sim = Sim::new(SimOptions {
        seed: cfg.seed,
        max_steps: cfg.max_steps,
        replay,
        chaos: cfg.chaos.clone(),
    });

    {
        let graph = graph.clone();
        let teleports = teleports.clone();
        let batches = batches.clone();
        let logs = logs.clone();
        let cfg = cfg.clone();
        sim.spawn("writer", move || {
            let mut mgr = ShardManager::personalized(&graph, &teleports, MODEL, pr, cfg.threads)
                .expect("shard manager construction");
            let h = hooks::current().expect("writer runs as a sim task");
            for (r, slot) in logs.iter().enumerate() {
                let handles: Vec<ScoreReader> = mgr.readers();
                let slot = Arc::clone(slot);
                let (nodes, reads) = (cfg.nodes, cfg.reads_per_reader);
                drop(h.spawn(
                    format!("reader-{r}"),
                    Box::new(move || reader_main(r, handles, nodes, reads, slot)),
                ));
            }
            for (i, batch) in batches.iter().enumerate() {
                if cfg.invalid_batch && i == 1 {
                    let before: Vec<u64> = (0..SHARDS)
                        .map(|k| mgr.shard(k as u64).generation())
                        .collect();
                    let mut bad = EdgeBatch::new();
                    bad.insert(0, cfg.nodes as u32 + 7);
                    assert!(
                        mgr.ingest_all(&bad).is_err(),
                        "out-of-range batch must fail ingest_all"
                    );
                    let after: Vec<u64> = (0..SHARDS)
                        .map(|k| mgr.shard(k as u64).generation())
                        .collect();
                    assert_eq!(
                        before, after,
                        "a failed ingest_all must not advance any published generation"
                    );
                }
                let outcomes = mgr.ingest_all(batch).expect("ingest_all");
                assert_eq!(outcomes.len(), SHARDS);
                // Invariant 4: one shared transpose across every shard,
                // re-established on every generation.
                let s0 = mgr.shard(0).shared_structure().expect("live shard");
                for k in 1..SHARDS {
                    let sk = mgr.shard(k as u64).shared_structure().expect("live shard");
                    assert!(
                        Arc::ptr_eq(&s0, &sk),
                        "shard {k} diverged from the shared structure after ingest_all #{i}"
                    );
                }
                for k in 0..SHARDS {
                    assert_eq!(
                        mgr.shard(k as u64).generation(),
                        (i + 1) as u64,
                        "shard {k} generation after ingest_all #{i}"
                    );
                }
            }
        });
    }

    let report = sim.run()?;

    // Post-run invariants 1 and 5, on the main thread (no hooks, so the
    // cold solves below take the production code path).
    let mut expected: Vec<Vec<Vec<f64>>> = Vec::with_capacity(cfg.batches + 1);
    let mut dg = DeltaGraph::new(graph).expect("delta replay");
    let mut removed: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for g in 0..=cfg.batches {
        if g > 0 {
            let outcome = dg.apply_batch(&batches[g - 1]).expect("replay batch");
            // The serving layer's tombstone rule: removed nodes join the
            // set, every endpoint of an effective insert revives.
            removed.extend(outcome.delta.removed_nodes.iter().copied());
            for &(u, v) in &outcome.delta.inserted {
                removed.remove(&u);
                removed.remove(&v);
            }
        }
        let snap = dg.snapshot();
        let mut per_shard = Vec::with_capacity(SHARDS);
        for t in &teleports {
            // Arrivals get zero personalization mass — the same
            // zero-extension the serving engine applies to its stored
            // teleport on a growth ingest.
            let mut t = t.clone();
            t.resize(snap.num_nodes(), 0.0);
            let mut eng = Engine::with_threads(&snap, 1)
                .with_config(cfg.pagerank())
                .expect("cold engine");
            eng.set_model(MODEL).expect("model");
            let mut scores = eng
                .solve_with_teleport(Some(&t))
                .expect("cold solve")
                .scores;
            // Tombstone masking: removed nodes publish 0.0.
            for &v in &removed {
                scores[v as usize] = 0.0;
            }
            per_shard.push(scores);
        }
        expected.push(per_shard);
    }

    let fail = |kind: &str, message: String| SimFailure {
        kind: kind.to_string(),
        message,
        choices: report.choices.clone(),
        steps: report.metrics.steps,
        trace_tail: Vec::new(),
    };
    for (r, slot) in logs.iter().enumerate() {
        let log = slot
            .lock()
            .unwrap()
            .take()
            .expect("reader finished, so its log is present");
        for (s, shard_log) in log.iter().enumerate() {
            for w in shard_log.sequence.windows(2) {
                if w[0] > w[1] {
                    return Err(fail(
                        "invariant.monotonic",
                        format!(
                            "reader {r} shard {s}: generation went backwards ({} -> {})",
                            w[0], w[1]
                        ),
                    ));
                }
            }
            for (gen, observed) in &shard_log.snapshots {
                if *gen > cfg.batches as u64 {
                    return Err(fail(
                        "invariant.generation-bound",
                        format!("reader {r} shard {s}: generation {gen} was never published"),
                    ));
                }
                let cold = &expected[*gen as usize][s];
                if cold.len() != observed.len() {
                    return Err(fail(
                        "invariant.parity",
                        format!(
                            "reader {r} shard {s}: generation {gen} snapshot has {} \
                             nodes, its graph has {}",
                            observed.len(),
                            cold.len()
                        ),
                    ));
                }
                let l1: f64 = cold.iter().zip(observed).map(|(a, b)| (a - b).abs()).sum();
                if l1 >= PARITY_EPS {
                    return Err(fail(
                        "invariant.parity",
                        format!(
                            "reader {r} shard {s}: generation {gen} diverges from its \
                             cold solve by {l1:.3e}"
                        ),
                    ));
                }
            }
        }
    }
    Ok(report)
}

fn reader_main(
    r: usize,
    handles: Vec<ScoreReader>,
    nodes: usize,
    reads: usize,
    slot: Arc<Mutex<Option<Vec<ShardLog>>>>,
) {
    let mut log = vec![ShardLog::default(); handles.len()];
    let mut buf = Vec::new();
    let mut buf2 = Vec::new();
    let mut node = r as u32;
    for i in 0..reads {
        let s = (r + i) % handles.len();
        let rd = &handles[s];
        node = lcg(node) % nodes as u32;
        let (score, gen) = rd
            .get_with_generation(node)
            .expect("in-range node always readable");
        assert!(
            score.is_finite() && score >= 0.0,
            "published scores are finite and non-negative"
        );
        log[s].sequence.push(gen);
        if i % 3 == 0 {
            let gen = rd.snapshot_into(&mut buf);
            log[s].sequence.push(gen);
            if !log[s].snapshots.iter().any(|(g, _)| *g == gen) {
                log[s].snapshots.push((gen, buf.clone()));
            }
        }
        if i % 5 == 4 {
            // Maintained-index parity under the schedule explorer: when
            // the two snapshots bracket the same generation, the
            // interleaved top_k pinned that generation too (the counter
            // is monotone), so it must equal the snapshot's scan exactly
            // — (node, score, order), however the writer's repairs and
            // rebuilds interleaved with our pins.
            let k = 3.min(nodes);
            let g1 = rd.snapshot_into(&mut buf);
            let top = rd.top_k(k);
            assert_eq!(top.len(), k);
            if k >= 2 {
                assert!(top[0].1 >= top[k - 1].1, "top_k is descending");
            }
            let g2 = rd.snapshot_into(&mut buf2);
            log[s].sequence.push(g2);
            if g1 == g2 {
                assert_eq!(
                    top,
                    brute_top_k(&buf, k),
                    "reader {r} shard {s}: indexed top_k diverges from the scan \
                     of generation {g1}"
                );
            }
        }
    }
    // Sole-owner write, after the last serving call: no yield point can
    // park this task while the lock is held.
    *slot.lock().unwrap() = Some(log);
}

/// Reference ranking of a snapshot — score descending, node id ascending
/// on ties; exactly `ScoreReader::top_k`'s contract.
fn brute_top_k(scores: &[f64], k: usize) -> Vec<(u32, f64)> {
    let mut all: Vec<(u32, f64)> = scores
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as u32, s))
        .collect();
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}
