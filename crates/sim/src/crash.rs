//! Crash-fault injection for the durability layer.
//!
//! `d2pr-store` labels every I/O boundary of its write-ahead path with a
//! [`yield_point`](d2pr_core::exec::yield_point) (`store.*` — see the
//! placement map in `d2pr_core::exec`). This module installs hooks that
//! count those events and *kill the run* at the `k`-th one by unwinding
//! with a typed [`CrashSignal`] — simulating a process crash between any
//! two I/O steps. An in-process crash has exactly the right semantics
//! for single-file durability testing: every completed `write` is
//! visible to recovery, every not-yet-executed operation is not (the
//! event fires immediately *before* the operation it names), so the
//! `k`-th event boundary enumerates every prefix of the I/O sequence.
//!
//! [`run_store_scenario`] drives a seed-derived workload to a crash
//! point, recovers the store cold, and checks the recovery contract.
//! Half the seed sweep folds node churn into the stream (grow,
//! tombstone, grow), so crashes also land inside node-op log frames and
//! recovery must rebuild the grown id space and the tombstone set; the
//! cold references below are tombstone-masked the same way publication
//! is. The contract:
//!
//! 1. **No acknowledged generation is lost, nothing unacknowledged is
//!    invented** — the recovered generation is at least the last ingest
//!    that returned to the caller and at most one beyond it (the
//!    in-flight record may have become durable before the crash).
//! 2. **Recovered ranks are real** — they match an independent cold
//!    solve of the graph at the recovered generation to ≤ 1e-8 L1.
//! 3. **The store stays serviceable** — the remaining batches ingest on
//!    the recovered store and the final state again matches a cold
//!    solve.
//!
//! Concurrency is intentionally *not* simulated here: spawn/barrier
//! hooks fall through to real `std` primitives, because the property
//! under test is the durability protocol's I/O ordering, not the
//! publication interleaving (the scheduler scenario owns that).

use crate::scenario::add_node_churn;
use d2pr_core::exec::hooks::{self, SimBarrier, SimHooks, SimJoin};
use d2pr_core::pagerank::{pagerank, PageRankConfig};
use d2pr_core::transition::TransitionModel;
use d2pr_experiments::evolving::churn_stream;
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use d2pr_store::durable::{DurableServingEngine, StoreOptions};
use d2pr_store::StoreError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};

const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
const TOLERANCE: f64 = 1e-11;
/// L1 budget for recovered-vs-cold-solve parity at [`TOLERANCE`].
const PARITY_EPS: f64 = 1e-8;

fn solver_config() -> PageRankConfig {
    PageRankConfig {
        tolerance: TOLERANCE,
        max_iterations: 2_000,
        ..Default::default()
    }
}

/// The panic payload of an injected crash — typed so the driver can tell
/// a deliberate kill from a genuine bug unwinding out of the store.
#[derive(Debug, Clone)]
pub struct CrashSignal {
    /// The `store.*` label the run was killed at.
    pub label: &'static str,
    /// The label's argument (shard index).
    pub arg: usize,
    /// Zero-based index of the fatal event in the run's `store.*` stream.
    pub event_index: u64,
}

/// Silence the default panic printer for [`CrashSignal`] unwinds (they
/// are expected control flow under injection); everything else keeps the
/// previous hook. Installed once per process.
fn silence_crash_signals() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Hooks that count `store.*` events and kill the run at the chosen one.
/// Spawns and barriers fall back to real `std` primitives (see module
/// docs).
struct CrashHooks {
    seen: AtomicU64,
    crash_at: Option<u64>,
}

struct StdJoin(std::thread::JoinHandle<()>);

impl SimJoin for StdJoin {
    fn join(self: Box<Self>) {
        let _ = self.0.join();
    }
}

struct StdBarrier(std::sync::Barrier);

impl SimBarrier for StdBarrier {
    fn wait(&self) {
        self.0.wait();
    }
}

impl SimHooks for CrashHooks {
    fn event(&self, label: &'static str, arg: usize) {
        if !label.starts_with("store.") {
            return;
        }
        let index = self.seen.fetch_add(1, Ordering::Relaxed);
        if Some(index) == self.crash_at {
            std::panic::panic_any(CrashSignal {
                label,
                arg,
                event_index: index,
            });
        }
    }

    fn spawn(&self, name: String, f: Box<dyn FnOnce() + Send>) -> Box<dyn SimJoin> {
        Box::new(StdJoin(
            std::thread::Builder::new()
                .name(name)
                .spawn(f)
                .expect("spawn worker"),
        ))
    }

    fn barrier(&self, parties: usize) -> Arc<dyn SimBarrier> {
        Arc::new(StdBarrier(std::sync::Barrier::new(parties)))
    }
}

/// Workload parameters of one crash-injection run, derived from the seed.
#[derive(Debug, Clone)]
pub struct StoreScenarioConfig {
    /// Drives the graph, the batch stream, and the crash point.
    pub seed: u64,
    /// Graph size.
    pub nodes: usize,
    /// Churn batches the writer streams before (attempting to) finish.
    pub batches: usize,
    /// Snapshot cadence handed to the store (0 = never, so the whole
    /// history rides the log).
    pub snapshot_every: u64,
    /// Worker threads of the serving engine (2 exercises the pooled
    /// refresh path under injection).
    pub threads: usize,
    /// Kill the run at this zero-based `store.*` event; `None` (or a
    /// value beyond the run's event count) runs to completion, which is
    /// itself a valid case — recovery after a clean shutdown.
    pub crash_at: Option<u64>,
    /// Fold node churn into the stream (grow, tombstone, grow — see
    /// [`crate::scenario`]), so the crash sweep also kills the store in
    /// the middle of node-op log frames and recovery must rebuild the
    /// grown id space and the tombstone set.
    pub node_churn: bool,
}

impl StoreScenarioConfig {
    /// The standard seed-derived workload. The crash point is drawn from
    /// a range slightly beyond the expected event count, so a sweep also
    /// covers crash-free runs.
    pub fn from_seed(seed: u64) -> Self {
        let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let batches = 3 + ((mix >> 24) % 4) as usize;
        let event_bound = 16 + 12 * batches as u64;
        StoreScenarioConfig {
            seed,
            nodes: [40, 60, 90][(mix % 3) as usize],
            batches,
            snapshot_every: [0, 2, 3][((mix >> 8) % 3) as usize],
            threads: 1 + ((mix >> 16) % 2) as usize,
            crash_at: Some((mix >> 32) % event_bound),
            node_churn: (mix >> 40) % 2 == 1,
        }
    }
}

/// What one crash-injection run did and verified.
#[derive(Debug, Clone)]
pub struct StoreCrashReport {
    /// The injected crash, if the run reached its crash point
    /// (label, event index).
    pub crashed: Option<(&'static str, u64)>,
    /// Ingests acknowledged to the caller before the crash (or all of
    /// them on a crash-free run).
    pub acked_before_crash: u64,
    /// The generation recovery resumed at (`None` when the crash
    /// predates the initial snapshot commit, so no store was ever born).
    pub recovered_generation: Option<u64>,
    /// The generation after resuming the remaining batches.
    pub final_generation: u64,
    /// Total `store.*` events the run emitted (crash-free runs only
    /// count to the end; crashed runs count to the kill).
    pub store_events: u64,
}

/// The graph after replaying `upto` batches onto `base`, plus the ids the
/// serving layer holds tombstoned at that generation (removed nodes join
/// the set, every endpoint of an effective insert revives — the same rule
/// `ServingEngine` applies on ingest and on recovery).
fn world_at(
    base: &CsrGraph,
    batches: &[EdgeBatch],
    upto: u64,
) -> (CsrGraph, std::collections::BTreeSet<u32>) {
    let mut dg = DeltaGraph::new(base.clone()).expect("unweighted base");
    let mut removed = std::collections::BTreeSet::new();
    for b in &batches[..upto as usize] {
        let outcome = dg.apply_batch(b).expect("pre-validated batch");
        removed.extend(outcome.delta.removed_nodes.iter().copied());
        for &(u, v) in &outcome.delta.inserted {
            removed.remove(&u);
            removed.remove(&v);
        }
    }
    (dg.into_snapshot(), removed)
}

/// Cold reference for one generation: solve the replayed graph, then mask
/// the tombstoned ids to 0.0 exactly as publication does.
fn cold_scores_at(base: &CsrGraph, batches: &[EdgeBatch], upto: u64) -> Vec<f64> {
    let (graph, tombstoned) = world_at(base, batches, upto);
    let mut cold = pagerank(&graph, MODEL, &solver_config()).scores;
    for &v in &tombstoned {
        cold[v as usize] = 0.0;
    }
    cold
}

fn parity(store: &DurableServingEngine, cold: &[f64]) -> f64 {
    let mut scores = Vec::new();
    store.reader().snapshot_into(&mut scores);
    scores.iter().zip(cold).map(|(a, b)| (a - b).abs()).sum()
}

/// Run one seeded crash-injection scenario end to end (see module docs
/// for the three contract checks).
///
/// # Errors
/// A human-readable description of the first contract violation; the
/// returned string plus the seed is a complete reproducer.
pub fn run_store_scenario(cfg: &StoreScenarioConfig) -> Result<StoreCrashReport, String> {
    silence_crash_signals();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5709_AB1E);
    let base =
        barabasi_albert(cfg.nodes, 2, cfg.seed ^ 0x0DD5).map_err(|e| format!("generator: {e}"))?;
    let mut batches =
        churn_stream(&base, cfg.batches, 0.15, &mut rng).map_err(|e| format!("churn: {e}"))?;
    if cfg.node_churn {
        let victim = (cfg.seed as u32).wrapping_mul(2_654_435_761) % cfg.nodes as u32;
        add_node_churn(&mut batches, cfg.nodes as u32, victim);
    }
    let opts = StoreOptions {
        snapshot_every: cfg.snapshot_every,
        retain_snapshots: 2,
    };
    let dir = std::env::temp_dir().join(format!("d2pr-crash-{}-{}", cfg.seed, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: run the workload under injection hooks.
    let hooks_impl = Arc::new(CrashHooks {
        seen: AtomicU64::new(0),
        crash_at: cfg.crash_at,
    });
    let acked = AtomicU64::new(0);
    let created = AtomicBool::new(false);
    let outcome = {
        let dir = dir.clone();
        let base = base.clone();
        let batches = &batches;
        let acked = &acked;
        let created = &created;
        let hooks_impl: Arc<dyn SimHooks> = hooks_impl.clone();
        catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
            let _guard = hooks::install(hooks_impl);
            let mut store =
                DurableServingEngine::create(&dir, base, MODEL, solver_config(), cfg.threads, opts)
                    .map_err(|e| format!("create: {e}"))?;
            created.store(true, Ordering::Relaxed);
            for b in batches {
                store.ingest(b).map_err(|e| format!("ingest: {e}"))?;
                acked.fetch_add(1, Ordering::Relaxed);
            }
            Ok(())
        }))
    };
    let acked = acked.load(Ordering::Relaxed);
    let created = created.load(Ordering::Relaxed);
    let crashed = match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => return Err(format!("store error without injection: {msg}")),
        Err(payload) => match payload.downcast::<CrashSignal>() {
            Ok(signal) => Some((signal.label, signal.event_index)),
            Err(other) => {
                let msg = other
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| other.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                return Err(format!("genuine panic under injection: {msg}"));
            }
        },
    };
    let store_events = hooks_impl.seen.load(Ordering::Relaxed);

    // Phase 2: recover cold (no hooks) and check the contract.
    let recovery = DurableServingEngine::open(&dir, cfg.threads, opts);
    let (mut store, recovered_generation) = match recovery {
        Ok((store, report)) => {
            if report.recovered_generation != store.generation() {
                return Err("report and engine disagree on the recovered generation".into());
            }
            (store, report.recovered_generation)
        }
        Err(StoreError::NoDurableState { .. }) if !created && acked == 0 => {
            // The crash predates the initial snapshot commit: no state
            // was ever acknowledged, so "nothing to recover" honors the
            // contract. The store is simply re-created.
            let _ = std::fs::remove_dir_all(&dir);
            return Ok(StoreCrashReport {
                crashed,
                acked_before_crash: 0,
                recovered_generation: None,
                final_generation: 0,
                store_events,
            });
        }
        Err(e) => return Err(format!("recovery failed: {e}")),
    };

    // Check 1: recovered ∈ [acked, acked + 1] — nothing acknowledged is
    // lost, at most the one in-flight record is ahead.
    if recovered_generation < acked || recovered_generation > acked + 1 {
        return Err(format!(
            "recovered generation {recovered_generation} outside [{acked}, {}]",
            acked + 1
        ));
    }

    // Check 2: recovered ranks match a cold solve at that generation
    // (tombstone-masked, like publication).
    let cold = cold_scores_at(&base, &batches, recovered_generation);
    let l1 = parity(&store, &cold);
    if l1 > PARITY_EPS {
        return Err(format!(
            "recovered ranks diverge from cold solve at generation \
             {recovered_generation}: L1 {l1:.3e} (crash: {crashed:?})"
        ));
    }

    // Check 3: the recovered store stays serviceable — finish the stream
    // and re-check parity at the end.
    for b in &batches[recovered_generation as usize..] {
        store
            .ingest(b)
            .map_err(|e| format!("post-recovery ingest: {e}"))?;
    }
    let final_generation = store.generation();
    if final_generation != batches.len() as u64 {
        return Err(format!(
            "resumed store finished at generation {final_generation}, \
             expected {}",
            batches.len()
        ));
    }
    let cold = cold_scores_at(&base, &batches, final_generation);
    let l1 = parity(&store, &cold);
    if l1 > PARITY_EPS {
        return Err(format!(
            "post-recovery ranks diverge from cold solve: L1 {l1:.3e}"
        ));
    }

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(StoreCrashReport {
        crashed,
        acked_before_crash: acked,
        recovered_generation: Some(recovered_generation),
        final_generation,
        store_events,
    })
}
