//! Deterministic simulation harness for the D2PR serving stack.
//!
//! `d2pr-core` compiled with its `sim` feature routes every concurrency
//! decision (pool spawns, barrier waits, the pin/publish/drain atomics of
//! the double-buffered serving layer) through the hook layer in
//! `d2pr_core::exec`. This crate implements those hooks: logical tasks are
//! real OS threads serialized by a seeded scheduler ([`sched`]), a shadow
//! state machine checks the publication protocol at every step
//! ([`shadow`]), a seed-derived reader/writer workload exercises the full
//! `ShardManager` stack ([`scenario`]), and failing schedules shrink to a
//! minimal replayable prefix ([`shrink`]).
//!
//! One `u64` seed determines everything — workload shape, fault plan, and
//! interleaving — so `FAIL seed=<s>` in CI is a complete bug report:
//!
//! ```no_run
//! use d2pr_sim::scenario::{run_scenario, ScenarioConfig};
//! run_scenario(&ScenarioConfig::from_seed(42)).unwrap();
//! ```
//!
//! The `sim` binary sweeps seed ranges in parallel; see `DESIGN.md`
//! ("Deterministic simulation") for the architecture.

#![warn(missing_docs)]

pub mod crash;
pub mod scenario;
pub mod sched;
pub mod shadow;
pub mod shrink;
