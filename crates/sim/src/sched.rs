//! The deterministic scheduler.
//!
//! Logical tasks are real OS threads serialized by a token-passing
//! scheduler: exactly one task holds `Status::Running` at any moment, and
//! every other task thread is parked on the scheduler condvar. A task
//! hands the token back at each *yield point* — a [`sim_event`] emitted by
//! the instrumented core (`d2pr_core::exec`), a simulated barrier wait, or
//! a join — and the scheduler picks the next task to run. Which task gets
//! picked is a pure function of the run's `u64` seed (plus an optional
//! replayed choice prefix), so a failing interleaving is reproducible from
//! `seed=<s>` alone.
//!
//! [`sim_event`]: d2pr_core::exec
//!
//! # Grant-time semantics
//!
//! A task arriving at a yield point parks *before* executing the operation
//! the event names. All bookkeeping — the shadow-model transition, chaos
//! injection, metrics — happens when the scheduler **grants** the task,
//! because at that moment the real operation executes immediately with no
//! other task interleaved: the shadow state mirrors reality exactly at
//! scheduling granularity. Checking at arrival instead would let the
//! shadow lead reality and flag races that have not happened yet.
//!
//! # Freeze on failure
//!
//! On an invariant violation, deadlock, task panic, or blown step budget
//! the scheduler records the failure and *freezes*: every task thread
//! parks forever and [`Sim::run`] returns the failure. Frozen threads are
//! deliberately leaked — unwinding them is not an option, because pool
//! worker stacks carry abort-on-unwind guards (the pool's barrier protocol
//! cannot recover from a panic, so a forced unwind would abort the whole
//! test process). The leak is bounded: a handful of parked threads per
//! failing run, each idle on a condvar.
//!
//! # Scheduling policy
//!
//! A PCT-flavoured mix: each task carries a random priority; 3/4 of
//! decisions run the highest-priority ready task (with occasional random
//! priority change points), 1/4 pick uniformly at random. One special
//! rule: a task arriving at `serving.write.drain` has its priority
//! re-randomized — a permanently high-priority writer would otherwise spin
//! in the drain loop forever while the pinned reader it waits for never
//! gets scheduled. Under replay, recorded choices are consumed as
//! positions into the ready list; past the recorded prefix the policy is
//! rotation (`decision % ready_count`), which round-robins through spin
//! loops instead of livelocking on one.

use crate::shadow::Shadow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use d2pr_core::exec::hooks::{self, SimBarrier, SimHooks, SimJoin};

/// How many trailing trace lines a failure report keeps.
const TRACE_TAIL: usize = 48;

/// Fault-injection plan for one run.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Panic the task granted the `n`-th occurrence (1-based) of the named
    /// yield point. `("pool.job.run", n)` panics inside the worker pool's
    /// abort-on-unwind region and therefore **aborts the process** — only
    /// ever use it from a subprocess test.
    pub panic_at: Option<(String, u64)>,
    /// Slow-reader mode: a task holding a pin is excluded from scheduling
    /// for up to this many consecutive decisions (while any other task is
    /// ready), forcing writers to spin in their drain loop. `0` disables.
    pub pin_hold_steps: u64,
}

/// Parameters of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Seed for the schedule RNG (and, by convention, the scenario).
    pub seed: u64,
    /// Scheduling-decision budget; exceeding it fails the run
    /// (`step-budget`), catching harness-level livelocks.
    pub max_steps: u64,
    /// Replay: consume these recorded choice positions first, then fall
    /// back to rotation. Used by the shrinker.
    pub replay: Option<Vec<u32>>,
    /// Fault injection.
    pub chaos: ChaosPlan,
}

impl SimOptions {
    /// Defaults for `seed`: 200k-step budget, no replay, no chaos.
    pub fn from_seed(seed: u64) -> Self {
        SimOptions {
            seed,
            max_steps: 200_000,
            replay: None,
            chaos: ChaosPlan::default(),
        }
    }
}

/// Coverage counters of one run (all schedule-dependent).
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Total scheduling decisions.
    pub steps: u64,
    /// Writer drain-loop re-checks that found a reader still pinned.
    pub drain_spins: u64,
    /// Generation publications observed.
    pub publishes: u64,
    /// Reader pin acquisitions retried because `front` moved mid-pin.
    pub pin_retries: u64,
    /// Reads granted while some shard had a refresh in flight.
    pub mid_refresh_reads: u64,
    /// Logical tasks spawned (scenario tasks + pool workers).
    pub spawned_tasks: u64,
}

/// A successful run: the full choice record (replayable) plus metrics.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Every scheduling choice, as a position into the then-ready list.
    pub choices: Vec<u32>,
    /// Coverage counters.
    pub metrics: SimMetrics,
}

/// A failed run.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// Stable failure class: an invariant name from [`crate::shadow`],
    /// `invariant.parity`, `task-panic`, `deadlock`, or `step-budget`.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
    /// The choice record up to the failure — replaying it reproduces the
    /// failure deterministically.
    pub choices: Vec<u32>,
    /// Scheduling decisions taken.
    pub steps: u64,
    /// The last few granted events, for eyeballing the interleaving.
    pub trace_tail: Vec<String>,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} (after {} steps, {} choices)",
            self.kind,
            self.message,
            self.steps,
            self.choices.len()
        )?;
        for line in &self.trace_tail {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Running,
    BarrierWait(usize),
    JoinWait(usize),
    Finished,
}

struct Task {
    name: String,
    status: Status,
    prio: u64,
    /// Yield point this task is parked on (applied at grant).
    pending: Option<(&'static str, usize)>,
    /// Chaos: panic on the task thread right after this grant.
    panic_pending: bool,
    /// Consecutive decisions this pin-holding task has been excluded for.
    pin_hold: u64,
}

struct BarrierState {
    parties: usize,
    waiting: Vec<usize>,
}

struct Sched {
    tasks: Vec<Task>,
    barriers: Vec<BarrierState>,
    rng: StdRng,
    replay: Option<Vec<u32>>,
    choices: Vec<u32>,
    steps: u64,
    max_steps: u64,
    chaos: ChaosPlan,
    label_counts: HashMap<&'static str, u64>,
    metrics: SimMetrics,
    shadow: Shadow,
    trace: VecDeque<String>,
    failure: Option<SimFailure>,
    frozen: bool,
    live: usize,
    os_handles: Vec<JoinHandle<()>>,
}

impl Sched {
    fn trace_push(&mut self, line: String) {
        if self.trace.len() == TRACE_TAIL {
            self.trace.pop_front();
        }
        self.trace.push_back(line);
    }

    fn fail(&mut self, kind: &str, message: String) {
        self.frozen = true;
        if self.failure.is_some() {
            return;
        }
        self.failure = Some(SimFailure {
            kind: kind.to_string(),
            message,
            choices: self.choices.clone(),
            steps: self.steps,
            trace_tail: self.trace.iter().cloned().collect(),
        });
    }

    /// Pick and grant the next task. Called with the lock held, with no
    /// task currently `Running`.
    fn schedule_next(&mut self) {
        if self.frozen {
            return;
        }
        let ready: Vec<usize> = (0..self.tasks.len())
            .filter(|&t| self.tasks[t].status == Status::Ready)
            .collect();
        if ready.is_empty() {
            if self.live > 0 {
                let blocked: Vec<String> = self
                    .tasks
                    .iter()
                    .filter(|t| t.status != Status::Finished)
                    .map(|t| format!("{}:{:?}", t.name, t.status))
                    .collect();
                self.fail(
                    "deadlock",
                    format!("no runnable task among {} live: {blocked:?}", self.live),
                );
            }
            return;
        }

        // Slow-reader chaos: hold pinned tasks out of the ready set for up
        // to `pin_hold_steps` decisions — but never to the point of having
        // nothing to schedule.
        let mut eligible = ready.clone();
        if self.chaos.pin_hold_steps > 0 {
            let held: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&t| {
                    self.shadow.task_holds_pin(t)
                        && self.tasks[t].pin_hold < self.chaos.pin_hold_steps
                })
                .collect();
            if held.len() < ready.len() {
                for &t in &held {
                    self.tasks[t].pin_hold += 1;
                }
                eligible.retain(|t| !held.contains(t));
            }
        }

        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(
                "step-budget",
                format!("exceeded {} scheduling steps", self.max_steps),
            );
            return;
        }

        let pos = if let Some(rp) = &self.replay {
            let k = self.choices.len();
            if k < rp.len() {
                rp[k] as usize % eligible.len()
            } else {
                // Rotation completion: round-robins through spin loops so a
                // truncated prefix still drains instead of livelocking.
                k % eligible.len()
            }
        } else {
            // Occasional priority change point.
            if self.rng.gen_bool(0.1) {
                let i = self.rng.gen_range(0..eligible.len());
                self.tasks[eligible[i]].prio = self.rng.gen();
            }
            if self.rng.gen_bool(0.25) {
                self.rng.gen_range(0..eligible.len())
            } else {
                let mut best = 0;
                for (i, &t) in eligible.iter().enumerate() {
                    if self.tasks[t].prio > self.tasks[eligible[best]].prio {
                        best = i;
                    }
                }
                best
            }
        };
        self.choices.push(pos as u32);
        let chosen = eligible[pos];
        self.tasks[chosen].pin_hold = 0;

        if let Some((label, arg)) = self.tasks[chosen].pending.take() {
            self.trace_push(format!(
                "#{} t{}({}) {}[{}]",
                self.steps, chosen, self.tasks[chosen].name, label, arg
            ));
            let count = {
                let c = self.label_counts.entry(label).or_insert(0);
                *c += 1;
                *c
            };
            match label {
                "serving.write.drain" => self.metrics.drain_spins += 1,
                "serving.publish" => self.metrics.publishes += 1,
                "serving.pin.retry" => self.metrics.pin_retries += 1,
                "serving.read" if self.shadow.any_writing().is_some() => {
                    self.metrics.mid_refresh_reads += 1
                }
                _ => {}
            }
            if let Some((plabel, nth)) = &self.chaos.panic_at {
                if plabel == label && count == *nth {
                    self.tasks[chosen].panic_pending = true;
                }
            }
            if let Some(v) = self.shadow.apply(chosen, label, arg) {
                // The violating operation must not execute: leave the task
                // parked and freeze the run.
                self.tasks[chosen].pending = Some((label, arg));
                self.fail(v.kind, v.message);
                return;
            }
        } else {
            self.trace_push(format!(
                "#{} t{}({}) resume",
                self.steps, chosen, self.tasks[chosen].name
            ));
        }
        self.tasks[chosen].status = Status::Running;
    }
}

/// Shared scheduler core: the mutex-protected state plus the condvar every
/// task thread parks on.
struct SimCore {
    m: Mutex<Sched>,
    cv: Condvar,
}

/// Park the calling thread forever (the run is frozen). Never unwinds —
/// see the module docs for why frozen threads must not be torn down.
fn park_forever(core: &SimCore, mut g: MutexGuard<'_, Sched>) -> ! {
    loop {
        g = core.cv.wait(g).unwrap();
    }
}

thread_local! {
    static CURRENT_TASK: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn current_task_id() -> usize {
    CURRENT_TASK
        .with(|c| c.get())
        .expect("sim hook used from a thread that is not a sim task")
}

/// Block the calling task until it is granted `Running`, then execute a
/// pending chaos panic if one was attached to the grant.
fn wait_for_grant<'a>(
    core: &'a SimCore,
    mut g: MutexGuard<'a, Sched>,
    id: usize,
) -> MutexGuard<'a, Sched> {
    loop {
        if g.frozen {
            park_forever(core, g);
        }
        if g.tasks[id].status == Status::Running {
            return g;
        }
        g = core.cv.wait(g).unwrap();
    }
}

/// The [`SimHooks`] implementation installed on every task thread.
struct TaskHooks {
    core: Arc<SimCore>,
}

impl SimHooks for TaskHooks {
    fn event(&self, label: &'static str, arg: usize) {
        let id = current_task_id();
        let core = &*self.core;
        let mut s = core.m.lock().unwrap();
        if s.frozen {
            park_forever(core, s);
        }
        s.tasks[id].status = Status::Ready;
        s.tasks[id].pending = Some((label, arg));
        if label == "serving.write.drain" {
            // Keep a high-priority writer from starving the reader whose
            // unpin it is spinning on.
            s.tasks[id].prio = s.rng.gen();
        }
        s.schedule_next();
        core.cv.notify_all();
        let mut s = wait_for_grant(core, s, id);
        let chaos_panic = std::mem::take(&mut s.tasks[id].panic_pending);
        drop(s);
        if chaos_panic {
            panic!("chaos: injected panic at {label}[{arg}]");
        }
    }

    fn spawn(&self, name: String, f: Box<dyn FnOnce() + Send>) -> Box<dyn SimJoin> {
        let target = spawn_task(&self.core, name, f);
        Box::new(JoinImpl {
            core: Arc::clone(&self.core),
            target,
        })
    }

    fn barrier(&self, parties: usize) -> Arc<dyn SimBarrier> {
        let mut s = self.core.m.lock().unwrap();
        let idx = s.barriers.len();
        s.barriers.push(BarrierState {
            parties,
            waiting: Vec::new(),
        });
        drop(s);
        Arc::new(BarrierImpl {
            core: Arc::clone(&self.core),
            idx,
        })
    }
}

struct BarrierImpl {
    core: Arc<SimCore>,
    idx: usize,
}

impl SimBarrier for BarrierImpl {
    fn wait(&self) {
        let id = current_task_id();
        let core = &*self.core;
        let mut s = core.m.lock().unwrap();
        if s.frozen {
            park_forever(core, s);
        }
        s.barriers[self.idx].waiting.push(id);
        if s.barriers[self.idx].waiting.len() == s.barriers[self.idx].parties {
            let waiters = std::mem::take(&mut s.barriers[self.idx].waiting);
            for w in waiters {
                s.tasks[w].status = Status::Ready;
            }
        } else {
            s.tasks[id].status = Status::BarrierWait(self.idx);
        }
        s.schedule_next();
        core.cv.notify_all();
        let s = wait_for_grant(core, s, id);
        drop(s);
    }
}

struct JoinImpl {
    core: Arc<SimCore>,
    target: usize,
}

impl SimJoin for JoinImpl {
    fn join(self: Box<Self>) {
        let id = current_task_id();
        let core = &*self.core;
        let mut s = core.m.lock().unwrap();
        if s.frozen {
            park_forever(core, s);
        }
        if s.tasks[self.target].status == Status::Finished {
            return;
        }
        s.tasks[id].status = Status::JoinWait(self.target);
        s.schedule_next();
        core.cv.notify_all();
        let s = wait_for_grant(core, s, id);
        drop(s);
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Register a task and start its OS thread. The thread parks until granted.
fn spawn_task(core: &Arc<SimCore>, name: String, f: Box<dyn FnOnce() + Send>) -> usize {
    let mut s = core.m.lock().unwrap();
    let id = s.tasks.len();
    let prio = s.rng.gen();
    s.tasks.push(Task {
        name: name.clone(),
        status: Status::Ready,
        prio,
        pending: None,
        panic_pending: false,
        pin_hold: 0,
    });
    s.live += 1;
    s.metrics.spawned_tasks += 1;

    let tcore = Arc::clone(core);
    let handle = std::thread::Builder::new()
        .name(format!("sim-{name}"))
        .stack_size(1 << 20)
        .spawn(move || {
            CURRENT_TASK.with(|c| c.set(Some(id)));
            let hooks_arc: Arc<dyn SimHooks> = Arc::new(TaskHooks {
                core: Arc::clone(&tcore),
            });
            let _guard = hooks::install(hooks_arc);
            {
                let s = tcore.m.lock().unwrap();
                let s = wait_for_grant(&tcore, s, id);
                drop(s);
            }
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut s = tcore.m.lock().unwrap();
            s.tasks[id].status = Status::Finished;
            s.live -= 1;
            for t in 0..s.tasks.len() {
                if s.tasks[t].status == Status::JoinWait(id) {
                    s.tasks[t].status = Status::Ready;
                }
            }
            match result {
                Ok(()) => s.schedule_next(),
                Err(payload) => {
                    let msg = panic_message(payload);
                    let name = s.tasks[id].name.clone();
                    s.fail("task-panic", format!("task {id} ({name}) panicked: {msg}"));
                }
            }
            tcore.cv.notify_all();
        })
        .expect("spawn sim task thread");
    s.os_handles.push(handle);
    drop(s);
    id
}

/// One simulation instance: spawn root tasks, then [`run`](Sim::run) it.
pub struct Sim {
    core: Arc<SimCore>,
}

impl Sim {
    /// Build a simulation from `opts`.
    pub fn new(opts: SimOptions) -> Self {
        Sim {
            core: Arc::new(SimCore {
                m: Mutex::new(Sched {
                    tasks: Vec::new(),
                    barriers: Vec::new(),
                    rng: StdRng::seed_from_u64(opts.seed ^ 0x5EED_5C4E_D01E_0000),
                    replay: opts.replay,
                    choices: Vec::new(),
                    steps: 0,
                    max_steps: opts.max_steps,
                    chaos: opts.chaos,
                    label_counts: HashMap::new(),
                    metrics: SimMetrics::default(),
                    shadow: Shadow::default(),
                    trace: VecDeque::new(),
                    failure: None,
                    frozen: false,
                    live: 0,
                    os_handles: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Spawn a root logical task (before [`run`](Sim::run)). Tasks spawned
    /// *during* the run (pool workers, scenario readers) go through the
    /// installed hooks instead.
    pub fn spawn(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        spawn_task(&self.core, name.to_string(), Box::new(f));
    }

    /// Drive the schedule to completion. `Ok` when every task finished;
    /// `Err` on the first invariant violation, deadlock, task panic, or
    /// blown step budget (task threads are then left parked — see the
    /// module docs on the bounded leak).
    pub fn run(self) -> Result<SimReport, SimFailure> {
        let core = &*self.core;
        let mut s = core.m.lock().unwrap();
        s.schedule_next();
        core.cv.notify_all();
        while s.failure.is_none() && s.live > 0 {
            s = core.cv.wait(s).unwrap();
        }
        if let Some(f) = s.failure.clone() {
            return Err(f);
        }
        s.metrics.steps = s.steps;
        let report = SimReport {
            choices: std::mem::take(&mut s.choices),
            metrics: s.metrics.clone(),
        };
        let handles = std::mem::take(&mut s.os_handles);
        drop(s);
        for h in handles {
            let _ = h.join();
        }
        Ok(report)
    }
}
