//! Greedy schedule shrinking.
//!
//! A failure's choice record replays deterministically, and replaying a
//! *prefix* of it (the scheduler completes the run with a rotation policy
//! past the prefix) often still fails: most of the recorded schedule is
//! irrelevant warm-up. The shrinker binary-searches the shortest failing
//! prefix with the same failure kind, verifies it, and falls back to the
//! full record when the failure turns out not to be prefix-monotonic.

use crate::sched::{SimFailure, SimReport};
use std::fmt;

/// A minimal reproducer: feed `schedule` back through
/// [`crate::scenario::run_scenario_with`] with the same seed to replay.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The seed the failing run (and its workload) derives from.
    pub seed: u64,
    /// Failure class (see [`SimFailure::kind`]).
    pub kind: String,
    /// The shrunk choice prefix.
    pub schedule: Vec<u32>,
    /// Failure detail from the verified replay.
    pub message: String,
}

impl fmt::Display for Repro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} kind={} schedule_len={} schedule=[",
            self.seed,
            self.kind,
            self.schedule.len()
        )?;
        for (i, c) in self.schedule.iter().take(64).enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        if self.schedule.len() > 64 {
            write!(f, ",… {} more", self.schedule.len() - 64)?;
        }
        writeln!(f, "]")?;
        write!(f, "  {}", self.message)
    }
}

/// Shrink `failure` (observed on `seed`) to a minimal failing choice
/// prefix. `run` replays the scenario with a given prefix and must be
/// deterministic — e.g. `|p| run_scenario_with(&cfg, Some(p))` for the
/// same `cfg` that produced the failure.
pub fn shrink<F>(seed: u64, failure: &SimFailure, mut run: F) -> Repro
where
    F: FnMut(Vec<u32>) -> Result<SimReport, SimFailure>,
{
    let full = &failure.choices;
    let same = |f: &SimFailure| f.kind == failure.kind;

    // Binary-search the shortest failing prefix. Failure is usually (not
    // provably) monotonic in prefix length; the verification replay below
    // catches the cases where it is not.
    let (mut lo, mut hi) = (0usize, full.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match run(full[..mid].to_vec()) {
            Err(ref f) if same(f) => hi = mid,
            _ => lo = mid + 1,
        }
    }

    match run(full[..hi].to_vec()) {
        Err(ref f) if same(f) => Repro {
            seed,
            kind: f.kind.clone(),
            schedule: full[..hi].to_vec(),
            message: f.message.clone(),
        },
        _ => Repro {
            seed,
            kind: failure.kind.clone(),
            schedule: full.clone(),
            message: failure.message.clone(),
        },
    }
}
