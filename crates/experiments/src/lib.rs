//! # d2pr-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4). The `repro` binary exposes one subcommand per
//! experiment; this library holds the sweep engine and table formatting so
//! integration tests and benches can reuse them.

#![warn(missing_docs)]

pub mod ablation;
pub mod evolving;
pub mod experiments;
pub mod recommendation;
pub mod report;
pub mod serving;
pub mod stability;
pub mod sweep;

pub use evolving::{run_evolving, EvolvingConfig, EvolvingReport};
pub use serving::{run_recover, run_serve, ServeConfig, ServeError, ServeReport};
pub use sweep::{correlation_with_significance, GridPoint, SweepConfig};
