//! `rank` — degree de-coupled PageRank over an edge-list file.
//!
//! The adoption-path CLI: point it at any whitespace edge list (SNAP/KONECT
//! style, optional third weight column) and get ranked nodes on stdout.
//!
//! ```text
//! rank [--p P] [--alpha A] [--beta B] [--directed] [--seeds a,b,c]
//!      [--top K] [--scores] <edge-list-file | ->
//! ```
//!
//! Examples:
//! ```text
//! rank --p 0.5 graph.edges                 # degree-penalized ranking, top 20
//! rank --p -1 --top 50 graph.edges         # degree-boosted, top 50
//! rank --p 1 --seeds 3,17 graph.edges      # personalized D2PR
//! cat graph.edges | rank --scores -        # full score dump from stdin
//! ```

use d2pr_core::d2pr::D2pr;
use d2pr_graph::csr::Direction;
use d2pr_graph::io::read_edge_list;
use std::io::{BufReader, Write};
use std::process::ExitCode;

struct Options {
    p: f64,
    alpha: f64,
    beta: Option<f64>,
    directed: bool,
    seeds: Vec<u32>,
    top: usize,
    dump_scores: bool,
    input: String,
}

const USAGE: &str = "usage: rank [--p P] [--alpha A] [--beta B] [--directed] \
[--seeds a,b,c] [--top K] [--scores] <edge-list-file | ->";

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        p: 0.0,
        alpha: 0.85,
        beta: None,
        directed: false,
        seeds: Vec::new(),
        top: 20,
        dump_scores: false,
        input: String::new(),
    };
    let mut input = None;
    let mut args = std::env::args().skip(1);
    let next_f64 = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<f64, String> {
        args.next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--p" => o.p = next_f64(&mut args, "--p")?,
            "--alpha" => o.alpha = next_f64(&mut args, "--alpha")?,
            "--beta" => o.beta = Some(next_f64(&mut args, "--beta")?),
            "--directed" => o.directed = true,
            "--scores" => o.dump_scores = true,
            "--top" => {
                o.top = args
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            "--seeds" => {
                let list = args.next().ok_or("--seeds needs a value")?;
                o.seeds = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|e| format!("bad seed '{s}': {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') || other == "-" => input = Some(other.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    o.input = input.ok_or_else(|| USAGE.to_string())?;
    Ok(o)
}

fn run(opts: &Options) -> Result<(), String> {
    let direction = if opts.directed {
        Direction::Directed
    } else {
        Direction::Undirected
    };
    let graph = if opts.input == "-" {
        let stdin = std::io::stdin();
        read_edge_list(stdin.lock(), direction)
    } else {
        let file = std::fs::File::open(&opts.input).map_err(|e| format!("{}: {e}", opts.input))?;
        read_edge_list(BufReader::new(file), direction)
    }
    .map_err(|e| e.to_string())?;

    eprintln!(
        "{} nodes, {} edges ({}, {}); p = {}, alpha = {}{}",
        graph.num_nodes(),
        graph.num_edges(),
        if graph.is_directed() {
            "directed"
        } else {
            "undirected"
        },
        if graph.is_weighted() {
            "weighted"
        } else {
            "unweighted"
        },
        opts.p,
        opts.alpha,
        opts.beta.map_or(String::new(), |b| format!(", beta = {b}")),
    );

    let mut engine = D2pr::new(&graph).with_alpha(opts.alpha);
    if let Some(beta) = opts.beta {
        if !graph.is_weighted() {
            return Err("--beta only applies to weighted graphs".into());
        }
        engine = engine.with_beta(beta);
    }
    let result = if opts.seeds.is_empty() {
        engine.scores(opts.p)?
    } else {
        engine.personalized_scores(opts.p, &opts.seeds)?
    };
    eprintln!(
        "converged: {} ({} iterations, residual {:.2e})",
        result.converged, result.iterations, result.residual
    );

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if opts.dump_scores {
        for (v, s) in result.scores.iter().enumerate() {
            writeln!(out, "{v}\t{s}").map_err(|e| e.to_string())?;
        }
    } else {
        writeln!(out, "rank\tnode\tscore").map_err(|e| e.to_string())?;
        for (i, v) in result.ranking().into_iter().take(opts.top).enumerate() {
            writeln!(out, "{}\t{v}\t{:.6e}", i + 1, result.scores[v as usize])
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(|o| run(&o)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
