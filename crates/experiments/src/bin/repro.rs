//! `repro` — regenerate every table and figure of the D2PR paper.
//!
//! ```text
//! repro [--scale S] [--seed N] [--csv] <experiment>
//! repro serve --data-dir DIR [--snapshot-every K] ...
//! repro recover DIR
//!
//! experiments:
//!   table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!   fig9 fig10 fig11 all
//! ```
//!
//! `--scale` scales the generated worlds relative to the paper's Table 3
//! node counts (default 0.05 ≈ tens of seconds of wall time; 1.0
//! regenerates paper-sized graphs). `serve --data-dir` runs the serving
//! scenario on the durable (write-ahead logged) stack; `recover DIR`
//! revives such a store and prints where each shard resumed.

use d2pr_datagen::worlds::ApplicationGroup;
use d2pr_experiments::experiments::{
    fig1_report, fig5_report, group_alpha_sweep, group_beta_sweep, group_p_sweep,
    group_p_sweep_report, optimum_summary, series_report, table1_report, table2_report,
    table3_report, ExperimentContext, GraphSweep,
};
use std::process::ExitCode;

struct Options {
    scale: f64,
    seed: u64,
    csv: bool,
    tolerance: Option<f64>,
    churn: Option<f64>,
    batches: Option<usize>,
    readers: Option<usize>,
    shards: Option<usize>,
    mode: Option<d2pr_experiments::evolving::RefreshMode>,
    weighted: bool,
    node_churn: bool,
    data_dir: Option<String>,
    snapshot_every: Option<u64>,
    top_k: Option<usize>,
    query_mix: Option<f64>,
    experiment: String,
}

const USAGE: &str = "usage: repro [--scale S] [--seed N] [--csv] \
[--mode sweep|localized|auto] [--weighted] [--node-churn] \
[--readers R] [--shards K] \
[--data-dir DIR] [--snapshot-every K] [--top-k N] [--query-mix R] \
<table1|table2|table3|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|recs|rewire|stability|evolving|serve|all>\n\
       repro recover <DIR>";

fn parse_args() -> Result<Options, String> {
    let mut scale = 0.05;
    let mut seed = 42;
    let mut csv = false;
    let mut tolerance = None;
    let mut churn = None;
    let mut batches = None;
    let mut readers = None;
    let mut shards = None;
    let mut mode = None;
    let mut weighted = false;
    let mut node_churn = false;
    let mut data_dir = None;
    let mut snapshot_every = None;
    let mut top_k = None;
    let mut query_mix = None;
    let mut experiment: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--tolerance" => {
                tolerance = Some(
                    args.next()
                        .ok_or("--tolerance needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --tolerance: {e}"))?,
                );
            }
            "--churn" => {
                churn = Some(
                    args.next()
                        .ok_or("--churn needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --churn: {e}"))?,
                );
            }
            "--batches" => {
                batches = Some(
                    args.next()
                        .ok_or("--batches needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --batches: {e}"))?,
                );
            }
            "--readers" => {
                readers = Some(
                    args.next()
                        .ok_or("--readers needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --readers: {e}"))?,
                );
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .ok_or("--shards needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --shards: {e}"))?,
                );
            }
            "--mode" => {
                let value = args.next().ok_or("--mode needs a value")?;
                mode = Some(
                    d2pr_experiments::evolving::RefreshMode::parse(&value).ok_or_else(|| {
                        format!("bad --mode {value}: expected sweep|localized|auto")
                    })?,
                );
            }
            "--data-dir" => {
                data_dir = Some(args.next().ok_or("--data-dir needs a value")?);
            }
            "--snapshot-every" => {
                snapshot_every = Some(
                    args.next()
                        .ok_or("--snapshot-every needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --snapshot-every: {e}"))?,
                );
            }
            "--top-k" => {
                top_k = Some(
                    args.next()
                        .ok_or("--top-k needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --top-k: {e}"))?,
                );
            }
            "--query-mix" => {
                let value: f64 = args
                    .next()
                    .ok_or("--query-mix needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --query-mix: {e}"))?;
                if !(0.0..=1.0).contains(&value) {
                    return Err(format!("bad --query-mix {value}: expected 0..=1"));
                }
                query_mix = Some(value);
            }
            "--weighted" => weighted = true,
            "--node-churn" => node_churn = true,
            "--csv" => csv = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') => {
                // `recover` takes the store directory as a positional.
                if experiment.as_deref() == Some("recover") && data_dir.is_none() {
                    data_dir = Some(other.to_string());
                } else if experiment.is_none() {
                    experiment = Some(other.to_string());
                } else {
                    return Err(format!("unexpected argument {other}\n{USAGE}"));
                }
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Options {
        scale,
        seed,
        csv,
        tolerance,
        churn,
        batches,
        readers,
        shards,
        mode,
        weighted,
        node_churn,
        data_dir,
        snapshot_every,
        top_k,
        query_mix,
        experiment: experiment.ok_or_else(|| USAGE.to_string())?,
    })
}

fn print_table(title: &str, t: &d2pr_experiments::report::TextTable, csv: bool) {
    println!("== {title} ==");
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    println!();
}

fn print_sweeps(title: &str, sweeps: &[GraphSweep], csv: bool) {
    print_table(title, &group_p_sweep_report(sweeps), csv);
    print_table(&format!("{title}: optima"), &optimum_summary(sweeps), csv);
}

fn print_series(title: &str, sweeps: &[GraphSweep], beta: bool, csv: bool) {
    for s in sweeps {
        print_table(
            &format!("{title}: {}", s.graph.name()),
            &series_report(s, beta),
            csv,
        );
    }
    print_table(&format!("{title}: optima"), &optimum_summary(sweeps), csv);
}

fn run(opts: &Options) -> Result<(), String> {
    let all = opts.experiment == "all";
    let want = |name: &str| all || opts.experiment == name;
    let known = [
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "recs",
        "rewire",
        "stability",
        "evolving",
        "serve",
        "recover",
    ];
    if !all && !known.contains(&opts.experiment.as_str()) {
        return Err(format!("unknown experiment '{}'\n{USAGE}", opts.experiment));
    }

    let needs_ctx = all
        || !matches!(
            opts.experiment.as_str(),
            "fig1" | "evolving" | "serve" | "recover"
        );
    let ctx = if needs_ctx {
        eprintln!(
            "generating worlds (scale {}, seed {}) ...",
            opts.scale, opts.seed
        );
        Some(ExperimentContext::new(opts.scale, opts.seed).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let ctx = ctx.as_ref();
    let csv = opts.csv;

    if want("table1") {
        print_table(
            "Table 1: Spearman(degree rank, PageRank rank)",
            &table1_report(ctx.expect("ctx present")),
            csv,
        );
    }
    if want("table2") {
        print_table(
            "Table 2: node ranks under different p",
            &table2_report(ctx.expect("ctx present")),
            csv,
        );
    }
    if want("table3") {
        print_table(
            "Table 3: data graph statistics",
            &table3_report(ctx.expect("ctx present")),
            csv,
        );
    }
    if want("fig1") {
        print_table(
            "Figure 1: transition probabilities from A",
            &fig1_report(),
            csv,
        );
    }
    let groups = [
        ("fig2", "fig6", "fig9", ApplicationGroup::A),
        ("fig3", "fig7", "fig10", ApplicationGroup::B),
        ("fig4", "fig8", "fig11", ApplicationGroup::C),
    ];
    for (fig_p, fig_alpha, fig_beta, group) in groups {
        if want(fig_p) {
            let sweeps = group_p_sweep(ctx.expect("ctx present"), group);
            print_sweeps(
                &format!("{fig_p}: group {group:?} p sweep (unweighted)"),
                &sweeps,
                csv,
            );
        }
        if want(fig_alpha) {
            let sweeps = group_alpha_sweep(ctx.expect("ctx present"), group);
            print_series(
                &format!("{fig_alpha}: group {group:?} alpha x p (unweighted)"),
                &sweeps,
                false,
                csv,
            );
        }
        if want(fig_beta) {
            let sweeps = group_beta_sweep(ctx.expect("ctx present"), group);
            print_series(
                &format!("{fig_beta}: group {group:?} beta x p (weighted)"),
                &sweeps,
                true,
                csv,
            );
        }
    }
    if want("fig5") {
        print_table(
            "Figure 5: corr(degree, significance)",
            &fig5_report(ctx.expect("ctx present")),
            csv,
        );
    }
    if want("stability") {
        let seeds: Vec<u64> = (0..5).map(|i| opts.seed.wrapping_add(i)).collect();
        eprintln!("stability: regenerating all worlds for seeds {seeds:?} ...");
        let results = d2pr_experiments::stability::stability_analysis(opts.scale, &seeds)
            .map_err(|e| e.to_string())?;
        print_table(
            "Seed stability: optima across independently regenerated worlds",
            &d2pr_experiments::stability::stability_report(&results),
            csv,
        );
    }
    if want("rewire") {
        print_table(
            "Rewiring ablation: D2PR gain on original vs degree-preserving rewired graphs",
            &d2pr_experiments::ablation::rewire_report(ctx.expect("ctx present")),
            csv,
        );
    }
    if want("recs") {
        print_table(
            "Recommendation accuracy: conventional PageRank vs D2PR (extension)",
            &d2pr_experiments::recommendation::recommendation_report(ctx.expect("ctx present")),
            csv,
        );
    }
    if want("evolving") {
        // `--scale` scales the node count relative to the default graph.
        let base = d2pr_experiments::evolving::EvolvingConfig::default();
        let cfg = d2pr_experiments::evolving::EvolvingConfig {
            nodes: ((base.nodes as f64 * (opts.scale / 0.05)).round() as usize).max(1_000),
            seed: opts.seed,
            tolerance: opts.tolerance.unwrap_or(base.tolerance),
            churn: opts.churn.unwrap_or(base.churn),
            batches: opts.batches.unwrap_or(base.batches),
            mode: opts.mode.unwrap_or(base.mode),
            weighted: opts.weighted,
            node_churn: opts.node_churn,
            ..base
        };
        eprintln!(
            "evolving: {}({}, {}), {} batches of {:.1}% churn{}{}, {:?} refresh ...",
            if cfg.weighted || cfg.node_churn {
                "ratings"
            } else {
                "BA"
            },
            cfg.nodes,
            cfg.attachments,
            cfg.batches,
            cfg.churn * 100.0,
            if cfg.weighted {
                " + star re-weighting (beta 0.5)"
            } else {
                ""
            },
            if cfg.node_churn {
                " + node arrivals/departures"
            } else {
                ""
            },
            cfg.mode
        );
        let report = d2pr_experiments::run_evolving(&cfg).map_err(|e| e.to_string())?;
        print_table(
            "Evolving graph: cold vs warm-started re-solves per churn batch",
            &d2pr_experiments::evolving::evolving_report(&report),
            csv,
        );
    }
    if want("serve") {
        let base = d2pr_experiments::serving::ServeConfig::default();
        let cfg = d2pr_experiments::serving::ServeConfig {
            nodes: ((base.nodes as f64 * (opts.scale / 0.05)).round() as usize).max(1_000),
            seed: opts.seed,
            tolerance: opts.tolerance.unwrap_or(base.tolerance),
            churn: opts.churn.unwrap_or(base.churn),
            batches: opts.batches.unwrap_or(base.batches),
            readers: opts.readers.unwrap_or(base.readers),
            shards: opts.shards.unwrap_or(base.shards),
            data_dir: opts.data_dir.as_ref().map(std::path::PathBuf::from),
            snapshot_every: opts.snapshot_every.unwrap_or(base.snapshot_every),
            // Either flag alone opts into the ranked mix: a bare
            // --query-mix ranks at the default k = 100, a bare --top-k
            // ranks 10% of reads.
            top_k: opts
                .top_k
                .unwrap_or(if opts.query_mix.is_some() { 100 } else { base.top_k }),
            query_mix: opts
                .query_mix
                .unwrap_or(if opts.top_k.is_some() { 0.1 } else { base.query_mix }),
            ..base
        };
        eprintln!(
            "serve: BA({}, {}), {} batches of {:.2}% churn, {} reader thread(s), {} shard(s){}{} ...",
            cfg.nodes,
            cfg.attachments,
            cfg.batches,
            cfg.churn * 100.0,
            cfg.readers,
            cfg.shards,
            if cfg.top_k > 0 {
                format!(
                    ", {:.0}% ranked top-{} queries",
                    cfg.query_mix.clamp(0.0, 1.0) * 100.0,
                    cfg.top_k
                )
            } else {
                String::new()
            },
            match &cfg.data_dir {
                Some(d) => format!(", durable in {}", d.display()),
                None => String::new(),
            }
        );
        let report = d2pr_experiments::run_serve(&cfg).map_err(|e| e.to_string())?;
        print_table(
            "Serving: double-buffered refreshes under concurrent reader load",
            &d2pr_experiments::serving::serve_report(&report),
            csv,
        );
    }
    // Not part of `all`: recovery needs an existing store directory.
    if opts.experiment == "recover" {
        let dir = opts
            .data_dir
            .as_ref()
            .ok_or(format!("recover needs a store directory\n{USAGE}"))?;
        eprintln!("recover: opening durable store {dir} ...");
        let reports = d2pr_experiments::run_recover(std::path::Path::new(dir), 0)
            .map_err(|e| e.to_string())?;
        print_table(
            "Recovery: per-shard snapshot + log-tail replay",
            &d2pr_experiments::serving::recover_report(&reports),
            csv,
        );
        let gen = reports
            .iter()
            .map(|r| r.recovered_generation)
            .min()
            .unwrap_or(0);
        let replayed: usize = reports.iter().map(|r| r.outcome.replayed_batches).sum();
        println!(
            "recovered {} shard(s) to generation {gen}: {replayed} log-tail batch(es) replayed",
            reports.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
