//! Mechanism ablation: what happens to D2PR's gains when structure beyond
//! the degree sequence is destroyed?
//!
//! The paper attributes PageRank's usefulness to two factors (§1.2):
//! *Factor 1* (significance of neighbors — who you connect to) and
//! *Factor 2* (degree — how many you connect to). Degree-preserving
//! rewiring keeps Factor 2 intact while scrambling Factor 1. If D2PR's
//! Group-A improvements were explainable by the degree sequence alone, they
//! would survive rewiring; the `repro rewire` experiment shows they are
//! substantially driven by neighbor structure.

use crate::report::{fmt_corr, TextTable};
use crate::sweep::{best_point, GridPoint, SweepConfig};
use d2pr_datagen::worlds::PaperGraph;
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::rewire::degree_preserving_rewire;

/// Outcome of one rewiring ablation.
#[derive(Debug, Clone)]
pub struct RewireAblation {
    /// Which data graph.
    pub graph: PaperGraph,
    /// Best grid point on the original graph.
    pub original_best: GridPoint,
    /// Correlation at p = 0 on the original graph.
    pub original_conventional: f64,
    /// Best grid point on the degree-preserving rewired graph.
    pub rewired_best: GridPoint,
    /// Correlation at p = 0 on the rewired graph.
    pub rewired_conventional: f64,
}

impl RewireAblation {
    /// D2PR's improvement over conventional PageRank on the original graph.
    pub fn original_gain(&self) -> f64 {
        self.original_best.spearman - self.original_conventional
    }

    /// The same improvement after rewiring.
    pub fn rewired_gain(&self) -> f64 {
        self.rewired_best.spearman - self.rewired_conventional
    }

    /// Fraction of the original gain destroyed by rewiring (clamped to
    /// `[0, 1]`; 1 = the gain came entirely from neighbor structure).
    pub fn gain_destroyed(&self) -> f64 {
        let og = self.original_gain();
        if og <= 0.0 {
            return 0.0;
        }
        (1.0 - self.rewired_gain() / og).clamp(0.0, 1.0)
    }
}

/// Run the ablation on one graph: sweep p on the original and on a
/// degree-preserving rewired copy (2 swaps per edge).
pub fn rewire_ablation(
    graph: &CsrGraph,
    significance: &[f64],
    pg: PaperGraph,
    seed: u64,
) -> RewireAblation {
    let cfg = SweepConfig::default();
    let original_points = cfg.run(graph, significance);
    let rewired_graph = degree_preserving_rewire(&graph.to_unweighted(), 2.0, seed)
        .expect("rewiring valid undirected input");
    let rewired_points = cfg.run(&rewired_graph, significance);
    let conventional = |pts: &[GridPoint]| {
        pts.iter()
            .find(|pt| pt.p == 0.0)
            .expect("grid has p=0")
            .spearman
    };
    RewireAblation {
        graph: pg,
        original_best: best_point(&original_points).expect("non-empty sweep"),
        original_conventional: conventional(&original_points),
        rewired_best: best_point(&rewired_points).expect("non-empty sweep"),
        rewired_conventional: conventional(&rewired_points),
    }
}

/// Render the ablation for the Group-A graphs of a context.
pub fn rewire_report(ctx: &crate::experiments::ExperimentContext) -> TextTable {
    let mut t = TextTable::new(vec![
        "data graph",
        "orig best rho",
        "orig rho(p=0)",
        "rewired best rho",
        "rewired rho(p=0)",
        "gain destroyed",
    ]);
    for pg in [
        PaperGraph::ImdbActorActor,
        PaperGraph::EpinionsCommenterCommenter,
        PaperGraph::EpinionsProductProduct,
    ] {
        let (g, s) = ctx.unweighted(pg);
        let a = rewire_ablation(&g, &s, pg, 0xAB1A);
        t.push_row(vec![
            pg.name().to_string(),
            fmt_corr(a.original_best.spearman),
            fmt_corr(a.original_conventional),
            fmt_corr(a.rewired_best.spearman),
            fmt_corr(a.rewired_conventional),
            format!("{:.0}%", 100.0 * a.gain_destroyed()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_datagen::worlds::{Dataset, World};

    #[test]
    fn rewiring_reduces_group_a_gain() {
        let world = World::generate(Dataset::Imdb, 0.02, 13).unwrap();
        let (g, s) = PaperGraph::ImdbActorActor.view(&world);
        let g = g.to_unweighted();
        let a = rewire_ablation(&g, s, PaperGraph::ImdbActorActor, 3);
        assert!(
            a.original_gain() > 0.0,
            "sanity: D2PR should help on the original"
        );
        assert!(
            a.rewired_best.spearman < a.original_best.spearman,
            "rewiring should reduce the achievable correlation: {} vs {}",
            a.rewired_best.spearman,
            a.original_best.spearman
        );
        assert!(
            a.gain_destroyed() > 0.2,
            "destroyed {:.2}",
            a.gain_destroyed()
        );
    }

    #[test]
    fn gain_accessors_consistent() {
        let mk = |p: f64, s: f64| GridPoint {
            p,
            alpha: 0.85,
            beta: 0.0,
            spearman: s,
            iterations: 1,
        };
        let a = RewireAblation {
            graph: PaperGraph::ImdbActorActor,
            original_best: mk(2.0, 0.5),
            original_conventional: 0.1,
            rewired_best: mk(1.0, 0.2),
            rewired_conventional: 0.1,
        };
        assert!((a.original_gain() - 0.4).abs() < 1e-12);
        assert!((a.rewired_gain() - 0.1).abs() < 1e-12);
        assert!((a.gain_destroyed() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gain_destroyed_clamps() {
        let mk = |s: f64| GridPoint {
            p: 0.5,
            alpha: 0.85,
            beta: 0.0,
            spearman: s,
            iterations: 1,
        };
        // no original gain
        let a = RewireAblation {
            graph: PaperGraph::ImdbActorActor,
            original_best: mk(0.1),
            original_conventional: 0.1,
            rewired_best: mk(0.3),
            rewired_conventional: 0.1,
        };
        assert_eq!(a.gain_destroyed(), 0.0);
    }
}
