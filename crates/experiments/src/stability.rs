//! Seed-stability analysis of the reproduction.
//!
//! A shape claim is only credible if it survives re-generating the worlds
//! with fresh randomness. `repro stability` regenerates every dataset with
//! several master seeds, re-runs the Figure 2–4 p sweeps, and reports per
//! graph: how often the optimum lands in the paper's group region, the
//! spread of the optimum, and a bootstrap confidence interval on the
//! conventional-PageRank correlation.

use crate::report::{fmt_corr, TextTable};
use crate::sweep::{best_point, SweepConfig};
use d2pr_datagen::worlds::{ApplicationGroup, PaperGraph, World};
use d2pr_graph::error::Result;
use d2pr_stats::summary::summarize;

/// Stability outcome for one paper graph across seeds.
#[derive(Debug, Clone)]
pub struct GraphStability {
    /// Which data graph.
    pub graph: PaperGraph,
    /// Optimal `p` per seed.
    pub best_ps: Vec<f64>,
    /// Best correlation per seed.
    pub best_rhos: Vec<f64>,
    /// Correlation at `p = 0` per seed.
    pub conventional_rhos: Vec<f64>,
}

impl GraphStability {
    /// Does an optimum `p` satisfy the graph's group region? Group A needs
    /// `p > 0`, Group B `|p| ≤ 0.5`, Group C `p ≤ 0.5` with the plateau
    /// convention of DESIGN.md §4.
    pub fn in_group_region(&self, p: f64) -> bool {
        match self.graph.group() {
            ApplicationGroup::A => p > 0.0,
            ApplicationGroup::B => p.abs() <= 0.5,
            ApplicationGroup::C => p <= 0.5,
        }
    }

    /// Fraction of seeds whose optimum lands in the group region.
    pub fn region_hit_rate(&self) -> f64 {
        if self.best_ps.is_empty() {
            return 0.0;
        }
        let hits = self
            .best_ps
            .iter()
            .filter(|&&p| self.in_group_region(p))
            .count();
        hits as f64 / self.best_ps.len() as f64
    }
}

/// Run the stability sweep: `seeds.len()` independent world generations per
/// dataset, Figure 2–4 style sweeps on each.
///
/// # Errors
/// Propagates world-generation failures.
pub fn stability_analysis(scale: f64, seeds: &[u64]) -> Result<Vec<GraphStability>> {
    let cfg = SweepConfig::default();
    let mut out: Vec<GraphStability> = PaperGraph::all()
        .into_iter()
        .map(|graph| GraphStability {
            graph,
            best_ps: Vec::new(),
            best_rhos: Vec::new(),
            conventional_rhos: Vec::new(),
        })
        .collect();
    for &seed in seeds {
        for (idx, pg) in PaperGraph::all().into_iter().enumerate() {
            let world = World::generate(pg.dataset(), scale, seed)?;
            let (g, s) = pg.view(&world);
            let g = g.to_unweighted();
            let points = cfg.run(&g, s);
            let best = best_point(&points).expect("non-empty sweep");
            let conventional = points
                .iter()
                .find(|pt| pt.p == 0.0)
                .expect("grid has p=0")
                .spearman;
            out[idx].best_ps.push(best.p);
            out[idx].best_rhos.push(best.spearman);
            out[idx].conventional_rhos.push(conventional);
        }
    }
    Ok(out)
}

/// Render the stability table.
pub fn stability_report(results: &[GraphStability]) -> TextTable {
    let mut t = TextTable::new(vec![
        "data graph",
        "group",
        "region hit rate",
        "best p (mean +/- std)",
        "best rho (mean)",
        "rho(p=0) (mean)",
    ]);
    for r in results {
        let ps = summarize(&r.best_ps);
        let rhos = summarize(&r.best_rhos);
        let conv = summarize(&r.conventional_rhos);
        t.push_row(vec![
            r.graph.name().to_string(),
            format!("{:?}", r.graph.group()),
            format!("{:.0}%", 100.0 * r.region_hit_rate()),
            format!("{:+.2} +/- {:.2}", ps.mean, ps.std),
            fmt_corr(rhos.mean),
            fmt_corr(conv.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_runs_on_two_seeds() {
        let results = stability_analysis(0.02, &[5, 6]).unwrap();
        assert_eq!(results.len(), 8);
        for r in &results {
            assert_eq!(r.best_ps.len(), 2);
            assert_eq!(r.best_rhos.len(), 2);
            assert_eq!(r.conventional_rhos.len(), 2);
        }
        let table = stability_report(&results);
        assert_eq!(table.num_rows(), 8);
    }

    #[test]
    fn group_regions_encode_paper_claims() {
        let mk = |graph: PaperGraph| GraphStability {
            graph,
            best_ps: vec![],
            best_rhos: vec![],
            conventional_rhos: vec![],
        };
        let a = mk(PaperGraph::ImdbActorActor);
        assert!(a.in_group_region(0.5));
        assert!(!a.in_group_region(0.0));
        let b = mk(PaperGraph::DblpAuthorAuthor);
        assert!(b.in_group_region(0.0));
        assert!(!b.in_group_region(1.0));
        let c = mk(PaperGraph::LastfmArtistArtist);
        assert!(c.in_group_region(-2.0));
        assert!(!c.in_group_region(1.0));
    }

    #[test]
    fn hit_rate_counts_correctly() {
        let s = GraphStability {
            graph: PaperGraph::ImdbActorActor, // Group A: p > 0
            best_ps: vec![1.0, 2.0, -0.5, 0.5],
            best_rhos: vec![],
            conventional_rhos: vec![],
        };
        assert!((s.region_hit_rate() - 0.75).abs() < 1e-12);
    }
}
