//! Parameter sweep engine.
//!
//! Every figure in the paper is a sweep of the de-coupling weight `p`
//! (optionally crossed with `α` or `β`) plotting the Spearman correlation
//! between D2PR ranks and application significance. This module runs those
//! sweeps efficiently through the fused [`Engine`]: the transpose structure
//! and degree/Θ tables are built once per graph, the operator is rewritten
//! in place per grid point, and one arc-balanced worker pool serves every
//! iteration of every `(β, α, p)` grid point.

use d2pr_core::d2pr::D2pr;
use d2pr_core::engine::{Engine, SweepKernel};
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::transition::TransitionModel;
use d2pr_graph::csr::CsrGraph;
use d2pr_stats::correlation::{kendall_tau_b, spearman};

/// Spearman correlation between a score vector and the significance signal
/// (scores are a monotone proxy for their ranks, so correlating scores
/// equals correlating ranks — the paper's §4.2 measure).
pub fn correlation_with_significance(scores: &[f64], significance: &[f64]) -> f64 {
    spearman(scores, significance).unwrap_or(0.0)
}

/// One evaluated grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// De-coupling weight `p`.
    pub p: f64,
    /// Residual probability `α`.
    pub alpha: f64,
    /// Connection-strength blend `β` (meaningful for weighted graphs only).
    pub beta: f64,
    /// Spearman correlation between D2PR ranks and significance.
    pub spearman: f64,
    /// Solver iterations spent.
    pub iterations: usize,
}

/// Sweep configuration; the defaults are the paper's (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Grid of `p` values (default `[−4, 4]` step 0.5).
    pub ps: Vec<f64>,
    /// Grid of `α` values (default `{0.85}`).
    pub alphas: Vec<f64>,
    /// Grid of `β` values (default `{0.0}` — full de-coupling).
    pub betas: Vec<f64>,
    /// Solver tolerance.
    pub tolerance: f64,
    /// Solver iteration cap.
    pub max_iterations: usize,
    /// Worker threads for the engine (`0` = machine parallelism).
    pub threads: usize,
    /// Kernel of the engine's single-partition sweep path
    /// ([`SweepKernel::GaussSeidel`] halves iteration counts on
    /// well-ordered graphs; pooled sweeps always pull — see the engine
    /// docs).
    pub kernel: SweepKernel,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            ps: D2pr::paper_p_grid(),
            alphas: vec![0.85],
            betas: vec![0.0],
            tolerance: 1e-9,
            max_iterations: 200,
            threads: 0,
            kernel: SweepKernel::Pull,
        }
    }
}

impl SweepConfig {
    /// The paper's α grid for Figures 6–8.
    pub fn paper_alphas() -> Vec<f64> {
        vec![0.5, 0.7, 0.85, 0.9]
    }

    /// The paper's β grid for Figures 9–11.
    pub fn paper_betas() -> Vec<f64> {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    }

    /// Run the sweep on one graph + significance pair. For unweighted
    /// graphs the β grid is ignored (a single β=0 pass runs instead, since
    /// β only exists for weighted transitions).
    ///
    /// One [`Engine`] serves the whole grid: the transposed operator
    /// structure is built once, each `(β, α, p)` point only rewrites the
    /// probability array in place, and the worker pool is reused across
    /// every `p` curve.
    pub fn run(&self, graph: &CsrGraph, significance: &[f64]) -> Vec<GridPoint> {
        assert_eq!(
            graph.num_nodes(),
            significance.len(),
            "significance must cover every node"
        );
        let betas: &[f64] = if graph.is_weighted() {
            &self.betas
        } else {
            &[0.0]
        };
        let threads = if self.threads == 0 {
            d2pr_core::engine::default_threads()
        } else {
            self.threads
        };
        let mut engine = Engine::with_threads(graph, threads).with_kernel(self.kernel);
        let mut out = Vec::with_capacity(self.ps.len() * self.alphas.len() * betas.len());
        for &beta in betas {
            let models: Vec<TransitionModel> = self
                .ps
                .iter()
                .map(|&p| {
                    if graph.is_weighted() {
                        TransitionModel::Blended { p, beta }
                    } else {
                        TransitionModel::DegreeDecoupled { p }
                    }
                })
                .collect();
            for &alpha in &self.alphas {
                let config = PageRankConfig {
                    alpha,
                    tolerance: self.tolerance,
                    max_iterations: self.max_iterations,
                    ..Default::default()
                };
                engine
                    .set_config(config)
                    .expect("validated sweep parameters");
                let results = engine
                    .sweep(&models, false)
                    .expect("validated sweep parameters");
                for (&p, result) in self.ps.iter().zip(results) {
                    let rho = correlation_with_significance(&result.scores, significance);
                    out.push(GridPoint {
                        p,
                        alpha,
                        beta,
                        spearman: rho,
                        iterations: result.iterations,
                    });
                }
            }
        }
        out
    }
}

/// The grid point with the highest Spearman correlation (ties: first).
pub fn best_point(points: &[GridPoint]) -> Option<GridPoint> {
    points.iter().copied().max_by(|a, b| {
        a.spearman
            .partial_cmp(&b.spearman)
            .expect("finite correlations")
    })
}

/// Restrict points to one `(α, β)` curve, ordered by `p`.
pub fn curve(points: &[GridPoint], alpha: f64, beta: f64) -> Vec<GridPoint> {
    let mut c: Vec<GridPoint> = points
        .iter()
        .copied()
        .filter(|pt| (pt.alpha - alpha).abs() < 1e-12 && (pt.beta - beta).abs() < 1e-12)
        .collect();
    c.sort_by(|a, b| a.p.partial_cmp(&b.p).expect("finite p"));
    c
}

/// Kendall τ-b variant of the correlation, on a subsample when the graph is
/// large (τ is O(n²)). Robustness check for the Spearman-based figures.
pub fn kendall_with_significance(scores: &[f64], significance: &[f64], max_nodes: usize) -> f64 {
    if scores.len() <= max_nodes {
        return kendall_tau_b(scores, significance).unwrap_or(0.0);
    }
    // Deterministic stride subsample.
    let stride = scores.len().div_ceil(max_nodes);
    let xs: Vec<f64> = scores.iter().step_by(stride).copied().collect();
    let ys: Vec<f64> = significance.iter().step_by(stride).copied().collect();
    kendall_tau_b(&xs, &ys).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_graph::generators::barabasi_albert;
    use d2pr_graph::stats::degrees_f64;

    #[test]
    fn sweep_produces_full_grid() {
        let g = barabasi_albert(60, 2, 3).unwrap();
        let sig = degrees_f64(&g);
        let cfg = SweepConfig {
            ps: vec![-1.0, 0.0, 1.0],
            alphas: vec![0.5, 0.85],
            betas: vec![0.0, 1.0], // ignored: unweighted graph
            ..Default::default()
        };
        let pts = cfg.run(&g, &sig);
        assert_eq!(pts.len(), 3 * 2);
    }

    #[test]
    fn degree_significance_peaks_at_negative_p() {
        // When significance IS the degree, boosting degrees (p < 0) must
        // correlate at least as well as penalizing them (p > 0).
        let g = barabasi_albert(200, 3, 9).unwrap();
        let sig = degrees_f64(&g);
        let cfg = SweepConfig {
            ps: vec![-2.0, 0.0, 2.0],
            ..Default::default()
        };
        let pts = cfg.run(&g, &sig);
        let at = |p: f64| pts.iter().find(|pt| pt.p == p).unwrap().spearman;
        assert!(
            at(-2.0) > at(2.0),
            "boost {} vs penalize {}",
            at(-2.0),
            at(2.0)
        );
        assert!(
            at(0.0) > 0.8,
            "conventional PR tracks degree, got {}",
            at(0.0)
        );
    }

    #[test]
    fn best_point_and_curve_helpers() {
        let pts = vec![
            GridPoint {
                p: 0.0,
                alpha: 0.85,
                beta: 0.0,
                spearman: 0.1,
                iterations: 5,
            },
            GridPoint {
                p: 0.5,
                alpha: 0.85,
                beta: 0.0,
                spearman: 0.7,
                iterations: 5,
            },
            GridPoint {
                p: 0.5,
                alpha: 0.5,
                beta: 0.0,
                spearman: 0.3,
                iterations: 5,
            },
        ];
        let best = best_point(&pts).unwrap();
        assert_eq!(best.p, 0.5);
        assert_eq!(best.alpha, 0.85);
        let c = curve(&pts, 0.85, 0.0);
        assert_eq!(c.len(), 2);
        assert!(c[0].p < c[1].p);
        assert!(best_point(&[]).is_none());
    }

    #[test]
    fn kendall_subsampling_bounded() {
        let g = barabasi_albert(500, 2, 4).unwrap();
        let sig = degrees_f64(&g);
        let scores: Vec<f64> = sig.iter().map(|d| d * 2.0).collect();
        let tau = kendall_with_significance(&scores, &sig, 100);
        assert!(tau > 0.99, "perfect monotone relation, got {tau}");
    }

    #[test]
    #[should_panic(expected = "significance must cover")]
    fn mismatched_significance_panics() {
        let g = barabasi_albert(10, 2, 1).unwrap();
        SweepConfig::default().run(&g, &[1.0]);
    }
}
