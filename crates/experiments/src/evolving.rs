//! Evolving-graph scenario: warm-started D2PR re-solves under edge churn.
//!
//! The serving workload this models: a graph receives a continuous stream
//! of edge insertions and deletions, batched; after every batch the ranks
//! must be refreshed. Two strategies are compared on identical batches:
//!
//! * **cold** — re-solve the updated snapshot from the teleport
//!   distribution, as a from-scratch pipeline would;
//! * **warm** — the incremental path: apply the batch through
//!   [`DeltaGraph`], patch the engine's transpose with the batch's
//!   [`ArcDelta`](d2pr_graph::delta::ArcDelta)
//!   ([`CscStructure::patched`]), and seed the re-solve with the
//!   pre-batch rank vector ([`Engine::resolve_incremental`]).
//!
//! Both strategies run the same engine, operator, and tolerance, so the
//! scores agree to solver tolerance (asserted by `tests/incremental.rs` at
//! 1e-8); the interesting output is the iteration count per batch, which
//! for small churn fractions is several times lower warm than cold. The
//! `repro evolving` subcommand prints the per-batch table;
//! `benches/incremental_updates.rs` records the same quantities at bench
//! scale in `BENCH_incremental.json`.
//!
//! Two opt-in regimes widen the mutation surface beyond unweighted edge
//! churn: `weighted` swaps the BA world for an evolving bipartite ratings
//! graph (star-weighted arcs, revised in place) served by the blended
//! β > 0 model, and `node_churn` adds user/item arrivals and departures
//! (`add_nodes`/`remove_node`) to the stream. `repro evolving --weighted
//! --node-churn` drives both.

use crate::report::TextTable;
use d2pr_core::engine::{default_threads, Engine, ResolveMode};
use d2pr_core::error::UpdateError;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::transition::TransitionModel;
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::error::GraphError;
use d2pr_graph::generators::barabasi_albert;
use d2pr_datagen::evolving::EvolvingRatingsConfig;
use d2pr_graph::transpose::CscStructure;
use d2pr_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample a deterministic churn stream over `graph`: per batch,
/// `max(2, ceil(churn · |E|))` mutations — half deletions of existing
/// edges (uniform over the current edge set), half insertions of fresh
/// ones (rejection-sampled; edges are normalized to `u < v`, so mirrored
/// storage churns both arcs). The stream depends only on `graph`, the
/// parameters, and `rng` — never on solver state — so callers replay it
/// against their own [`DeltaGraph`]. The one sampler shared by the
/// evolving and serving experiments, the `serving_concurrent` bench, and
/// the serving stress test.
///
/// # Errors
/// Propagates delta-application failures (e.g. a weighted base) as
/// [`GraphError`].
pub fn churn_stream(
    graph: &CsrGraph,
    batches: usize,
    churn: f64,
    rng: &mut StdRng,
) -> Result<Vec<EdgeBatch>, GraphError> {
    let mut dg = DeltaGraph::new(graph.clone())?;
    // Current edge list (u < v), kept in sync with the delta graph so
    // deletions can be sampled uniformly.
    let mut edges: Vec<(NodeId, NodeId)> = graph.arcs().filter(|&(u, v)| u < v).collect();
    let n = graph.num_nodes() as NodeId;
    let mut stream = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mutations = ((churn * edges.len() as f64).ceil() as usize).max(2);
        let deletes = mutations / 2;
        let inserts = mutations - deletes;
        let mut batch = EdgeBatch::new();
        for _ in 0..deletes {
            let i = rng.gen_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            batch.delete(u, v);
        }
        for _ in 0..inserts {
            loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                // Normalize before the dedup checks: inserts are stored as
                // (min, max), so the membership test must use that form.
                let e = (u.min(v), u.max(v));
                if u != v && !dg.has_arc(e.0, e.1) && !batch.inserts.contains(&e) {
                    batch.insert(e.0, e.1);
                    edges.push(e);
                    break;
                }
            }
        }
        dg.apply_batch(&batch)?;
        stream.push(batch);
    }
    Ok(stream)
}

/// Which incremental re-solve strategy the evolving run serves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshMode {
    /// Warm-started full sweep (`Engine::resolve_warm`) — the PR-2 path.
    Sweep,
    /// Residual-localized push (`Engine::resolve_localized`), with its
    /// built-in hybrid/dense fallbacks.
    Localized,
    /// Auto-selection from the batch footprint
    /// (`Engine::resolve_incremental`).
    #[default]
    Auto,
}

impl RefreshMode {
    /// Parse a CLI token (`sweep` / `localized` / `auto`).
    pub fn parse(s: &str) -> Option<RefreshMode> {
        match s {
            "sweep" => Some(RefreshMode::Sweep),
            "localized" => Some(RefreshMode::Localized),
            "auto" => Some(RefreshMode::Auto),
            _ => None,
        }
    }
}

/// Configuration of one evolving-graph run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolvingConfig {
    /// Nodes of the initial Barabási–Albert graph.
    pub nodes: usize,
    /// BA attachments per node (≈ arcs/nodes/2 for undirected storage).
    pub attachments: usize,
    /// Number of churn batches to stream.
    pub batches: usize,
    /// Fraction of current edges mutated per batch (half deletions of
    /// existing edges, half insertions of fresh ones).
    pub churn: f64,
    /// De-coupling weight `p` of the served D2PR model.
    pub p: f64,
    /// Solver residual probability `α`.
    pub alpha: f64,
    /// Solver L1 tolerance. The serving default (1e-6) is deliberately
    /// looser than the reproduction experiments' 1e-9: re-solving far
    /// below the perturbation the *next* batch will cause is wasted work
    /// (see DESIGN.md, "warm-start convergence contract").
    pub tolerance: f64,
    /// Solver iteration cap.
    pub max_iterations: usize,
    /// Engine worker threads (`0` = machine parallelism).
    pub threads: usize,
    /// RNG seed for the graph and the churn stream.
    pub seed: u64,
    /// Incremental re-solve strategy for the "warm" side of the
    /// comparison.
    pub mode: RefreshMode,
    /// Serve star-weighted arcs: the world becomes an evolving bipartite
    /// ratings graph ([`EvolvingRatingsConfig`]) whose batches insert
    /// weighted ratings and revise existing ones, and the model blends in
    /// the connectivity operator (β > 0).
    pub weighted: bool,
    /// Stream node arrivals and departures alongside edge churn (also
    /// switches to the ratings world; combine with `weighted` for the
    /// full mutation surface).
    pub node_churn: bool,
}

impl Default for EvolvingConfig {
    fn default() -> Self {
        Self {
            nodes: 20_000,
            attachments: 5,
            batches: 8,
            churn: 0.01,
            p: 0.5,
            alpha: 0.85,
            tolerance: 1e-6,
            max_iterations: 500,
            threads: 0,
            seed: 0xE401,
            mode: RefreshMode::Auto,
            weighted: false,
            node_churn: false,
        }
    }
}

/// Outcome of one churn batch: the same re-solve done cold and warm.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStep {
    /// 1-based batch index.
    pub batch: usize,
    /// Arcs that became present (mirrored arcs counted individually).
    pub inserted_arcs: usize,
    /// Arcs that became absent.
    pub deleted_arcs: usize,
    /// Arcs whose weight changed without a structural flip (0 on
    /// unweighted streams).
    pub reweighted_arcs: usize,
    /// Nodes appended by this batch (0 without node churn).
    pub grown_nodes: u32,
    /// Nodes tombstoned by this batch (0 without node churn).
    pub removed_nodes: usize,
    /// Whether the overlay was compacted at the end of this batch.
    pub compacted: bool,
    /// Iterations of the cold re-solve (teleport start).
    pub cold_iterations: usize,
    /// Iterations of the warm re-solve (previous-rank start); counts
    /// residual *pushes* when the localized path served the batch.
    pub warm_iterations: usize,
    /// Strategy that actually served the batch (fallbacks included).
    pub mode_used: ResolveMode,
    /// Frontier rows of the localized path (0 for sweeps).
    pub frontier: usize,
    /// L1 distance between the cold and warm solutions (parity check).
    pub rank_l1_divergence: f64,
    /// L1 distance between the pre-batch and post-batch ranks — how hard
    /// the batch actually shook the solution.
    pub rank_l1_shift: f64,
}

/// Full run record.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolvingReport {
    /// Node count of the initial snapshot (grows under node churn; see
    /// each step's `grown_nodes`).
    pub nodes: usize,
    /// Arc count of the initial snapshot.
    pub initial_arcs: usize,
    /// Iterations of the initial (necessarily cold) solve.
    pub initial_iterations: usize,
    /// One entry per churn batch.
    pub steps: Vec<BatchStep>,
}

impl EvolvingReport {
    /// Total cold iterations across all batches.
    pub fn total_cold(&self) -> usize {
        self.steps.iter().map(|s| s.cold_iterations).sum()
    }

    /// Total warm iterations across all batches.
    pub fn total_warm(&self) -> usize {
        self.steps.iter().map(|s| s.warm_iterations).sum()
    }

    /// Cold-to-warm iteration ratio (the headline number; > 1 means the
    /// warm start saves work).
    pub fn iteration_ratio(&self) -> f64 {
        self.total_cold() as f64 / self.total_warm().max(1) as f64
    }

    /// Largest cold-vs-warm L1 divergence over the run.
    pub fn max_divergence(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.rank_l1_divergence)
            .fold(0.0, f64::max)
    }
}

/// Stream `cfg.batches` churn batches over a BA graph, re-solving cold and
/// warm after each, and record the iteration accounting.
///
/// # Errors
/// Propagates generator, delta-application, transpose-patch, and solver
/// failures as [`UpdateError`].
pub fn run_evolving(cfg: &EvolvingConfig) -> Result<EvolvingReport, UpdateError> {
    let threads = if cfg.threads == 0 {
        default_threads()
    } else {
        cfg.threads
    };
    let solver = PageRankConfig {
        alpha: cfg.alpha,
        tolerance: cfg.tolerance,
        max_iterations: cfg.max_iterations,
        ..Default::default()
    };
    // A weighted stream needs β > 0 to matter: the blended model is the
    // one whose transition actually reads the star values.
    let model = if cfg.weighted {
        TransitionModel::Blended {
            p: cfg.p,
            beta: 0.5,
        }
    } else {
        TransitionModel::DegreeDecoupled { p: cfg.p }
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let (g0, stream) = if cfg.weighted || cfg.node_churn {
        // Evolving ratings world: two users per item, `attachments`
        // ratings per user, per-batch volumes scaled by the same churn
        // fraction the BA stream uses.
        let entities = (cfg.nodes * 2 / 3).max(4);
        let containers = (cfg.nodes - entities).max(4);
        let memberships = entities * cfg.attachments.max(1);
        let mutations = ((cfg.churn * memberships as f64).ceil() as usize).max(2);
        let world = EvolvingRatingsConfig {
            num_entities: entities,
            num_containers: containers,
            ratings_per_entity: cfg.attachments.max(1),
            batches: cfg.batches,
            ratings_per_batch: mutations / 2,
            reratings_per_batch: mutations - mutations / 2,
            arrivals_per_batch: if cfg.node_churn { (mutations / 4).max(2) } else { 0 },
            departures_per_batch: if cfg.node_churn { (mutations / 8).max(1) } else { 0 },
            weighted: cfg.weighted,
            noise: 0.3,
            seed: rng.gen(),
        }
        .generate()?;
        (world.base, world.batches)
    } else {
        let g0 = barabasi_albert(cfg.nodes, cfg.attachments, rng.gen())?;
        let stream = churn_stream(&g0, cfg.batches, cfg.churn, &mut rng)?;
        (g0, stream)
    };
    let initial_arcs = g0.num_arcs();

    let mut snapshot = g0.clone();
    let mut dg = DeltaGraph::new(g0)?;
    let (initial_iterations, mut prev_scores, mut state);
    {
        let csc = std::sync::Arc::new(CscStructure::build(&snapshot));
        let mut engine = Engine::with_structure(&snapshot, csc, threads)?.with_config(solver)?;
        engine.set_model(model)?;
        let r = engine.solve()?;
        initial_iterations = r.iterations;
        prev_scores = r.scores;
        state = engine.into_state();
    }

    let mut steps = Vec::with_capacity(cfg.batches);
    for (i, batch) in stream.iter().enumerate() {
        let b = i + 1;
        // The incremental serving pipeline: batch -> snapshot -> patched
        // engine state (no O(E) rebuild) -> strategy-selected re-solve.
        let outcome = dg.apply_batch(batch)?;
        let new_snapshot = dg.snapshot();
        state = state.patched(&new_snapshot, &outcome.delta)?;
        let mut engine = Engine::from_state(&new_snapshot, state)?;
        // Node-growth batches: fresh ids start unranked; extend the warm
        // start so every mode (including the plain sweep) accepts it.
        prev_scores.resize(new_snapshot.num_nodes(), 0.0);
        let warm = match cfg.mode {
            RefreshMode::Sweep => {
                let pool_spawns = engine.pool_spawns();
                let result = engine.resolve_warm(&prev_scores)?;
                d2pr_core::engine::IncrementalOutcome {
                    result,
                    mode: ResolveMode::WarmSweep,
                    frontier: 0,
                    pushes: 0,
                    pool_spawns,
                }
            }
            RefreshMode::Localized => engine.resolve_localized(&prev_scores, &outcome.delta)?,
            RefreshMode::Auto => engine.resolve_incremental(&prev_scores, &outcome.delta)?,
        };
        let cold = engine.solve()?;

        let l1 =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        steps.push(BatchStep {
            batch: b,
            inserted_arcs: outcome.delta.inserted.len(),
            deleted_arcs: outcome.delta.deleted.len(),
            reweighted_arcs: outcome.delta.reweighted.len(),
            grown_nodes: outcome.delta.added_nodes(),
            removed_nodes: outcome.delta.removed_nodes.len(),
            compacted: outcome.compacted,
            cold_iterations: cold.iterations,
            warm_iterations: warm.result.iterations,
            mode_used: warm.mode,
            frontier: warm.frontier,
            rank_l1_divergence: l1(&cold.scores, &warm.result.scores),
            rank_l1_shift: l1(&warm.result.scores, &prev_scores),
        });
        prev_scores = warm.result.scores;
        state = engine.into_state();
        snapshot = new_snapshot;
    }
    let _ = &snapshot; // last snapshot kept alive until the engine is gone

    Ok(EvolvingReport {
        nodes: cfg.nodes,
        initial_arcs,
        initial_iterations,
        steps,
    })
}

/// Per-batch table for the `repro evolving` subcommand.
pub fn evolving_report(r: &EvolvingReport) -> TextTable {
    let mut t = TextTable::new(vec![
        "batch",
        "+arcs",
        "-arcs",
        "rew",
        "+nodes",
        "-nodes",
        "compact",
        "mode",
        "frontier",
        "cold_iters",
        "warm_iters",
        "rank_shift",
        "divergence",
    ]);
    for s in &r.steps {
        let mode = match s.mode_used {
            ResolveMode::WarmSweep => "sweep",
            ResolveMode::LocalizedPush => "push",
            ResolveMode::HybridPushSweep => "hybrid",
            ResolveMode::DenseGaussSeidel => "gs",
        };
        t.push_row(vec![
            s.batch.to_string(),
            s.inserted_arcs.to_string(),
            s.deleted_arcs.to_string(),
            s.reweighted_arcs.to_string(),
            s.grown_nodes.to_string(),
            s.removed_nodes.to_string(),
            if s.compacted { "yes" } else { "" }.to_string(),
            mode.to_string(),
            s.frontier.to_string(),
            s.cold_iterations.to_string(),
            s.warm_iterations.to_string(),
            format!("{:.2e}", s.rank_l1_shift),
            format!("{:.2e}", s.rank_l1_divergence),
        ]);
    }
    t.push_row(vec![
        "total".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        r.total_cold().to_string(),
        r.total_warm().to_string(),
        format!("{:.2}x fewer", r.iteration_ratio()),
        format!("{:.2e} max", r.max_divergence()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evolving_run_is_consistent() {
        let cfg = EvolvingConfig {
            nodes: 1_500,
            attachments: 4,
            batches: 3,
            churn: 0.01,
            threads: 2,
            tolerance: 1e-9,
            mode: RefreshMode::Sweep,
            ..Default::default()
        };
        let r = run_evolving(&cfg).unwrap();
        assert_eq!(r.steps.len(), 3);
        assert!(r.initial_iterations > 0);
        for s in &r.steps {
            assert!(s.inserted_arcs > 0 && s.deleted_arcs > 0);
            assert!(
                s.rank_l1_divergence < 1e-7,
                "cold and warm must agree: {}",
                s.rank_l1_divergence
            );
            assert!(s.warm_iterations <= s.cold_iterations);
            assert_eq!(s.mode_used, ResolveMode::WarmSweep);
        }
        assert!(r.iteration_ratio() >= 1.0);
        let table = evolving_report(&r);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn weighted_node_churn_run_agrees_with_cold() {
        let cfg = EvolvingConfig {
            nodes: 900,
            attachments: 4,
            batches: 3,
            churn: 0.02,
            threads: 1,
            tolerance: 1e-9,
            weighted: true,
            node_churn: true,
            ..Default::default()
        };
        let r = run_evolving(&cfg).unwrap();
        assert_eq!(r.steps.len(), 3);
        assert!(r.steps.iter().any(|s| s.reweighted_arcs > 0));
        assert!(r.steps.iter().any(|s| s.grown_nodes > 0));
        assert!(r.steps.iter().any(|s| s.removed_nodes > 0));
        for s in &r.steps {
            assert!(
                s.rank_l1_divergence < 1e-7,
                "cold and warm must agree under churn: {}",
                s.rank_l1_divergence
            );
        }
        let table = evolving_report(&r);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn weighted_trickle_stays_localized() {
        // Weighted edge-only deltas are localized-supported: a rating
        // revision at trickle volume must not force a global sweep.
        let cfg = EvolvingConfig {
            nodes: 1_200,
            attachments: 4,
            batches: 2,
            churn: 0.0008,
            threads: 1,
            tolerance: 1e-9,
            weighted: true,
            mode: RefreshMode::Auto,
            ..Default::default()
        };
        let r = run_evolving(&cfg).unwrap();
        for s in &r.steps {
            assert!(s.rank_l1_divergence < 1e-7, "{}", s.rank_l1_divergence);
            assert!(
                matches!(
                    s.mode_used,
                    ResolveMode::LocalizedPush | ResolveMode::HybridPushSweep
                ),
                "weighted trickle batch took {:?}",
                s.mode_used
            );
            assert!(s.frontier > 0);
        }
    }

    #[test]
    fn evolving_localized_and_auto_modes_agree_with_cold() {
        for mode in [RefreshMode::Localized, RefreshMode::Auto] {
            let cfg = EvolvingConfig {
                nodes: 1_200,
                attachments: 4,
                batches: 2,
                // Trickle-scale churn so the localized path is exercised.
                churn: 0.0005,
                threads: 1,
                tolerance: 1e-9,
                mode,
                ..Default::default()
            };
            let r = run_evolving(&cfg).unwrap();
            for s in &r.steps {
                assert!(
                    s.rank_l1_divergence < 1e-7,
                    "mode {mode:?}: divergence {}",
                    s.rank_l1_divergence
                );
            }
            let table = evolving_report(&r);
            assert_eq!(table.num_rows(), 3);
        }
    }
}
