//! One function per paper table/figure.
//!
//! Every experiment consumes an [`ExperimentContext`] (the four generated
//! worlds at a chosen scale/seed) and returns both structured results (for
//! integration tests and EXPERIMENTS.md) and a rendered [`TextTable`].

use crate::report::{fmt_corr, fmt_f, TextTable};
use crate::sweep::{best_point, correlation_with_significance, curve, GridPoint, SweepConfig};
use d2pr_core::engine::Engine;
use d2pr_core::kernel::DegreeKernel;
use d2pr_core::transition::TransitionModel;
use d2pr_datagen::worlds::{ApplicationGroup, Dataset, PaperGraph, World};
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::error::Result;
use d2pr_graph::stats::{degree_stats, degrees_f64};
use d2pr_stats::rank::{ordinal_ranks, RankOrder};
use std::collections::HashMap;

/// The generated worlds shared by all experiments.
#[derive(Debug)]
pub struct ExperimentContext {
    /// Graph scale relative to the paper's Table 3 sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    worlds: HashMap<Dataset, World>,
}

impl ExperimentContext {
    /// Generate all four dataset worlds.
    ///
    /// # Errors
    /// Propagates generator failures.
    pub fn new(scale: f64, seed: u64) -> Result<Self> {
        let mut worlds = HashMap::new();
        for d in Dataset::all() {
            worlds.insert(d, World::generate(d, scale, seed)?);
        }
        Ok(Self {
            scale,
            seed,
            worlds,
        })
    }

    /// Access a generated world.
    pub fn world(&self, dataset: Dataset) -> &World {
        &self.worlds[&dataset]
    }

    /// The unweighted variant of a paper graph plus its significance
    /// (Figures 2–8 all use unweighted graphs).
    pub fn unweighted(&self, graph: PaperGraph) -> (CsrGraph, Vec<f64>) {
        let (g, s) = graph.view(self.world(graph.dataset()));
        (g.to_unweighted(), s.to_vec())
    }

    /// The weighted variant (Figures 9–11).
    pub fn weighted(&self, graph: PaperGraph) -> (CsrGraph, Vec<f64>) {
        let (g, s) = graph.view(self.world(graph.dataset()));
        (g.clone(), s.to_vec())
    }

    /// The paper graphs belonging to one application group, figure order.
    pub fn group_members(group: ApplicationGroup) -> Vec<PaperGraph> {
        match group {
            ApplicationGroup::A => vec![
                PaperGraph::ImdbActorActor,
                PaperGraph::EpinionsCommenterCommenter,
                PaperGraph::EpinionsProductProduct,
            ],
            ApplicationGroup::B => {
                vec![PaperGraph::DblpAuthorAuthor, PaperGraph::ImdbMovieMovie]
            }
            ApplicationGroup::C => vec![
                PaperGraph::DblpArticleArticle,
                PaperGraph::LastfmListenerListener,
                PaperGraph::LastfmArtistArtist,
            ],
        }
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Spearman correlation between node degree and conventional PageRank
/// (p = 0, α = 0.85) on one graph — one cell of the paper's Table 1.
pub fn degree_pagerank_coupling(graph: &CsrGraph) -> f64 {
    let mut engine = Engine::new(graph);
    let scores = engine
        .solve_model(TransitionModel::DegreeDecoupled { p: 0.0 })
        .expect("default parameters are valid")
        .scores;
    let degs = degrees_f64(graph);
    correlation_with_significance(&scores, &degs)
}

/// Structured Table 1: the three graphs the paper reports.
pub fn table1(ctx: &ExperimentContext) -> Vec<(PaperGraph, f64)> {
    // Paper: Listener (Last.fm friendship), Article (DBLP), Movie (IMDB).
    [
        PaperGraph::LastfmListenerListener,
        PaperGraph::DblpArticleArticle,
        PaperGraph::ImdbMovieMovie,
    ]
    .into_iter()
    .map(|pg| {
        let (g, _) = ctx.unweighted(pg);
        (pg, degree_pagerank_coupling(&g))
    })
    .collect()
}

/// Rendered Table 1 with the paper's reference values.
pub fn table1_report(ctx: &ExperimentContext) -> TextTable {
    let paper = [0.988, 0.997, 0.848];
    let mut t = TextTable::new(vec!["data graph", "paper rho", "measured rho"]);
    for ((pg, rho), paper_rho) in table1(ctx).into_iter().zip(paper) {
        t.push_row(vec![
            pg.name().to_string(),
            fmt_f(paper_rho, 3),
            fmt_corr(rho),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One row of Table 2: a node, its degree, and its D2PR rank at each `p`.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Node id in the sample graph.
    pub node: u32,
    /// Node degree.
    pub degree: u32,
    /// Ordinal rank (1 = best) at each swept `p`.
    pub ranks: Vec<usize>,
}

/// Table 2: ranks of the highest- and lowest-degree nodes under
/// `p ∈ {−4, −2, 0, 2, 4}` on the Group-A sample graph (IMDB actor–actor).
pub fn table2(ctx: &ExperimentContext) -> (Vec<f64>, Vec<Table2Row>) {
    let ps = vec![-4.0, -2.0, 0.0, 2.0, 4.0];
    let (g, _) = ctx.unweighted(PaperGraph::ImdbActorActor);
    // One fused engine run for the whole grid: the operator is rewritten in
    // place per point instead of being rebuilt.
    let mut engine = Engine::new(&g);
    let models: Vec<TransitionModel> = ps
        .iter()
        .map(|&p| TransitionModel::DegreeDecoupled { p })
        .collect();
    let per_p_ranks: Vec<Vec<usize>> = engine
        .sweep(&models, false)
        .expect("valid parameters")
        .into_iter()
        .map(|r| ordinal_ranks(&r.scores, RankOrder::Descending))
        .collect();
    // Two highest-degree and two lowest-degree (non-isolated) nodes.
    let mut by_degree: Vec<u32> = g.nodes().filter(|&v| g.out_degree(v) > 0).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    let mut picks: Vec<u32> = by_degree.iter().take(2).copied().collect();
    picks.extend(by_degree.iter().rev().take(2).copied());
    let rows = picks
        .into_iter()
        .map(|v| Table2Row {
            node: v,
            degree: g.out_degree(v),
            ranks: per_p_ranks.iter().map(|r| r[v as usize]).collect(),
        })
        .collect();
    (ps, rows)
}

/// Rendered Table 2.
pub fn table2_report(ctx: &ExperimentContext) -> TextTable {
    let (ps, rows) = table2(ctx);
    let mut header = vec!["node".to_string(), "degree".to_string()];
    header.extend(ps.iter().map(|p| format!("rank@p={p}")));
    let mut t = TextTable::new(header);
    for r in rows {
        let mut row = vec![r.node.to_string(), r.degree.to_string()];
        row.extend(r.ranks.iter().map(|x| x.to_string()));
        t.push_row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// Rendered Table 3: statistics of all eight generated data graphs, with
/// the paper's reference rows for comparison.
pub fn table3_report(ctx: &ExperimentContext) -> TextTable {
    let mut t = TextTable::new(vec![
        "data graph",
        "nodes",
        "edges",
        "avg deg",
        "std deg",
        "med nbr-deg std",
    ]);
    for pg in PaperGraph::all() {
        let (g, _) = ctx.weighted(pg);
        let s = degree_stats(&g);
        t.push_row(vec![
            pg.name().to_string(),
            s.num_nodes.to_string(),
            s.num_edges.to_string(),
            fmt_f(s.avg_degree, 2),
            fmt_f(s.std_degree, 2),
            fmt_f(s.median_neighbor_degree_std, 2),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// Rendered Figure 1(b): transition probabilities from node A (neighbors of
/// degree 2, 3, 1) for `p ∈ {0, 2, −2}` — must match the paper's numbers
/// 0.33/0.33/0.33, 0.18/0.08/0.74, 0.29/0.64/0.07.
pub fn fig1_report() -> TextTable {
    let degs = [2.0, 3.0, 1.0];
    let labels = ["B (deg 2)", "C (deg 3)", "D (deg 1)"];
    let mut t = TextTable::new(vec!["dest", "p=0", "p=2", "p=-2"]);
    let rows: Vec<Vec<f64>> = [0.0, 2.0, -2.0]
        .iter()
        .map(|&p| DegreeKernel::new(p).normalize(&degs))
        .collect();
    for (i, label) in labels.iter().enumerate() {
        t.push_row(vec![
            label.to_string(),
            fmt_f(rows[0][i], 3),
            fmt_f(rows[1][i], 3),
            fmt_f(rows[2][i], 3),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 2–4 (p sweeps per application group)
// ---------------------------------------------------------------------------

/// A labelled sweep result for one paper graph.
#[derive(Debug, Clone)]
pub struct GraphSweep {
    /// Which data graph.
    pub graph: PaperGraph,
    /// All evaluated grid points.
    pub points: Vec<GridPoint>,
}

impl GraphSweep {
    /// The best point of the sweep.
    pub fn best(&self) -> GridPoint {
        best_point(&self.points).expect("sweep is never empty")
    }

    /// Correlation at `p = 0` for the default α/β curve (conventional
    /// PageRank baseline).
    pub fn conventional(&self) -> f64 {
        self.points
            .iter()
            .find(|pt| pt.p == 0.0)
            .map(|pt| pt.spearman)
            .expect("grid contains p = 0")
    }
}

/// Run the unweighted p sweep (α = 0.85, β = 0) for every graph in a group
/// (Figure 2 for Group A, 3 for B, 4 for C).
pub fn group_p_sweep(ctx: &ExperimentContext, group: ApplicationGroup) -> Vec<GraphSweep> {
    let cfg = SweepConfig::default();
    ExperimentContext::group_members(group)
        .into_iter()
        .map(|pg| {
            let (g, s) = ctx.unweighted(pg);
            GraphSweep {
                graph: pg,
                points: cfg.run(&g, &s),
            }
        })
        .collect()
}

/// Rendered p-sweep figure: one row per `p`, one column per graph, plus a
/// summary of optima.
pub fn group_p_sweep_report(sweeps: &[GraphSweep]) -> TextTable {
    let mut header = vec!["p".to_string()];
    header.extend(sweeps.iter().map(|s| s.graph.name().to_string()));
    let mut t = TextTable::new(header);
    if sweeps.is_empty() {
        return t;
    }
    let ps: Vec<f64> = curve(&sweeps[0].points, 0.85, 0.0)
        .iter()
        .map(|pt| pt.p)
        .collect();
    for &p in &ps {
        let mut row = vec![format!("{p:+.1}")];
        for s in sweeps {
            let pt = s
                .points
                .iter()
                .find(|pt| pt.p == p)
                .expect("all sweeps share the grid");
            row.push(fmt_corr(pt.spearman));
        }
        t.push_row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Correlation between node degrees and application significance per graph
/// (no PageRank involved) — the grouping evidence of Figure 5.
pub fn fig5(ctx: &ExperimentContext) -> Vec<(PaperGraph, f64)> {
    PaperGraph::all()
        .into_iter()
        .map(|pg| {
            let (g, s) = ctx.unweighted(pg);
            let degs = degrees_f64(&g);
            (pg, correlation_with_significance(&degs, &s))
        })
        .collect()
}

/// Rendered Figure 5.
pub fn fig5_report(ctx: &ExperimentContext) -> TextTable {
    let mut t = TextTable::new(vec!["data graph", "group", "corr(degree, significance)"]);
    for (pg, rho) in fig5(ctx) {
        t.push_row(vec![
            pg.name().to_string(),
            format!("{:?}", pg.group()),
            fmt_corr(rho),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Figures 6–8 (α × p) and 9–11 (β × p)
// ---------------------------------------------------------------------------

/// Run the α × p grid on the group's unweighted graphs (Figures 6–8).
pub fn group_alpha_sweep(ctx: &ExperimentContext, group: ApplicationGroup) -> Vec<GraphSweep> {
    let cfg = SweepConfig {
        alphas: SweepConfig::paper_alphas(),
        ..Default::default()
    };
    ExperimentContext::group_members(group)
        .into_iter()
        .map(|pg| {
            let (g, s) = ctx.unweighted(pg);
            GraphSweep {
                graph: pg,
                points: cfg.run(&g, &s),
            }
        })
        .collect()
}

/// Run the β × p grid on the group's weighted graphs at α = 0.85
/// (Figures 9–11).
pub fn group_beta_sweep(ctx: &ExperimentContext, group: ApplicationGroup) -> Vec<GraphSweep> {
    let cfg = SweepConfig {
        betas: SweepConfig::paper_betas(),
        ..Default::default()
    };
    ExperimentContext::group_members(group)
        .into_iter()
        .map(|pg| {
            let (g, s) = ctx.weighted(pg);
            GraphSweep {
                graph: pg,
                points: cfg.run(&g, &s),
            }
        })
        .collect()
}

/// Render one graph's multi-series sweep: one row per `p`, one column per
/// α (or β) value.
pub fn series_report(sweep: &GraphSweep, series_is_beta: bool) -> TextTable {
    let mut series: Vec<f64> = sweep
        .points
        .iter()
        .map(|pt| if series_is_beta { pt.beta } else { pt.alpha })
        .collect();
    series.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    series.dedup();
    let mut ps: Vec<f64> = sweep.points.iter().map(|pt| pt.p).collect();
    ps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ps.dedup();

    let label = if series_is_beta { "beta" } else { "alpha" };
    let mut header = vec!["p".to_string()];
    header.extend(series.iter().map(|v| format!("{label}={v}")));
    let mut t = TextTable::new(header);
    for &p in &ps {
        let mut row = vec![format!("{p:+.1}")];
        for &sv in &series {
            let pt = sweep
                .points
                .iter()
                .find(|pt| {
                    pt.p == p
                        && if series_is_beta {
                            (pt.beta - sv).abs() < 1e-12
                        } else {
                            (pt.alpha - sv).abs() < 1e-12
                        }
                })
                .expect("full grid");
            row.push(fmt_corr(pt.spearman));
        }
        t.push_row(row);
    }
    t
}

/// Summary line used by the repro binary after each sweep.
pub fn optimum_summary(sweeps: &[GraphSweep]) -> TextTable {
    let mut t = TextTable::new(vec![
        "data graph",
        "group",
        "best p",
        "best alpha",
        "best beta",
        "best rho",
        "rho at p=0",
    ]);
    for s in sweeps {
        let b = s.best();
        t.push_row(vec![
            s.graph.name().to_string(),
            format!("{:?}", s.graph.group()),
            format!("{:+.1}", b.p),
            format!("{:.2}", b.alpha),
            format!("{:.2}", b.beta),
            fmt_corr(b.spearman),
            fmt_corr(s.conventional()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::new(0.02, 17).unwrap()
    }

    #[test]
    fn context_generates_all_worlds() {
        let c = ctx();
        for d in Dataset::all() {
            assert!(c.world(d).entity_graph.num_nodes() > 0);
        }
        let (g, s) = c.unweighted(PaperGraph::ImdbActorActor);
        assert!(!g.is_weighted());
        assert_eq!(g.num_nodes(), s.len());
        let (gw, _) = c.weighted(PaperGraph::ImdbActorActor);
        assert!(gw.is_weighted());
    }

    #[test]
    fn table1_values_high() {
        let c = ctx();
        for (pg, rho) in table1(&c) {
            assert!(rho > 0.5, "{} coupling too weak: {rho}", pg.name());
        }
        let rendered = table1_report(&c);
        assert_eq!(rendered.num_rows(), 3);
    }

    #[test]
    fn table2_high_degree_nodes_fall_with_positive_p() {
        let c = ctx();
        let (ps, rows) = table2(&c);
        assert_eq!(ps, vec![-4.0, -2.0, 0.0, 2.0, 4.0]);
        assert_eq!(rows.len(), 4);
        // Highest-degree node: rank at p=-4 (boost) better than at p=+4.
        let top = &rows[0];
        assert!(
            top.ranks[0] < top.ranks[4],
            "high-degree node should fall when p grows: {:?}",
            top.ranks
        );
        // Lowest-degree node: rank improves as p grows.
        let bottom = rows.last().unwrap();
        assert!(
            bottom.ranks[0] > bottom.ranks[4],
            "low-degree node should rise when p grows: {:?}",
            bottom.ranks
        );
    }

    #[test]
    fn fig1_matches_paper_numbers() {
        let t = fig1_report();
        let s = t.render();
        // exact values behind the paper's rounded 0.33/0.74/0.64
        assert!(s.contains("0.333"), "{s}");
        assert!(s.contains("0.735"), "{s}");
        assert!(s.contains("0.643"), "{s}");
    }

    #[test]
    fn group_members_cover_all_graphs() {
        let mut n = 0;
        for g in [
            ApplicationGroup::A,
            ApplicationGroup::B,
            ApplicationGroup::C,
        ] {
            n += ExperimentContext::group_members(g).len();
        }
        assert_eq!(n, 8);
    }

    #[test]
    fn sweep_report_shapes() {
        let c = ctx();
        let sweeps = group_p_sweep(&c, ApplicationGroup::B);
        assert_eq!(sweeps.len(), 2);
        let report = group_p_sweep_report(&sweeps);
        assert_eq!(report.num_rows(), 17); // paper grid
        let summary = optimum_summary(&sweeps);
        assert_eq!(summary.num_rows(), 2);
    }
}
