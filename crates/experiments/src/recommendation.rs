//! Recommendation-accuracy evaluation (extension, DESIGN.md §6).
//!
//! The paper's abstract claims D2PR "improves the effectiveness of
//! PageRank based … recommendation systems" but evaluates only rank
//! correlations. This experiment closes the loop: treat the top-quartile
//! significant nodes as the relevant set, rank nodes with conventional
//! PageRank vs the group-appropriate D2PR, and report top-k retrieval
//! quality (precision@k, NDCG@k, average precision).

use crate::report::{fmt_f, TextTable};
use crate::sweep::best_point;
use crate::sweep::SweepConfig;
use d2pr_core::d2pr::D2pr;
use d2pr_datagen::worlds::PaperGraph;
use d2pr_graph::csr::CsrGraph;
use d2pr_stats::metrics::{average_precision, ndcg_at_k, precision_at_k};
use std::collections::HashSet;

/// Retrieval quality of one ranking against a significance signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalQuality {
    /// Precision at `k`.
    pub precision_at_k: f64,
    /// Normalized DCG at `k`.
    pub ndcg_at_k: f64,
    /// Average precision over the full ranking.
    pub average_precision: f64,
    /// The `k` used (top 10% of nodes).
    pub k: usize,
}

/// Evaluate a score vector as a recommender for the top-quartile significant
/// nodes. Returns `None` for degenerate inputs (all-equal significance).
pub fn retrieval_quality(scores: &[f64], significance: &[f64]) -> Option<RetrievalQuality> {
    let n = scores.len();
    if n < 8 || scores.len() != significance.len() {
        return None;
    }
    let k = (n / 10).max(1);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        significance[b]
            .partial_cmp(&significance[a])
            .expect("finite")
    });
    let relevant: HashSet<usize> = order[..n / 4].iter().copied().collect();

    let min = significance.iter().cloned().fold(f64::INFINITY, f64::min);
    let gains: Vec<f64> = significance.iter().map(|s| s - min).collect();

    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("finite")
            .then(a.cmp(&b))
    });

    Some(RetrievalQuality {
        precision_at_k: precision_at_k(&ranked, &relevant, k)?,
        ndcg_at_k: ndcg_at_k(&ranked, &gains, k)?,
        average_precision: average_precision(&ranked, &relevant)?,
        k,
    })
}

/// One row of the recommendation comparison.
#[derive(Debug, Clone)]
pub struct RecommendationRow {
    /// Which data graph.
    pub graph: PaperGraph,
    /// The de-coupling weight chosen by the correlation sweep.
    pub best_p: f64,
    /// Quality of conventional PageRank (p = 0).
    pub conventional: RetrievalQuality,
    /// Quality of D2PR at the swept optimum.
    pub decoupled: RetrievalQuality,
}

/// Compare conventional vs sweep-optimal D2PR as recommenders on one graph.
pub fn compare_recommenders(
    graph: &CsrGraph,
    significance: &[f64],
    pg: PaperGraph,
) -> Option<RecommendationRow> {
    let cfg = SweepConfig::default();
    let points = cfg.run(graph, significance);
    let best = best_point(&points)?;
    let engine = D2pr::new(graph);
    let conventional_scores = engine.scores(0.0).ok()?.scores;
    let decoupled_scores = engine.scores(best.p).ok()?.scores;
    Some(RecommendationRow {
        graph: pg,
        best_p: best.p,
        conventional: retrieval_quality(&conventional_scores, significance)?,
        decoupled: retrieval_quality(&decoupled_scores, significance)?,
    })
}

/// Run the comparison for every paper graph in a context; render a table.
pub fn recommendation_report(ctx: &crate::experiments::ExperimentContext) -> TextTable {
    let mut t = TextTable::new(vec![
        "data graph",
        "group",
        "best p",
        "P@k (p=0)",
        "P@k (D2PR)",
        "NDCG (p=0)",
        "NDCG (D2PR)",
        "AP (p=0)",
        "AP (D2PR)",
    ]);
    for pg in PaperGraph::all() {
        let (g, s) = ctx.unweighted(pg);
        if let Some(row) = compare_recommenders(&g, &s, pg) {
            t.push_row(vec![
                pg.name().to_string(),
                format!("{:?}", pg.group()),
                format!("{:+.1}", row.best_p),
                fmt_f(row.conventional.precision_at_k, 3),
                fmt_f(row.decoupled.precision_at_k, 3),
                fmt_f(row.conventional.ndcg_at_k, 3),
                fmt_f(row.decoupled.ndcg_at_k, 3),
                fmt_f(row.conventional.average_precision, 3),
                fmt_f(row.decoupled.average_precision, 3),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_graph::generators::barabasi_albert;
    use d2pr_graph::stats::degrees_f64;

    #[test]
    fn perfect_scores_achieve_perfect_retrieval() {
        let sig: Vec<f64> = (0..100).map(f64::from).collect();
        let q = retrieval_quality(&sig, &sig).expect("defined");
        assert!((q.precision_at_k - 1.0).abs() < 1e-12);
        assert!((q.ndcg_at_k - 1.0).abs() < 1e-12);
        assert!((q.average_precision - 1.0).abs() < 1e-12);
        assert_eq!(q.k, 10);
    }

    #[test]
    fn reversed_scores_perform_poorly() {
        let sig: Vec<f64> = (0..100).map(f64::from).collect();
        let rev: Vec<f64> = sig.iter().rev().copied().collect();
        let q = retrieval_quality(&rev, &sig).expect("defined");
        assert_eq!(q.precision_at_k, 0.0);
        assert!(q.average_precision < 0.3);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(retrieval_quality(&[1.0; 4], &[1.0; 4]).is_none());
        assert!(retrieval_quality(&[1.0; 10], &[1.0; 9]).is_none());
    }

    #[test]
    fn compare_recommenders_runs_on_synthetic_graph() {
        let g = barabasi_albert(120, 3, 5).unwrap();
        // Significance = degree: boosting-friendly; the comparison must run
        // and D2PR-at-best-p must match or beat conventional on P@k.
        let sig = degrees_f64(&g);
        let row = compare_recommenders(&g, &sig, PaperGraph::LastfmArtistArtist).expect("defined");
        assert!(row.decoupled.precision_at_k >= row.conventional.precision_at_k - 1e-9);
    }
}
