//! Mixed reader/writer serving scenario: concurrent point queries against
//! a continuously refreshed (and optionally sharded) D2PR ranking.
//!
//! The `repro serve` subcommand drives the PR-5 serving stack end to end:
//! a [`ShardManager`] hosts one uniform view (`--shards 1`, the default)
//! or N personalization views over one shared transpose, reader threads
//! hammer [`ScoreReader::get`] round-robin across the shards, and the
//! writer streams churn batches through
//! [`ShardManager::ingest_all`](d2pr_core::serving::ShardManager::ingest_all).
//! The per-batch table shows the refresh strategy, its wall time, and how
//! many reads were served **during** each refresh — the number that was
//! zero, by construction, before the double-buffered publication path.
//!
//! With `--data-dir` the same stream runs on the **durable** stack
//! ([`DurableShardManager`]): every batch is logged and fsynced before it
//! publishes, snapshots land every `--snapshot-every` ingests, and a later
//! `repro recover <dir>` revives the store and prints where it resumed.

use crate::evolving::churn_stream;
use crate::report::TextTable;
use d2pr_core::engine::{default_threads, ResolveMode};
use d2pr_core::error::UpdateError;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::{RefreshOutcome, ScoreReader, ShardManager};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::generators::barabasi_albert;
use d2pr_store::durable::{RecoveryReport, StoreOptions};
use d2pr_store::{DurableShardManager, ShardIngest, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Errors of the serving scenario: the in-memory stack's update errors
/// plus the durable stack's store errors.
#[derive(Debug)]
pub enum ServeError {
    /// The serving/solver layer failed.
    Update(UpdateError),
    /// The durability layer failed.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Update(e) => write!(f, "{e}"),
            ServeError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<UpdateError> for ServeError {
    fn from(e: UpdateError) -> Self {
        ServeError::Update(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<d2pr_graph::error::GraphError> for ServeError {
    fn from(e: d2pr_graph::error::GraphError) -> Self {
        ServeError::Update(UpdateError::Graph(e))
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Nodes of the initial Barabási–Albert graph.
    pub nodes: usize,
    /// BA attachments per node.
    pub attachments: usize,
    /// Churn batches to stream.
    pub batches: usize,
    /// Fraction of current edges mutated per batch.
    pub churn: f64,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Shards: 1 = a single uniform view; N > 1 = N personalization views
    /// over one shared transpose structure.
    pub shards: usize,
    /// De-coupling weight `p` of the served model.
    pub p: f64,
    /// Residual probability `α`.
    pub alpha: f64,
    /// Solver L1 tolerance (serving default 1e-6).
    pub tolerance: f64,
    /// Solver iteration cap.
    pub max_iterations: usize,
    /// Engine worker threads per shard (`0` = machine parallelism).
    pub threads: usize,
    /// RNG seed for the graph, the teleports, and the churn stream.
    pub seed: u64,
    /// Ranked-read size: readers interleave `top_k(top_k)` queries into
    /// their point-read stream (0 = point reads only, the pre-index mix).
    pub top_k: usize,
    /// Fraction of reads that are ranked (`top_k`) queries when
    /// [`ServeConfig::top_k`] is non-zero; clamped to `[0, 1]`.
    pub query_mix: f64,
    /// When set, serve on the durable stack persisting into this
    /// directory (refused when it already holds state — `recover` it
    /// instead).
    pub data_dir: Option<PathBuf>,
    /// Snapshot cadence of the durable stack (ignored without
    /// `data_dir`; 0 = only the initial snapshot, the whole stream rides
    /// the log).
    pub snapshot_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            nodes: 20_000,
            attachments: 5,
            batches: 6,
            churn: 0.002,
            readers: 2,
            shards: 1,
            p: 0.5,
            alpha: 0.85,
            tolerance: 1e-6,
            max_iterations: 500,
            threads: 0,
            seed: 0x5EB7,
            top_k: 0,
            query_mix: 0.0,
            data_dir: None,
            snapshot_every: 2,
        }
    }
}

/// The two serving stacks the scenario can drive: in-memory, or durable
/// (write-ahead logged + snapshotted) when `--data-dir` is given.
enum Stack {
    Mem(ShardManager),
    Durable(DurableShardManager),
}

impl Stack {
    fn readers(&self) -> Vec<ScoreReader> {
        match self {
            Stack::Mem(m) => m.readers(),
            Stack::Durable(d) => d.readers(),
        }
    }

    fn num_shards(&self) -> usize {
        match self {
            Stack::Mem(m) => m.num_shards(),
            Stack::Durable(d) => d.num_shards(),
        }
    }

    /// Group-ingest on either stack. The scenario streams pre-validated
    /// batches, so a durable partial failure is converted to its
    /// first-failing shard's error.
    fn ingest_all(&mut self, batch: &EdgeBatch) -> Result<Vec<RefreshOutcome>, ServeError> {
        match self {
            Stack::Mem(m) => Ok(m.ingest_all(batch)?),
            Stack::Durable(d) => {
                let report = d.ingest_all(batch);
                let mut outcomes = Vec::with_capacity(report.outcomes.len());
                for o in report.outcomes {
                    match o {
                        ShardIngest::Applied(outcome) => outcomes.push(outcome),
                        ShardIngest::Failed(e) => return Err(ServeError::Store(e)),
                        ShardIngest::Skipped => unreachable!("Skipped only follows Failed"),
                    }
                }
                Ok(outcomes)
            }
        }
    }
}

/// One streamed batch, as served.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStep {
    /// 1-based batch index.
    pub batch: usize,
    /// Arcs inserted / deleted (effective, mirrored arcs counted).
    pub inserted_arcs: usize,
    /// Arcs deleted.
    pub deleted_arcs: usize,
    /// Strategy that served shard 0's refresh.
    pub mode_used: ResolveMode,
    /// Localized frontier of shard 0's refresh (0 for sweeps).
    pub frontier: usize,
    /// Wall time of the whole group refresh (all shards), milliseconds.
    pub refresh_ms: f64,
    /// Generation every shard publishes after this batch.
    pub generation: u64,
    /// Reads (point + ranked) the reader threads completed during this
    /// refresh.
    pub reads_during_refresh: u64,
    /// Ranked (`top_k`) reads completed during this refresh — also
    /// wait-free, answered from the retiring slot's maintained index.
    pub ranked_during_refresh: u64,
}

/// Full run record.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Node count (fixed across the run).
    pub nodes: usize,
    /// Arc count of the initial snapshot.
    pub initial_arcs: usize,
    /// Shards hosted.
    pub shards: usize,
    /// Reader threads driven.
    pub readers: usize,
    /// One entry per streamed batch.
    pub steps: Vec<ServeStep>,
    /// Total reads (point + ranked) over the whole stream.
    pub total_reads: u64,
    /// Ranked (`top_k`) reads of [`ServeReport::total_reads`].
    pub ranked_reads: u64,
    /// Wall time of the whole stream, milliseconds.
    pub stream_ms: f64,
}

impl ServeReport {
    /// Total refresh wall time, milliseconds.
    pub fn total_refresh_ms(&self) -> f64 {
        self.steps.iter().map(|s| s.refresh_ms).sum()
    }

    /// Reads served per millisecond over the whole stream.
    pub fn reads_per_ms(&self) -> f64 {
        self.total_reads as f64 / self.stream_ms.max(1e-9)
    }

    /// Reads served during refresh windows (zero under a stop-the-world
    /// discipline — the availability this stack adds).
    pub fn reads_during_refreshes(&self) -> u64 {
        self.steps.iter().map(|s| s.reads_during_refresh).sum()
    }

    /// Ranked (`top_k`) reads served during refresh windows.
    pub fn ranked_during_refreshes(&self) -> u64 {
        self.steps.iter().map(|s| s.ranked_during_refresh).sum()
    }
}

/// Stream `cfg.batches` churn batches through a (sharded) serving stack
/// while `cfg.readers` threads hammer point queries, and record per-batch
/// serving accounting. With [`ServeConfig::data_dir`] set, the stack is
/// durable: every batch is fsync-logged before it publishes.
///
/// # Errors
/// Propagates generator, ingestion, solver, and durability failures as
/// [`ServeError`].
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    let threads = if cfg.threads == 0 {
        default_threads()
    } else {
        cfg.threads
    };
    let solver = PageRankConfig {
        alpha: cfg.alpha,
        tolerance: cfg.tolerance,
        max_iterations: cfg.max_iterations,
        ..Default::default()
    };
    let model = TransitionModel::DegreeDecoupled { p: cfg.p };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let g0 = barabasi_albert(cfg.nodes, cfg.attachments, rng.gen())?;
    let initial_arcs = g0.num_arcs();
    // Personalization views (shards > 1): a few hot seed nodes per shard.
    let teleports: Option<Vec<Vec<f64>>> = (cfg.shards > 1).then(|| {
        (0..cfg.shards)
            .map(|_| {
                let mut t = vec![0.0; cfg.nodes];
                for _ in 0..4 {
                    t[rng.gen_range(0..cfg.nodes)] = 1.0;
                }
                t
            })
            .collect()
    });
    let stream = churn_stream(&g0, cfg.batches, cfg.churn, &mut rng)
        .map_err(d2pr_core::error::UpdateError::Graph)?;

    let mut shards = match (&cfg.data_dir, &teleports) {
        (None, None) => Stack::Mem(ShardManager::from_graphs(vec![g0], model, solver, threads)?),
        (None, Some(t)) => Stack::Mem(ShardManager::personalized(&g0, t, model, solver, threads)?),
        (Some(dir), tp) => {
            let opts = StoreOptions {
                snapshot_every: cfg.snapshot_every,
                ..Default::default()
            };
            Stack::Durable(match tp {
                None => {
                    DurableShardManager::from_graphs(dir, vec![g0], model, solver, threads, opts)?
                }
                Some(t) => {
                    DurableShardManager::personalized(dir, &g0, t, model, solver, threads, opts)?
                }
            })
        }
    };

    let readers: Vec<ScoreReader> = shards.readers();
    let n = cfg.nodes as u32;
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let ranked = AtomicU64::new(0);
    // Ranked-query mix: a read whose LCG draw lands under the threshold
    // becomes a top_k query instead of a point get (0 = never, the
    // pre-index mix; the draw reuses the node LCG so the mix costs no
    // extra RNG work on the hot path).
    let mix_threshold = if cfg.top_k == 0 {
        0u32
    } else {
        (cfg.query_mix.clamp(0.0, 1.0) * 1024.0) as u32
    };
    let mut steps = Vec::with_capacity(cfg.batches);
    let mut stream_ms = 0.0f64;

    let result: Result<(), ServeError> = std::thread::scope(|scope| {
        for r in 0..cfg.readers {
            let readers = &readers;
            let stop = &stop;
            let reads = &reads;
            let ranked = &ranked;
            scope.spawn(move || {
                let mut node = r as u32;
                let mut shard = r;
                let mut local_ranked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..32 {
                        node = node.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
                        shard = (shard + 1) % readers.len();
                        if node % 1024 < mix_threshold {
                            let top = readers[shard].top_k(cfg.top_k);
                            assert_eq!(top.len(), cfg.top_k.min(cfg.nodes));
                            assert!(top.iter().all(|&(_, s)| s.is_finite()));
                            local_ranked += 1;
                        } else {
                            let score = readers[shard].get(node).expect("in-range node");
                            assert!(score.is_finite());
                        }
                    }
                    reads.fetch_add(32, Ordering::Relaxed);
                    ranked.fetch_add(local_ranked, Ordering::Relaxed);
                    local_ranked = 0;
                }
            });
        }

        let stream_start = Instant::now();
        let run = (|| -> Result<(), ServeError> {
            for (i, batch) in stream.iter().enumerate() {
                let b = i + 1;
                let reads_before = reads.load(Ordering::Relaxed);
                let ranked_before = ranked.load(Ordering::Relaxed);
                let t0 = Instant::now();
                let outcomes = shards.ingest_all(batch)?;
                let refresh_ms = t0.elapsed().as_secs_f64() * 1e3;
                let reads_during = reads.load(Ordering::Relaxed) - reads_before;
                let ranked_during = ranked.load(Ordering::Relaxed) - ranked_before;
                let lead = &outcomes[0];
                steps.push(ServeStep {
                    batch: b,
                    inserted_arcs: lead.inserted_arcs,
                    deleted_arcs: lead.deleted_arcs,
                    mode_used: lead.mode,
                    frontier: lead.frontier,
                    refresh_ms,
                    generation: lead.generation,
                    reads_during_refresh: reads_during,
                    ranked_during_refresh: ranked_during,
                });
            }
            Ok(())
        })();
        stream_ms = stream_start.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
        run
    });
    result?;

    Ok(ServeReport {
        nodes: cfg.nodes,
        initial_arcs,
        shards: shards.num_shards(),
        readers: cfg.readers,
        steps,
        total_reads: reads.load(Ordering::Relaxed),
        ranked_reads: ranked.load(Ordering::Relaxed),
        stream_ms,
    })
}

/// Revive a durable store written by `repro serve --data-dir` (or any
/// [`DurableShardManager`]) and report, per shard, where serving resumed.
/// The store is opened, recovered, re-snapshotted where a tail was
/// replayed, and dropped — the caller reads the reports.
///
/// # Errors
/// [`ServeError::Store`] when the directory holds no recoverable state
/// or the shard layout is malformed.
pub fn run_recover(dir: &Path, threads: usize) -> Result<Vec<RecoveryReport>, ServeError> {
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let (_stack, reports) = DurableShardManager::open(dir, threads, StoreOptions::default())?;
    Ok(reports)
}

/// Per-shard table for the `repro recover` subcommand.
pub fn recover_report(reports: &[RecoveryReport]) -> TextTable {
    let mut t = TextTable::new(vec![
        "shard",
        "snap_gen",
        "recovered",
        "replayed",
        "+arcs",
        "-arcs",
        "mode",
        "converged",
        "bad_snaps",
        "torn",
        "bad_tails",
        "stale",
        "orphaned",
    ]);
    for (i, r) in reports.iter().enumerate() {
        let mode = match r.outcome.mode {
            None => "-",
            Some(ResolveMode::WarmSweep) => "sweep",
            Some(ResolveMode::LocalizedPush) => "push",
            Some(ResolveMode::HybridPushSweep) => "hybrid",
            Some(ResolveMode::DenseGaussSeidel) => "gs",
        };
        t.push_row(vec![
            i.to_string(),
            r.snapshot_generation.to_string(),
            r.recovered_generation.to_string(),
            r.outcome.replayed_batches.to_string(),
            r.outcome.replayed_inserted_arcs.to_string(),
            r.outcome.replayed_deleted_arcs.to_string(),
            mode.to_string(),
            r.outcome.converged.to_string(),
            r.corrupt_snapshots_skipped.to_string(),
            r.torn_log_tails.to_string(),
            r.corrupt_log_tails.to_string(),
            r.stale_records.to_string(),
            r.unreachable_records.to_string(),
        ]);
    }
    t
}

/// Per-batch table for the `repro serve` subcommand.
pub fn serve_report(r: &ServeReport) -> TextTable {
    let mut t = TextTable::new(vec![
        "batch",
        "+arcs",
        "-arcs",
        "mode",
        "frontier",
        "refresh_ms",
        "gen",
        "reads_during",
        "topk_during",
        "reads/ms",
    ]);
    for s in &r.steps {
        let mode = match s.mode_used {
            ResolveMode::WarmSweep => "sweep",
            ResolveMode::LocalizedPush => "push",
            ResolveMode::HybridPushSweep => "hybrid",
            ResolveMode::DenseGaussSeidel => "gs",
        };
        t.push_row(vec![
            s.batch.to_string(),
            s.inserted_arcs.to_string(),
            s.deleted_arcs.to_string(),
            mode.to_string(),
            s.frontier.to_string(),
            format!("{:.2}", s.refresh_ms),
            s.generation.to_string(),
            s.reads_during_refresh.to_string(),
            s.ranked_during_refresh.to_string(),
            format!(
                "{:.0}",
                s.reads_during_refresh as f64 / s.refresh_ms.max(1e-9)
            ),
        ]);
    }
    t.push_row(vec![
        "total".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.2}", r.total_refresh_ms()),
        r.steps.last().map_or(0, |s| s.generation).to_string(),
        r.reads_during_refreshes().to_string(),
        r.ranked_during_refreshes().to_string(),
        format!("{:.0} overall", r.reads_per_ms()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_run_publishes_and_reads_concurrently() {
        let cfg = ServeConfig {
            nodes: 1_500,
            attachments: 4,
            batches: 3,
            churn: 0.002,
            readers: 2,
            shards: 1,
            threads: 1,
            ..Default::default()
        };
        let r = run_serve(&cfg).unwrap();
        assert_eq!(r.steps.len(), 3);
        assert_eq!(r.shards, 1);
        for (i, s) in r.steps.iter().enumerate() {
            assert_eq!(s.generation, i as u64 + 1);
            assert!(s.inserted_arcs > 0 && s.deleted_arcs > 0);
            assert!(s.refresh_ms > 0.0);
        }
        assert!(r.total_reads > 0, "readers must have been served");
        let table = serve_report(&r);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn serve_run_mixes_ranked_queries() {
        let cfg = ServeConfig {
            nodes: 1_200,
            attachments: 4,
            batches: 3,
            churn: 0.002,
            readers: 2,
            shards: 1,
            threads: 1,
            top_k: 8,
            query_mix: 0.5,
            ..Default::default()
        };
        let r = run_serve(&cfg).unwrap();
        assert!(r.ranked_reads > 0, "mix 0.5 must produce ranked reads");
        assert!(
            r.ranked_reads < r.total_reads,
            "mix 0.5 must keep point reads too"
        );
        let table = serve_report(&r);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn serve_run_persists_and_recovers_with_data_dir() {
        let dir = std::env::temp_dir().join(format!("d2pr-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            nodes: 800,
            attachments: 4,
            batches: 4,
            churn: 0.002,
            readers: 1,
            shards: 1,
            threads: 1,
            data_dir: Some(dir.clone()),
            snapshot_every: 3,
            ..Default::default()
        };
        let r = run_serve(&cfg).unwrap();
        assert_eq!(r.steps.last().unwrap().generation, 4);

        // A second serve into the same directory must refuse, not clobber.
        match run_serve(&cfg) {
            Err(ServeError::Store(StoreError::AlreadyInitialized { .. })) => {}
            other => panic!("expected AlreadyInitialized, got {other:?}"),
        }

        let reports = run_recover(&dir, 1).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].recovered_generation, 4);
        // Snapshot cadence 3 over 4 batches: one batch rides the log.
        assert_eq!(reports[0].outcome.replayed_batches, 1);
        let table = recover_report(&reports);
        assert_eq!(table.num_rows(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_run_shards_personalized_views() {
        let cfg = ServeConfig {
            nodes: 1_000,
            attachments: 4,
            batches: 2,
            churn: 0.002,
            readers: 1,
            shards: 3,
            threads: 1,
            ..Default::default()
        };
        let r = run_serve(&cfg).unwrap();
        assert_eq!(r.shards, 3);
        assert_eq!(r.steps.len(), 2);
        assert_eq!(r.steps.last().unwrap().generation, 2);
    }
}
