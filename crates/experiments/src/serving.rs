//! Mixed reader/writer serving scenario: concurrent point queries against
//! a continuously refreshed (and optionally sharded) D2PR ranking.
//!
//! The `repro serve` subcommand drives the PR-5 serving stack end to end:
//! a [`ShardManager`] hosts one uniform view (`--shards 1`, the default)
//! or N personalization views over one shared transpose, reader threads
//! hammer [`ScoreReader::get`] round-robin across the shards, and the
//! writer streams churn batches through
//! [`ShardManager::ingest_all`](d2pr_core::serving::ShardManager::ingest_all).
//! The per-batch table shows the refresh strategy, its wall time, and how
//! many reads were served **during** each refresh — the number that was
//! zero, by construction, before the double-buffered publication path.

use crate::evolving::churn_stream;
use crate::report::TextTable;
use d2pr_core::engine::{default_threads, ResolveMode};
use d2pr_core::error::UpdateError;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::{ScoreReader, ShardManager};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Configuration of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Nodes of the initial Barabási–Albert graph.
    pub nodes: usize,
    /// BA attachments per node.
    pub attachments: usize,
    /// Churn batches to stream.
    pub batches: usize,
    /// Fraction of current edges mutated per batch.
    pub churn: f64,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Shards: 1 = a single uniform view; N > 1 = N personalization views
    /// over one shared transpose structure.
    pub shards: usize,
    /// De-coupling weight `p` of the served model.
    pub p: f64,
    /// Residual probability `α`.
    pub alpha: f64,
    /// Solver L1 tolerance (serving default 1e-6).
    pub tolerance: f64,
    /// Solver iteration cap.
    pub max_iterations: usize,
    /// Engine worker threads per shard (`0` = machine parallelism).
    pub threads: usize,
    /// RNG seed for the graph, the teleports, and the churn stream.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            nodes: 20_000,
            attachments: 5,
            batches: 6,
            churn: 0.002,
            readers: 2,
            shards: 1,
            p: 0.5,
            alpha: 0.85,
            tolerance: 1e-6,
            max_iterations: 500,
            threads: 0,
            seed: 0x5EB7,
        }
    }
}

/// One streamed batch, as served.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStep {
    /// 1-based batch index.
    pub batch: usize,
    /// Arcs inserted / deleted (effective, mirrored arcs counted).
    pub inserted_arcs: usize,
    /// Arcs deleted.
    pub deleted_arcs: usize,
    /// Strategy that served shard 0's refresh.
    pub mode_used: ResolveMode,
    /// Localized frontier of shard 0's refresh (0 for sweeps).
    pub frontier: usize,
    /// Wall time of the whole group refresh (all shards), milliseconds.
    pub refresh_ms: f64,
    /// Generation every shard publishes after this batch.
    pub generation: u64,
    /// Point reads the reader threads completed during this refresh.
    pub reads_during_refresh: u64,
}

/// Full run record.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Node count (fixed across the run).
    pub nodes: usize,
    /// Arc count of the initial snapshot.
    pub initial_arcs: usize,
    /// Shards hosted.
    pub shards: usize,
    /// Reader threads driven.
    pub readers: usize,
    /// One entry per streamed batch.
    pub steps: Vec<ServeStep>,
    /// Total point reads over the whole stream.
    pub total_reads: u64,
    /// Wall time of the whole stream, milliseconds.
    pub stream_ms: f64,
}

impl ServeReport {
    /// Total refresh wall time, milliseconds.
    pub fn total_refresh_ms(&self) -> f64 {
        self.steps.iter().map(|s| s.refresh_ms).sum()
    }

    /// Reads served per millisecond over the whole stream.
    pub fn reads_per_ms(&self) -> f64 {
        self.total_reads as f64 / self.stream_ms.max(1e-9)
    }

    /// Reads served during refresh windows (zero under a stop-the-world
    /// discipline — the availability this stack adds).
    pub fn reads_during_refreshes(&self) -> u64 {
        self.steps.iter().map(|s| s.reads_during_refresh).sum()
    }
}

/// Stream `cfg.batches` churn batches through a (sharded) serving stack
/// while `cfg.readers` threads hammer point queries, and record per-batch
/// serving accounting.
///
/// # Errors
/// Propagates generator, ingestion, and solver failures as
/// [`UpdateError`].
pub fn run_serve(cfg: &ServeConfig) -> Result<ServeReport, UpdateError> {
    let threads = if cfg.threads == 0 {
        default_threads()
    } else {
        cfg.threads
    };
    let solver = PageRankConfig {
        alpha: cfg.alpha,
        tolerance: cfg.tolerance,
        max_iterations: cfg.max_iterations,
        ..Default::default()
    };
    let model = TransitionModel::DegreeDecoupled { p: cfg.p };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let g0 = barabasi_albert(cfg.nodes, cfg.attachments, rng.gen())?;
    let initial_arcs = g0.num_arcs();
    // Personalization views (shards > 1): a few hot seed nodes per shard.
    let teleports: Option<Vec<Vec<f64>>> = (cfg.shards > 1).then(|| {
        (0..cfg.shards)
            .map(|_| {
                let mut t = vec![0.0; cfg.nodes];
                for _ in 0..4 {
                    t[rng.gen_range(0..cfg.nodes)] = 1.0;
                }
                t
            })
            .collect()
    });
    let stream = churn_stream(&g0, cfg.batches, cfg.churn, &mut rng)
        .map_err(d2pr_core::error::UpdateError::Graph)?;

    let mut shards = match &teleports {
        None => ShardManager::from_graphs(vec![g0], model, solver, threads)?,
        Some(t) => ShardManager::personalized(&g0, t, model, solver, threads)?,
    };

    let readers: Vec<ScoreReader> = shards.readers();
    let n = cfg.nodes as u32;
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let mut steps = Vec::with_capacity(cfg.batches);
    let mut stream_ms = 0.0f64;

    let result: Result<(), UpdateError> = std::thread::scope(|scope| {
        for r in 0..cfg.readers {
            let readers = &readers;
            let stop = &stop;
            let reads = &reads;
            scope.spawn(move || {
                let mut node = r as u32;
                let mut shard = r;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..32 {
                        node = node.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % n;
                        shard = (shard + 1) % readers.len();
                        let score = readers[shard].get(node).expect("in-range node");
                        assert!(score.is_finite());
                        local += 1;
                    }
                    reads.fetch_add(32, Ordering::Relaxed);
                }
                let _ = local;
            });
        }

        let stream_start = Instant::now();
        let run = (|| -> Result<(), UpdateError> {
            for (i, batch) in stream.iter().enumerate() {
                let b = i + 1;
                let reads_before = reads.load(Ordering::Relaxed);
                let t0 = Instant::now();
                let outcomes = shards.ingest_all(batch)?;
                let refresh_ms = t0.elapsed().as_secs_f64() * 1e3;
                let reads_during = reads.load(Ordering::Relaxed) - reads_before;
                let lead = &outcomes[0];
                steps.push(ServeStep {
                    batch: b,
                    inserted_arcs: lead.inserted_arcs,
                    deleted_arcs: lead.deleted_arcs,
                    mode_used: lead.mode,
                    frontier: lead.frontier,
                    refresh_ms,
                    generation: lead.generation,
                    reads_during_refresh: reads_during,
                });
            }
            Ok(())
        })();
        stream_ms = stream_start.elapsed().as_secs_f64() * 1e3;
        stop.store(true, Ordering::Relaxed);
        run
    });
    result?;

    Ok(ServeReport {
        nodes: cfg.nodes,
        initial_arcs,
        shards: shards.num_shards(),
        readers: cfg.readers,
        steps,
        total_reads: reads.load(Ordering::Relaxed),
        stream_ms,
    })
}

/// Per-batch table for the `repro serve` subcommand.
pub fn serve_report(r: &ServeReport) -> TextTable {
    let mut t = TextTable::new(vec![
        "batch",
        "+arcs",
        "-arcs",
        "mode",
        "frontier",
        "refresh_ms",
        "gen",
        "reads_during",
        "reads/ms",
    ]);
    for s in &r.steps {
        let mode = match s.mode_used {
            ResolveMode::WarmSweep => "sweep",
            ResolveMode::LocalizedPush => "push",
            ResolveMode::HybridPushSweep => "hybrid",
            ResolveMode::DenseGaussSeidel => "gs",
        };
        t.push_row(vec![
            s.batch.to_string(),
            s.inserted_arcs.to_string(),
            s.deleted_arcs.to_string(),
            mode.to_string(),
            s.frontier.to_string(),
            format!("{:.2}", s.refresh_ms),
            s.generation.to_string(),
            s.reads_during_refresh.to_string(),
            format!(
                "{:.0}",
                s.reads_during_refresh as f64 / s.refresh_ms.max(1e-9)
            ),
        ]);
    }
    t.push_row(vec![
        "total".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.2}", r.total_refresh_ms()),
        r.steps.last().map_or(0, |s| s.generation).to_string(),
        r.reads_during_refreshes().to_string(),
        format!("{:.0} overall", r.reads_per_ms()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_run_publishes_and_reads_concurrently() {
        let cfg = ServeConfig {
            nodes: 1_500,
            attachments: 4,
            batches: 3,
            churn: 0.002,
            readers: 2,
            shards: 1,
            threads: 1,
            ..Default::default()
        };
        let r = run_serve(&cfg).unwrap();
        assert_eq!(r.steps.len(), 3);
        assert_eq!(r.shards, 1);
        for (i, s) in r.steps.iter().enumerate() {
            assert_eq!(s.generation, i as u64 + 1);
            assert!(s.inserted_arcs > 0 && s.deleted_arcs > 0);
            assert!(s.refresh_ms > 0.0);
        }
        assert!(r.total_reads > 0, "readers must have been served");
        let table = serve_report(&r);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn serve_run_shards_personalized_views() {
        let cfg = ServeConfig {
            nodes: 1_000,
            attachments: 4,
            batches: 2,
            churn: 0.002,
            readers: 1,
            shards: 3,
            threads: 1,
            ..Default::default()
        };
        let r = run_serve(&cfg).unwrap();
        assert_eq!(r.shards, 3);
        assert_eq!(r.steps.len(), 2);
        assert_eq!(r.steps.last().unwrap().generation, 2);
    }
}
