//! Plain-text table rendering for the `repro` binary.
//!
//! The paper reports everything as tables and line charts; a terminal
//! harness renders both as aligned text (charts become one row per `p` with
//! one column per α/β series) plus optional CSV for external plotting.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    ///
    /// # Panics
    /// Panics when the row length differs from the header length.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — the harness never emits commas in cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a correlation for display (3 decimals, explicit sign).
pub fn fmt_corr(x: f64) -> String {
    format!("{x:+.3}")
}

/// Format a float with the given precision.
pub fn fmt_f(x: f64, precision: usize) -> String {
    format!("{x:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.push_row(vec!["a", "1"]);
        t.push_row(vec!["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("  1") || lines[2].ends_with(" 1"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = TextTable::new(vec!["p", "corr"]);
        t.push_row(vec!["0.5", "+0.123"]);
        let csv = t.to_csv();
        assert_eq!(csv, "p,corr\n0.5,+0.123\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_corr(0.1234), "+0.123");
        assert_eq!(fmt_corr(-0.5), "-0.500");
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
