//! Perf-guard support: parse bench JSONs and flag regressions.
//!
//! CI runs the smoke-feature benches (which write
//! `target/bench-smoke/BENCH_*.json`) and compares them against the
//! committed baselines under `ci/`, failing the build on a >20%
//! regression (`src/bin/perf_guard.rs`). The comparison runs on
//! **dimensionless keys** (`speedup_*`, `*ratio*`) by default — those are
//! host-normalized (each bench measures its own seed baseline on the same
//! machine in the same run), so the gate stays meaningful when the CI
//! runner's hardware differs from the machine that produced the committed
//! baseline. Absolute `*_ms` keys can be guarded too ([`Mode::AbsoluteMs`])
//! for like-for-like hosts.
//!
//! No external crates: the JSON subset the benches emit (objects, arrays,
//! strings, numbers, booleans) is parsed by the ~100-line recursive
//! descent below, flattened to `path.to.key → number` pairs.

use std::collections::BTreeMap;

/// Flattened numeric view of a bench JSON: `"a.b.c" → value`.
pub type NumericKeys = BTreeMap<String, f64>;

/// Parse `text` (the JSON subset our benches emit) and flatten every
/// numeric leaf to a dotted key path.
///
/// # Errors
/// Returns a message naming the byte offset of the first syntax error.
pub fn numeric_keys(text: &str) -> Result<NumericKeys, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = NumericKeys::new();
    p.skip_ws();
    p.value(&mut String::new(), &mut out)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, path: &mut String, out: &mut NumericKeys) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(path, out),
            Some(b'[') => self.array(path, out),
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => {
                let v = self.number()?;
                out.insert(path.clone(), v);
                Ok(())
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, path: &mut String, out: &mut NumericKeys) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let depth = path.len();
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(&key);
            self.value(path, out)?;
            path.truncate(depth);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, path: &mut String, out: &mut NumericKeys) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut idx = 0usize;
        loop {
            let depth = path.len();
            path.push_str(&format!(".{idx}"));
            self.value(path, out)?;
            path.truncate(depth);
            idx += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'"' => {
                    let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => self.pos += 2, // benches never escape quotes mid-key
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }
}

/// What the guard compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dimensionless `speedup_*` / `*ratio*` keys — higher is better.
    /// Host-normalized, the CI default.
    Ratios,
    /// Absolute `*_ms` keys — lower is better. Only meaningful when the
    /// baseline came from identical hardware.
    AbsoluteMs,
}

/// One guarded key that regressed beyond the allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub key: String,
    pub baseline: f64,
    pub candidate: f64,
    /// Relative change in the "worse" direction (e.g. `0.31` = 31% worse).
    pub regression: f64,
}

/// Timing-derived `speedup_*` keys below this baseline value are skipped
/// in [`Mode::Ratios`]: a near-parity speedup means both sides of the
/// division are within a small factor of each other, where smoke-scale
/// sub-millisecond timing noise dominates the signal and any allowance
/// tight enough to be useful false-positives. Order-of-magnitude speedups
/// (engine vs seed rebuild, localized vs seed) are stable and stay
/// guarded; `*ratio*` keys are iteration-count ratios — deterministic
/// given the benches' fixed seeds — and are always guarded.
pub const SPEEDUP_NOISE_FLOOR: f64 = 2.0;

/// Whether a key's *name* belongs to the family `mode` watches,
/// independent of its value. [`guarded`] adds the value test; this is the
/// membership check [`baseline_defects`] needs, because a key whose value
/// is NaN fails every numeric comparison and would otherwise silently
/// fall out of the guard entirely.
pub fn guarded_family(mode: Mode, key: &str) -> bool {
    match mode {
        Mode::Ratios => key.contains("ratio") || key.contains("speedup"),
        // Axis entries (`*_ms_by_threads.N.ms`, `*_ms_by_layout.X`) are
        // timings; the `host_cpus` provenance marker riding next to them
        // is not.
        Mode::AbsoluteMs => {
            (key.ends_with("_ms") || key.ends_with(".ms") || key.contains("_ms_by_threads"))
                && !key.ends_with(".host_cpus")
        }
    }
}

/// Whether a key with the given baseline value belongs to the family
/// `mode` guards (exposed so the `perf_guard` bin's summary counts
/// exactly what [`regressions`] checks).
pub fn guarded(mode: Mode, key: &str, baseline: f64) -> bool {
    guarded_family(mode, key)
        && match mode {
            Mode::Ratios => key.contains("ratio") || baseline >= SPEEDUP_NOISE_FLOOR,
            Mode::AbsoluteMs => true,
        }
}

/// Defects in a committed baseline the guard must refuse to run with,
/// each naming the offending file and key: a guarded-family key whose
/// value is non-finite (NaN, or ±inf — the `1e999` overflow spelling
/// parses to `inf`) or non-positive (a `0.00` ms entry is a metric the
/// bench's rounding destroyed, not a reference point). Such values fail
/// every numeric comparison in [`regressions`] *and* fall out of
/// [`guarded`]'s value test, so a corrupted baseline would otherwise
/// *pass* the gate silently — the failure mode this function turns into
/// a loud, diagnosable error.
pub fn baseline_defects(file: &str, keys: &NumericKeys, mode: Mode) -> Vec<String> {
    let mut out = Vec::new();
    for (key, &value) in keys {
        if !guarded_family(mode, key) {
            continue;
        }
        if !value.is_finite() {
            out.push(format!(
                "{file}: guarded key '{key}' is not a finite number (got {value})"
            ));
        } else if value <= 0.0 {
            out.push(format!(
                "{file}: guarded key '{key}' must be positive (got {value})"
            ));
        }
    }
    out
}

/// Guarded baseline keys the candidate no longer reports. [`regressions`]
/// skips them (so *comparisons* stay meaningful while schemas grow), but
/// the CI gate treats a guarded key that vanished from the candidate as a
/// failure in its own right: a bench that silently stopped emitting a
/// metric would otherwise un-guard itself.
pub fn missing_keys(baseline: &NumericKeys, candidate: &NumericKeys, mode: Mode) -> Vec<String> {
    baseline
        .iter()
        .filter(|&(key, &value)| guarded(mode, key, value) && !candidate.contains_key(key))
        .map(|(key, _)| key.clone())
        .collect()
}

/// Minimum allowance applied to timing-derived `speedup_*` keys in
/// [`Mode::Ratios`], regardless of the caller's `max_regression`: even
/// minimum-of-samples timing ratios at smoke scale swing ±15–25% run to
/// run on a shared host (both sides are milliseconds), so the gate for
/// them watches for order-of-magnitude collapses (engine speedup 6× → 2×)
/// rather than noise-level drift. Deterministic `*ratio*` keys
/// (iteration counts, fixed seeds) are held to the caller's tight
/// allowance.
pub const SPEEDUP_MIN_ALLOWANCE: f64 = 0.5;

/// Compare `candidate` against `baseline`, returning every guarded key
/// that regressed by more than the allowance — `max_regression` (e.g.
/// `0.20` = 20%) for deterministic ratio keys and absolute times,
/// `max(max_regression, SPEEDUP_MIN_ALLOWANCE)` for timing-derived
/// speedups. Keys present in only one file are ignored (schemas may grow
/// across PRs); keys with a non-positive baseline are skipped (no stable
/// reference direction).
pub fn regressions(
    baseline: &NumericKeys,
    candidate: &NumericKeys,
    mode: Mode,
    max_regression: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (key, &base) in baseline {
        if base <= 0.0 || !guarded(mode, key, base) {
            continue;
        }
        let Some(&cand) = candidate.get(key) else {
            continue;
        };
        let regression = match mode {
            Mode::Ratios => (base - cand) / base,
            Mode::AbsoluteMs => (cand - base) / base,
        };
        let allowance = if mode == Mode::Ratios && key.contains("speedup") {
            max_regression.max(SPEEDUP_MIN_ALLOWANCE)
        } else {
            max_regression
        };
        if regression > allowance {
            out.push(Regression {
                key: key.clone(),
                baseline: base,
                candidate: cand,
                regression,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "bench": "demo",
      "tolerance": 1e-8,
      "nested": {"speedup_warm": 2.5, "warm_ms": 100.0, "modes": ["push", "sweep"]},
      "axis_ms_by_threads": {"1": 10.0, "4": 3.5},
      "flag": true,
      "iteration_ratio_warm_vs_cold": 1.33
    }"#;

    #[test]
    fn parses_and_flattens_numeric_leaves() {
        let keys = numeric_keys(SAMPLE).unwrap();
        assert_eq!(keys["nested.speedup_warm"], 2.5);
        assert_eq!(keys["nested.warm_ms"], 100.0);
        assert_eq!(keys["axis_ms_by_threads.4"], 3.5);
        assert_eq!(keys["tolerance"], 1e-8);
        assert_eq!(keys["iteration_ratio_warm_vs_cold"], 1.33);
        assert!(!keys.contains_key("bench"), "strings are not numeric");
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(numeric_keys("{\"a\": }").is_err());
        assert!(numeric_keys("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn ratio_guard_flags_only_real_regressions() {
        let base = numeric_keys(SAMPLE).unwrap();
        let mut cand = base.clone();
        // 10% drop: within the 20% allowance.
        cand.insert("nested.speedup_warm".into(), 2.25);
        assert!(regressions(&base, &cand, Mode::Ratios, 0.20).is_empty());
        // 40% drop: within the speedup floor allowance (timing noise).
        cand.insert("nested.speedup_warm".into(), 1.5);
        assert!(regressions(&base, &cand, Mode::Ratios, 0.20).is_empty());
        // 60% drop: an order-of-magnitude collapse, flagged.
        cand.insert("nested.speedup_warm".into(), 1.0);
        let r = regressions(&base, &cand, Mode::Ratios, 0.20);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, "nested.speedup_warm");
        assert!((r[0].regression - 0.6).abs() < 1e-12);
        // Improvements never flag.
        cand.insert("nested.speedup_warm".into(), 9.0);
        assert!(regressions(&base, &cand, Mode::Ratios, 0.20).is_empty());
    }

    #[test]
    fn absolute_guard_watches_ms_keys() {
        let base = numeric_keys(SAMPLE).unwrap();
        let mut cand = base.clone();
        cand.insert("nested.warm_ms".into(), 130.0);
        let r = regressions(&base, &cand, Mode::AbsoluteMs, 0.20);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, "nested.warm_ms");
        // Getting faster is fine.
        cand.insert("nested.warm_ms".into(), 10.0);
        assert!(regressions(&base, &cand, Mode::AbsoluteMs, 0.20).is_empty());
    }

    #[test]
    fn near_parity_speedups_are_not_guarded() {
        // A speedup of ~1.3 means both sides are sub-millisecond-close at
        // smoke scale: timing noise, not signal. Iteration ratios of the
        // same magnitude stay guarded (they are deterministic).
        let base =
            numeric_keys(r#"{"speedup_warm_vs_cold": 1.3, "iteration_ratio_warm": 1.3}"#).unwrap();
        let mut cand = base.clone();
        cand.insert("speedup_warm_vs_cold".into(), 0.6); // 54% "worse": noise
        cand.insert("iteration_ratio_warm".into(), 0.6); // 54% worse: real
        let r = regressions(&base, &cand, Mode::Ratios, 0.20);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, "iteration_ratio_warm");
    }

    #[test]
    fn new_and_missing_keys_are_tolerated_by_the_comparison() {
        // `regressions` itself skips one-sided keys (schemas may grow);
        // the vanished-key failure is `missing_keys`' job, tested below.
        let base = numeric_keys(r#"{"speedup_a": 2.0, "speedup_gone": 3.0}"#).unwrap();
        let cand = numeric_keys(r#"{"speedup_a": 2.0, "speedup_new": 1.0}"#).unwrap();
        assert!(regressions(&base, &cand, Mode::Ratios, 0.20).is_empty());
    }

    #[test]
    fn baseline_defects_name_file_and_key() {
        // `1e999` overflows to +inf in the parser — the committed-baseline
        // corruption the guard previously let through silently (a
        // non-finite value fails every comparison in `regressions`).
        let keys = numeric_keys(
            r#"{"speedup_inf": 1e999, "speedup_neg": -2.0,
                "iteration_ratio_zero": 0.0, "speedup_ok": 3.0, "plain": 1.0}"#,
        )
        .unwrap();
        let defects = baseline_defects("ci/BENCH_x.smoke.json", &keys, Mode::Ratios);
        assert_eq!(defects.len(), 3, "{defects:?}");
        assert!(defects.iter().all(|d| d.contains("ci/BENCH_x.smoke.json")));
        assert!(defects.iter().any(|d| d.contains("'speedup_inf'")));
        assert!(defects.iter().any(|d| d.contains("'speedup_neg'")));
        assert!(defects.iter().any(|d| d.contains("'iteration_ratio_zero'")));
        // NaN injected directly (the parser itself cannot produce one, but
        // NumericKeys is a public type) is caught with the same shape.
        let mut keys = keys;
        keys.insert("refresh_ratio_nan".into(), f64::NAN);
        assert!(baseline_defects("f.json", &keys, Mode::Ratios)
            .iter()
            .any(|d| d.contains("'refresh_ratio_nan'") && d.contains("NaN")));
        // AbsoluteMs watches the `_ms` family instead — including the
        // `0.00` a sub-0.005 ms timing rounds to, which would otherwise
        // un-guard itself (both `guarded` and `regressions` skip
        // non-positive baselines).
        let ms =
            numeric_keys(r#"{"warm_ms": 1e999, "cold_ms": 0.00, "speedup_x": 1e999}"#).unwrap();
        let defects = baseline_defects("f.json", &ms, Mode::AbsoluteMs);
        assert_eq!(defects.len(), 2, "{defects:?}");
        assert!(defects.iter().any(|d| d.contains("'warm_ms'")));
        assert!(defects.iter().any(|d| d.contains("'cold_ms'")));
        // A healthy committed baseline reports no defects.
        let healthy = numeric_keys(SAMPLE).unwrap();
        assert!(baseline_defects("f.json", &healthy, Mode::Ratios).is_empty());
    }

    #[test]
    fn missing_guarded_keys_are_reported() {
        let base = numeric_keys(
            r#"{"speedup_a": 2.5, "iteration_ratio_b": 1.3,
                "speedup_noisy": 1.3, "note_count": 7.0}"#,
        )
        .unwrap();
        let cand = numeric_keys(r#"{"speedup_a": 2.5, "speedup_new": 9.0}"#).unwrap();
        let missing = missing_keys(&base, &cand, Mode::Ratios);
        // The deterministic ratio key vanished: reported. The near-parity
        // speedup (below the noise floor) and the unguarded count are not.
        assert_eq!(missing, vec!["iteration_ratio_b".to_string()]);
        // Nothing missing when the candidate carries every guarded key.
        assert!(missing_keys(&base, &base, Mode::Ratios).is_empty());
    }

    #[test]
    fn committed_bench_baselines_parse() {
        // The real committed artifacts must stay parseable by this guard.
        for name in ["../../BENCH_pagerank.json", "../../BENCH_incremental.json"] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
            let text = std::fs::read_to_string(&path).expect("committed bench JSON exists");
            let keys = numeric_keys(&text).expect("committed bench JSON parses");
            assert!(
                keys.keys().any(|k| k.contains("speedup")),
                "{name}: guarded ratio keys present"
            );
        }
    }
}
