//! CI perf gate: compare a freshly-measured bench JSON against a committed
//! baseline and exit non-zero on a regression beyond the allowance.
//!
//! ```text
//! perf_guard <baseline.json> <candidate.json> [--max-regression 0.20] [--absolute]
//! ```
//!
//! The default mode guards the dimensionless `speedup_*` / `*ratio*` keys
//! (host-normalized — see `d2pr_bench::perf_guard`); `--absolute` guards
//! the raw `*_ms` keys instead, for baselines produced on identical
//! hardware. *New* candidate keys are tolerated so bench schemas can
//! grow; a **guarded baseline key the candidate no longer reports** fails
//! (a bench that stops emitting a metric must not un-guard itself), and a
//! baseline whose guarded keys are missing, non-numeric, or NaN/infinite
//! fails up front with a diagnostic naming the file and key instead of
//! silently passing every comparison.

use d2pr_bench::perf_guard::{
    baseline_defects, guarded, missing_keys, numeric_keys, regressions, Mode,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.20f64;
    let mut mode = Mode::Ratios;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regression" => {
                i += 1;
                max_regression = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--max-regression needs a number"));
            }
            "--absolute" => mode = Mode::AbsoluteMs,
            flag if flag.starts_with("--") => die(&format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        die("usage: perf_guard <baseline.json> <candidate.json> [--max-regression R] [--absolute]");
    }

    let read = |p: &str| -> d2pr_bench::perf_guard::NumericKeys {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| die(&format!("read {p}: {e}")));
        numeric_keys(&text).unwrap_or_else(|e| die(&format!("parse {p}: {e}")))
    };
    let baseline = read(&paths[0]);
    let candidate = read(&paths[1]);
    // A corrupted committed baseline must fail loudly, not pass silently:
    // non-finite / non-positive guarded keys defeat every comparison.
    let defects = baseline_defects(&paths[0], &baseline, mode);
    if !defects.is_empty() {
        for d in &defects {
            eprintln!("perf_guard: BAD BASELINE {d}");
        }
        die(&format!(
            "{} defective guarded key(s) in {} — fix or regenerate the committed baseline",
            defects.len(),
            paths[0]
        ));
    }
    let guarded_count: usize = baseline
        .iter()
        .filter(|(k, &v)| v > 0.0 && guarded(mode, k, v))
        .count();
    if guarded_count == 0 {
        die(&format!(
            "{}: no guarded keys in {mode:?} mode — the gate would be vacuous \
             (wrong file, or the bench stopped emitting its ratio keys?)",
            paths[0]
        ));
    }
    let bad = regressions(&baseline, &candidate, mode, max_regression);
    let gone = missing_keys(&baseline, &candidate, mode);
    println!(
        "perf_guard: {} guarded keys in {} ({:?} mode, allowance {:.0}%)",
        guarded_count,
        paths[0],
        mode,
        max_regression * 100.0
    );
    if bad.is_empty() && gone.is_empty() {
        println!("perf_guard: OK — no key regressed beyond the allowance");
        return ExitCode::SUCCESS;
    }
    for r in &bad {
        eprintln!(
            "perf_guard: REGRESSION {}: baseline {:.3} -> candidate {:.3} ({:+.1}% worse)",
            r.key,
            r.baseline,
            r.candidate,
            r.regression * 100.0
        );
    }
    for key in &gone {
        eprintln!(
            "perf_guard: MISSING {}: guarded baseline key '{key}' is absent from {} \
             — the bench stopped reporting it (regenerate the baseline if intentional)",
            paths[0], paths[1]
        );
    }
    // Name the full guarded set on failure so a reader of the CI log can
    // see which keys the gate watches (and which newly added ones — e.g.
    // speedup_layout_narrow_vs_seed4 — participated) without opening the
    // baseline file.
    let watched: Vec<&str> = baseline
        .iter()
        .filter(|(k, &v)| v > 0.0 && guarded(mode, k, v))
        .map(|(k, _)| k.as_str())
        .collect();
    eprintln!(
        "perf_guard: guarded keys in {}: {}",
        paths[0],
        watched.join(", ")
    );
    ExitCode::FAILURE
}

fn die(msg: &str) -> ! {
    eprintln!("perf_guard: {msg}");
    std::process::exit(2);
}
