//! Shared fixtures for the Criterion benchmark suite.
//!
//! Each bench target in `benches/` regenerates one of the paper's tables or
//! figures at bench scale (small enough for Criterion's repeated sampling,
//! large enough that the measured kernels dominate setup noise). Generation
//! is deterministic, so every Criterion sample measures identical work.

use d2pr_datagen::worlds::{Dataset, World};
use d2pr_graph::csr::CsrGraph;

/// Scale used by the bench suite (relative to the paper's Table 3 sizes).
/// Chosen so a full `cargo bench --workspace` finishes in minutes.
pub const BENCH_SCALE: f64 = 0.02;

/// Seed shared by all bench fixtures.
pub const BENCH_SEED: u64 = 0xBE_5C;

/// Generate the world for one dataset at bench scale.
pub fn bench_world(dataset: Dataset) -> World {
    World::generate(dataset, BENCH_SCALE, BENCH_SEED).expect("bench world generates")
}

/// An unweighted paper graph plus its significance at bench scale.
pub fn bench_graph(graph: d2pr_datagen::worlds::PaperGraph) -> (CsrGraph, Vec<f64>) {
    let world = bench_world(graph.dataset());
    let (g, s) = graph.view(&world);
    (g.to_unweighted(), s.to_vec())
}

/// A weighted paper graph plus its significance at bench scale.
pub fn bench_graph_weighted(graph: d2pr_datagen::worlds::PaperGraph) -> (CsrGraph, Vec<f64>) {
    let world = bench_world(graph.dataset());
    let (g, s) = graph.view(&world);
    (g.clone(), s.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_datagen::worlds::PaperGraph;

    #[test]
    fn fixtures_generate() {
        let (g, s) = bench_graph(PaperGraph::ImdbActorActor);
        assert!(g.num_nodes() > 0);
        assert_eq!(g.num_nodes(), s.len());
        let (gw, _) = bench_graph_weighted(PaperGraph::ImdbActorActor);
        assert!(gw.is_weighted());
    }
}
