//! Shared fixtures for the Criterion benchmark suite.
//!
//! Each bench target in `benches/` regenerates one of the paper's tables or
//! figures at bench scale (small enough for Criterion's repeated sampling,
//! large enough that the measured kernels dominate setup noise). Generation
//! is deterministic, so every Criterion sample measures identical work.

pub mod perf_guard;

use d2pr_datagen::worlds::{Dataset, World};
use d2pr_graph::csr::CsrGraph;

/// Scale used by the bench suite (relative to the paper's Table 3 sizes).
/// Chosen so a full `cargo bench --workspace` finishes in minutes.
pub const BENCH_SCALE: f64 = 0.02;

/// Seed shared by all bench fixtures.
pub const BENCH_SEED: u64 = 0xBE_5C;

/// Generate the world for one dataset at bench scale.
pub fn bench_world(dataset: Dataset) -> World {
    World::generate(dataset, BENCH_SCALE, BENCH_SEED).expect("bench world generates")
}

/// An unweighted paper graph plus its significance at bench scale.
pub fn bench_graph(graph: d2pr_datagen::worlds::PaperGraph) -> (CsrGraph, Vec<f64>) {
    let world = bench_world(graph.dataset());
    let (g, s) = graph.view(&world);
    (g.to_unweighted(), s.to_vec())
}

/// A weighted paper graph plus its significance at bench scale.
pub fn bench_graph_weighted(graph: d2pr_datagen::worlds::PaperGraph) -> (CsrGraph, Vec<f64>) {
    let world = bench_world(graph.dataset());
    let (g, s) = graph.view(&world);
    (g.clone(), s.to_vec())
}

/// The host's CPU count as the benches record it (1 when the OS refuses
/// to say). The one source for both the thread-axis cap and the
/// `host_cpus` marker written next to every axis entry.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Worker counts recorded on the bench JSONs' thread axis: powers of two
/// up to the host's parallelism (always including 1), capped at
/// [`host_cpus`] even when a caller requests more — oversubscribed entries
/// would measure scheduler contention, not the solver. Shared by
/// `engine_p_sweep` and `incremental_updates`; [`axis_json`] stamps each
/// entry with the host CPU count so a 1-CPU trajectory and a multi-core
/// re-run stay distinguishable after the fact.
pub fn thread_axis(default: usize) -> Vec<usize> {
    let cap = default.clamp(1, host_cpus());
    let mut axis: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= cap)
        .collect();
    if !axis.contains(&cap) {
        axis.push(cap);
    }
    axis.sort_unstable();
    axis
}

/// Milliseconds for one recorded benchmark, using the statistic the
/// current build mode reports: **minimum**-of-samples under the `smoke`
/// feature (the CI perf-guard input — robust against scheduler stalls on
/// shared runners) and the historical **mean** for the committed
/// full-scale trajectory. The one place the policy lives; both bench
/// targets and their axis recorders go through it.
pub fn report_ms(c: &criterion::Criterion, name: &str) -> f64 {
    let d = if cfg!(feature = "smoke") {
        c.min_of(name)
    } else {
        c.mean_of(name)
    };
    d.expect("benchmark was measured").as_secs_f64() * 1e3
}

/// JSON object over the thread axis, one entry per worker count:
/// `{"1": {"ms": 12.30, "host_cpus": 8}, ...}`. The per-entry `host_cpus`
/// marker records the machine the measurement came from, so axis points
/// from hosts with different core counts are never conflated when
/// trajectories are merged across re-runs.
pub fn axis_json(axis: &[usize], ms_of: impl Fn(usize) -> f64) -> String {
    let host = host_cpus();
    let entries: Vec<String> = axis
        .iter()
        .map(|&t| {
            format!(
                "\"{t}\": {{\"ms\": {:.2}, \"host_cpus\": {host}}}",
                ms_of(t)
            )
        })
        .collect();
    format!("{{{}}}", entries.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_datagen::worlds::PaperGraph;

    #[test]
    fn thread_axis_caps_at_host_parallelism() {
        let host = host_cpus();
        // A request beyond the host's parallelism is clamped — no
        // oversubscribed axis entries.
        let axis = thread_axis(host * 4);
        assert_eq!(*axis.last().unwrap(), host);
        assert!(axis.contains(&1));
        assert!(axis.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        // Degenerate requests still yield a usable axis.
        assert_eq!(thread_axis(0), vec![1]);
    }

    #[test]
    fn axis_json_stamps_host_cpus_per_entry() {
        let json = axis_json(&[1, 2], |t| t as f64);
        let host = host_cpus();
        assert_eq!(
            json,
            format!(
                "{{\"1\": {{\"ms\": 1.00, \"host_cpus\": {host}}}, \
                 \"2\": {{\"ms\": 2.00, \"host_cpus\": {host}}}}}"
            )
        );
        // The guard's parser must flatten the new shape.
        let keys = perf_guard::numeric_keys(&format!("{{\"a_ms_by_threads\": {json}}}")).unwrap();
        assert_eq!(keys["a_ms_by_threads.1.ms"], 1.0);
        assert_eq!(keys["a_ms_by_threads.2.host_cpus"], host as f64);
    }

    #[test]
    fn fixtures_generate() {
        let (g, s) = bench_graph(PaperGraph::ImdbActorActor);
        assert!(g.num_nodes() > 0);
        assert_eq!(g.num_nodes(), s.len());
        let (gw, _) = bench_graph_weighted(PaperGraph::ImdbActorActor);
        assert!(gw.is_weighted());
    }
}
