//! Shared fixtures for the Criterion benchmark suite.
//!
//! Each bench target in `benches/` regenerates one of the paper's tables or
//! figures at bench scale (small enough for Criterion's repeated sampling,
//! large enough that the measured kernels dominate setup noise). Generation
//! is deterministic, so every Criterion sample measures identical work.

pub mod perf_guard;

use d2pr_datagen::worlds::{Dataset, World};
use d2pr_graph::csr::CsrGraph;

/// Scale used by the bench suite (relative to the paper's Table 3 sizes).
/// Chosen so a full `cargo bench --workspace` finishes in minutes.
pub const BENCH_SCALE: f64 = 0.02;

/// Seed shared by all bench fixtures.
pub const BENCH_SEED: u64 = 0xBE_5C;

/// Generate the world for one dataset at bench scale.
pub fn bench_world(dataset: Dataset) -> World {
    World::generate(dataset, BENCH_SCALE, BENCH_SEED).expect("bench world generates")
}

/// An unweighted paper graph plus its significance at bench scale.
pub fn bench_graph(graph: d2pr_datagen::worlds::PaperGraph) -> (CsrGraph, Vec<f64>) {
    let world = bench_world(graph.dataset());
    let (g, s) = graph.view(&world);
    (g.to_unweighted(), s.to_vec())
}

/// A weighted paper graph plus its significance at bench scale.
pub fn bench_graph_weighted(graph: d2pr_datagen::worlds::PaperGraph) -> (CsrGraph, Vec<f64>) {
    let world = bench_world(graph.dataset());
    let (g, s) = graph.view(&world);
    (g.clone(), s.to_vec())
}

/// Worker counts recorded on the bench JSONs' thread axis: powers of two
/// up to the host's parallelism (always including 1 and the default), so
/// trajectories from hosts with different core counts stay comparable.
/// Shared by `engine_p_sweep` and `incremental_updates`.
pub fn thread_axis(default: usize) -> Vec<usize> {
    let mut axis: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= default.max(1))
        .collect();
    if !axis.contains(&default) {
        axis.push(default);
    }
    axis.sort_unstable();
    axis
}

/// Milliseconds for one recorded benchmark, using the statistic the
/// current build mode reports: **minimum**-of-samples under the `smoke`
/// feature (the CI perf-guard input — robust against scheduler stalls on
/// shared runners) and the historical **mean** for the committed
/// full-scale trajectory. The one place the policy lives; both bench
/// targets and their axis recorders go through it.
pub fn report_ms(c: &criterion::Criterion, name: &str) -> f64 {
    let d = if cfg!(feature = "smoke") {
        c.min_of(name)
    } else {
        c.mean_of(name)
    };
    d.expect("benchmark was measured").as_secs_f64() * 1e3
}

/// `{"1": 12.3, "4": 5.6}`-style JSON object over the thread axis.
pub fn axis_json(axis: &[usize], ms_of: impl Fn(usize) -> f64) -> String {
    let entries: Vec<String> = axis
        .iter()
        .map(|&t| format!("\"{t}\": {:.2}", ms_of(t)))
        .collect();
    format!("{{{}}}", entries.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_datagen::worlds::PaperGraph;

    #[test]
    fn fixtures_generate() {
        let (g, s) = bench_graph(PaperGraph::ImdbActorActor);
        assert!(g.num_nodes() > 0);
        assert_eq!(g.num_nodes(), s.len());
        let (gw, _) = bench_graph_weighted(PaperGraph::ImdbActorActor);
        assert!(gw.is_weighted());
    }
}
