//! Figures 9–11 bench: the β × p interaction grid on weighted graphs.
//! β blends connection strength against degree de-coupling (paper §3.2.3);
//! each iteration runs the paper's five β values over the 17-point p grid.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::bench_graph_weighted;
use d2pr_datagen::worlds::PaperGraph;
use d2pr_experiments::sweep::{best_point, SweepConfig};
use std::hint::black_box;
use std::time::Duration;

fn beta_grid(c: &mut Criterion, figure: &str, pg: PaperGraph) {
    let (g, sig) = bench_graph_weighted(pg);
    assert!(g.is_weighted(), "beta sweeps need the weighted graph");
    let cfg = SweepConfig {
        betas: SweepConfig::paper_betas(),
        ..Default::default()
    };
    let points = cfg.run(&g, &sig);
    let best = best_point(&points).expect("non-empty grid");
    eprintln!(
        "[{figure}] {:<30} best (p, beta) = ({:+.1}, {:.2}) rho {:+.3}",
        pg.name(),
        best.p,
        best.beta,
        best.spearman
    );
    let mut group = c.benchmark_group(figure);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function(pg.name(), |b| {
        b.iter(|| black_box(cfg.run(black_box(&g), black_box(&sig))))
    });
    group.finish();
}

fn fig9(c: &mut Criterion) {
    beta_grid(c, "fig9_beta_sweep_group_a", PaperGraph::ImdbActorActor);
}

fn fig10(c: &mut Criterion) {
    beta_grid(c, "fig10_beta_sweep_group_b", PaperGraph::ImdbMovieMovie);
}

fn fig11(c: &mut Criterion) {
    beta_grid(
        c,
        "fig11_beta_sweep_group_c",
        PaperGraph::LastfmListenerListener,
    );
}

criterion_group!(benches, fig9, fig10, fig11);
criterion_main!(benches);
