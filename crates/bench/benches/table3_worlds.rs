//! Tables 2–3 bench: world generation (affiliation + projections +
//! significance) and graph statistics for every dataset, plus the Table 2
//! rank-shift computation.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::{BENCH_SCALE, BENCH_SEED};
use d2pr_core::d2pr::D2pr;
use d2pr_datagen::worlds::{Dataset, PaperGraph, World};
use d2pr_graph::stats::degree_stats;
use d2pr_stats::rank::{ordinal_ranks, RankOrder};
use std::hint::black_box;
use std::time::Duration;

fn table3_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_world_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for dataset in Dataset::all() {
        // Emit the Table 3 rows once.
        let w = World::generate(dataset, BENCH_SCALE, BENCH_SEED).expect("world generates");
        for (g, side) in [
            (&w.entity_graph, "entity"),
            (&w.container_graph, "container"),
        ] {
            let s = degree_stats(g);
            eprintln!(
                "[table3] {:<9} {side:<9}: {} nodes, {} edges, avg {:.2}, std {:.2}, med-nbr-std {:.2}",
                dataset.name(),
                s.num_nodes,
                s.num_edges,
                s.avg_degree,
                s.std_degree,
                s.median_neighbor_degree_std
            );
        }
        group.bench_function(dataset.name(), |b| {
            b.iter(|| {
                black_box(
                    World::generate(black_box(dataset), BENCH_SCALE, BENCH_SEED)
                        .expect("world generates"),
                )
            })
        });
    }
    group.finish();
}

fn table2_rank_shifts(c: &mut Criterion) {
    let world = World::generate(Dataset::Imdb, BENCH_SCALE, BENCH_SEED).expect("world generates");
    let (g, _) = PaperGraph::ImdbActorActor.view(&world);
    let g = g.to_unweighted();
    let engine = D2pr::new(&g);
    let mut group = c.benchmark_group("table2_rank_shifts");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("five_p_rankings", |b| {
        b.iter(|| {
            for p in [-4.0, -2.0, 0.0, 2.0, 4.0] {
                let scores = engine.scores(black_box(p)).expect("valid p").scores;
                black_box(ordinal_ranks(&scores, RankOrder::Descending));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, table3_generation, table2_rank_shifts);
criterion_main!(benches);
