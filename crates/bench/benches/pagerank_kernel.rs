//! Core-kernel microbenchmarks: transition-matrix construction and the
//! power-iteration solve, across p values and graph families. These are the
//! primitives every figure's sweep multiplies; Figure 1's kernel arithmetic
//! is the innermost loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2pr_core::kernel::DegreeKernel;
use d2pr_core::pagerank::{pagerank_with_matrix, PageRankConfig};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::generators::{barabasi_albert, erdos_renyi_nm};
use std::hint::black_box;
use std::time::Duration;

fn kernel_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_kernel_normalize");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    // Paper Figure 1 neighborhood and a large hub neighborhood.
    let small = [2.0, 3.0, 1.0];
    let large: Vec<f64> = (1..=512).map(f64::from).collect();
    for p in [0.0, 2.0, -2.0] {
        let kernel = DegreeKernel::new(p);
        group.bench_with_input(BenchmarkId::new("small", p), &small[..], |b, degs| {
            let mut out = Vec::new();
            b.iter(|| kernel.normalize_into(black_box(degs), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("large512", p), &large[..], |b, degs| {
            let mut out = Vec::new();
            b.iter(|| kernel.normalize_into(black_box(degs), &mut out))
        });
    }
    group.finish();
}

fn transition_build(c: &mut Criterion) {
    let g = barabasi_albert(5_000, 8, 42).expect("generator succeeds");
    let mut group = c.benchmark_group("transition_build");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for p in [0.0, 0.5, -2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                black_box(TransitionMatrix::build(
                    black_box(&g),
                    TransitionModel::DegreeDecoupled { p },
                ))
            })
        });
    }
    group.finish();
}

fn power_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_iteration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (name, g) in [
        (
            "ba_5k",
            barabasi_albert(5_000, 8, 42).expect("generator succeeds"),
        ),
        (
            "er_5k",
            erdos_renyi_nm(5_000, 40_000, 42).expect("generator succeeds"),
        ),
    ] {
        let matrix = TransitionMatrix::build(&g, TransitionModel::DegreeDecoupled { p: 0.5 });
        let cfg = PageRankConfig::default();
        group.bench_function(name, |b| {
            b.iter(|| black_box(pagerank_with_matrix(black_box(&g), &matrix, &cfg, None)))
        });
    }
    group.finish();
}

criterion_group!(benches, kernel_normalize, transition_build, power_iteration);
criterion_main!(benches);
