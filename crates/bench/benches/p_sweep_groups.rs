//! Figures 2–4 bench: the unweighted p sweep per application group. One
//! Criterion function per group; each iteration runs the full paper grid
//! (17 p values) on one representative graph and reports the optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::bench_graph;
use d2pr_datagen::worlds::PaperGraph;
use d2pr_experiments::sweep::{best_point, SweepConfig};
use std::hint::black_box;
use std::time::Duration;

fn sweep_group(c: &mut Criterion, bench_name: &str, figure: &str, pg: PaperGraph) {
    let (g, sig) = bench_graph(pg);
    let cfg = SweepConfig::default();
    // Regenerate the figure series once for the log.
    let points = cfg.run(&g, &sig);
    let best = best_point(&points).expect("non-empty sweep");
    eprintln!(
        "[{figure}] {:<30} best p = {:+.1} (rho {:+.3}); rho(p=0) = {:+.3}",
        pg.name(),
        best.p,
        best.spearman,
        points
            .iter()
            .find(|pt| pt.p == 0.0)
            .expect("grid has p=0")
            .spearman,
    );
    let mut group = c.benchmark_group(bench_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function(pg.name(), |b| {
        b.iter(|| black_box(cfg.run(black_box(&g), black_box(&sig))))
    });
    group.finish();
}

fn fig2_group_a(c: &mut Criterion) {
    sweep_group(
        c,
        "fig2_p_sweep_group_a",
        "fig2",
        PaperGraph::ImdbActorActor,
    );
    sweep_group(
        c,
        "fig2_p_sweep_group_a",
        "fig2",
        PaperGraph::EpinionsProductProduct,
    );
}

fn fig3_group_b(c: &mut Criterion) {
    sweep_group(
        c,
        "fig3_p_sweep_group_b",
        "fig3",
        PaperGraph::DblpAuthorAuthor,
    );
}

fn fig4_group_c(c: &mut Criterion) {
    sweep_group(
        c,
        "fig4_p_sweep_group_c",
        "fig4",
        PaperGraph::LastfmArtistArtist,
    );
}

criterion_group!(benches, fig2_group_a, fig3_group_b, fig4_group_c);
criterion_main!(benches);
