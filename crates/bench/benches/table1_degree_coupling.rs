//! Table 1 bench: measure the cost of the degree–PageRank coupling
//! computation (conventional PageRank + Spearman) on the three graphs the
//! paper reports, and print the regenerated table rows.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::bench_graph;
use d2pr_datagen::worlds::PaperGraph;
use d2pr_experiments::experiments::degree_pagerank_coupling;
use std::hint::black_box;
use std::time::Duration;

fn table1(c: &mut Criterion) {
    let graphs = [
        PaperGraph::LastfmListenerListener,
        PaperGraph::DblpArticleArticle,
        PaperGraph::ImdbMovieMovie,
    ];
    let mut group = c.benchmark_group("table1_degree_coupling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for pg in graphs {
        let (g, _) = bench_graph(pg);
        // Print the regenerated table row once, outside the timing loop.
        let rho = degree_pagerank_coupling(&g);
        eprintln!(
            "[table1] {:<30} Spearman(degree, PageRank) = {rho:+.3}",
            pg.name()
        );
        group.bench_function(pg.name(), |b| {
            b.iter(|| black_box(degree_pagerank_coupling(black_box(&g))))
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
