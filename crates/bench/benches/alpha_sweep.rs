//! Figures 6–8 bench: the α × p interaction grid. Each iteration runs the
//! paper's four α values across the 17-point p grid on one graph per group.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::bench_graph;
use d2pr_datagen::worlds::PaperGraph;
use d2pr_experiments::sweep::{best_point, SweepConfig};
use std::hint::black_box;
use std::time::Duration;

fn alpha_grid(c: &mut Criterion, figure: &str, pg: PaperGraph) {
    let (g, sig) = bench_graph(pg);
    let cfg = SweepConfig {
        alphas: SweepConfig::paper_alphas(),
        ..Default::default()
    };
    let points = cfg.run(&g, &sig);
    let best = best_point(&points).expect("non-empty grid");
    eprintln!(
        "[{figure}] {:<30} best (p, alpha) = ({:+.1}, {:.2}) rho {:+.3}",
        pg.name(),
        best.p,
        best.alpha,
        best.spearman
    );
    let mut group = c.benchmark_group(figure);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function(pg.name(), |b| {
        b.iter(|| black_box(cfg.run(black_box(&g), black_box(&sig))))
    });
    group.finish();
}

fn fig6(c: &mut Criterion) {
    alpha_grid(
        c,
        "fig6_alpha_sweep_group_a",
        PaperGraph::EpinionsCommenterCommenter,
    );
}

fn fig7(c: &mut Criterion) {
    alpha_grid(c, "fig7_alpha_sweep_group_b", PaperGraph::ImdbMovieMovie);
}

fn fig8(c: &mut Criterion) {
    alpha_grid(
        c,
        "fig8_alpha_sweep_group_c",
        PaperGraph::DblpArticleArticle,
    );
}

criterion_group!(benches, fig6, fig7, fig8);
criterion_main!(benches);
