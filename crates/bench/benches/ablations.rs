//! Design-choice ablations (DESIGN.md §5):
//!
//! * **Θ caching** — rebuilding the transition operator with a cached
//!   degree/Θ table (what `D2pr::sweep_p` does) vs recomputing it per point;
//! * **log-space kernel vs direct powf** — the numerically-safe kernel
//!   against the naive `deg.powf(-p)` (which overflows for extreme `p` —
//!   benchmarked only on the safe range);
//! * **serial push vs parallel pull** — the two PageRank iteration
//!   strategies, including the transpose-construction cost;
//! * **fractional-rank Spearman vs d² formula** — tie-correct ranking
//!   against the classic no-ties shortcut;
//! * **warm vs cold sweeps** — re-using the previous grid point's solution
//!   as the next solve's initial iterate across the paper's p grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use d2pr_core::d2pr::D2pr;
use d2pr_core::gauss_seidel::gauss_seidel_with_transpose;
use d2pr_core::pagerank::{pagerank_with_matrix, PageRankConfig};
use d2pr_core::parallel::{pagerank_parallel, TransposedMatrix};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::generators::barabasi_albert;
use d2pr_stats::correlation::{spearman, spearman_from_distinct_ranks};
use d2pr_stats::rank::{fractional_ranks, RankOrder};
use std::hint::black_box;
use std::time::Duration;

fn theta_caching(c: &mut Criterion) {
    let g = barabasi_albert(4_000, 6, 7).expect("generator succeeds");
    let engine = D2pr::new(&g);
    let ps: Vec<f64> = D2pr::paper_p_grid();
    let mut group = c.benchmark_group("ablation_theta_caching");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("cached_theta_sweep", |b| {
        b.iter(|| {
            for &p in &ps {
                black_box(engine.matrix_for(black_box(p)));
            }
        })
    });
    group.bench_function("recompute_theta_sweep", |b| {
        b.iter(|| {
            for &p in &ps {
                black_box(TransitionMatrix::build(
                    black_box(&g),
                    TransitionModel::DegreeDecoupled { p },
                ));
            }
        })
    });
    group.finish();
}

/// The unsafe direct evaluation the log-space kernel replaces. Valid only
/// while `|p|·log10(deg)` stays well inside f64 range.
fn naive_normalize(p: f64, degs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let mut sum = 0.0;
    for &d in degs {
        let w = d.max(1.0).powf(-p);
        out.push(w);
        sum += w;
    }
    for w in out.iter_mut() {
        *w /= sum;
    }
}

fn kernel_logspace_vs_direct(c: &mut Criterion) {
    let degs: Vec<f64> = (1..=256).map(f64::from).collect();
    let mut group = c.benchmark_group("ablation_kernel_logspace");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for p in [0.5, 2.0, -2.0] {
        let kernel = d2pr_core::kernel::DegreeKernel::new(p);
        group.bench_with_input(BenchmarkId::new("logspace", p), &p, |b, _| {
            let mut out = Vec::new();
            b.iter(|| kernel.normalize_into(black_box(&degs), &mut out))
        });
        group.bench_with_input(BenchmarkId::new("direct_powf", p), &p, |b, &p| {
            let mut out = Vec::new();
            b.iter(|| naive_normalize(black_box(p), black_box(&degs), &mut out))
        });
    }
    group.finish();
}

fn serial_vs_parallel(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, 5).expect("generator succeeds");
    let matrix = TransitionMatrix::build(&g, TransitionModel::DegreeDecoupled { p: 0.5 });
    let cfg = PageRankConfig::default();
    let mut group = c.benchmark_group("ablation_serial_vs_parallel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("serial_push", |b| {
        b.iter(|| black_box(pagerank_with_matrix(black_box(&g), &matrix, &cfg, None)))
    });
    let transpose_gs = TransposedMatrix::build(&g, &matrix);
    group.bench_function("gauss_seidel_prebuilt", |b| {
        b.iter(|| {
            black_box(gauss_seidel_with_transpose(
                black_box(&g),
                &transpose_gs,
                &cfg,
            ))
        })
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_pull_incl_transpose", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let t = TransposedMatrix::build(black_box(&g), &matrix);
                    black_box(pagerank_parallel(&t, &cfg, None, threads).expect("valid inputs"))
                })
            },
        );
        let transpose = TransposedMatrix::build(&g, &matrix);
        group.bench_with_input(
            BenchmarkId::new("parallel_pull_prebuilt", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        pagerank_parallel(black_box(&transpose), &cfg, None, threads)
                            .expect("valid inputs"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn spearman_variants(c: &mut Criterion) {
    // Scores with heavy ties (realistic for degree-like data).
    let xs: Vec<f64> = (0..20_000).map(|i| f64::from(i % 500)).collect();
    let ys: Vec<f64> = (0..20_000).map(|i| f64::from((i * 7 + 13) % 500)).collect();
    let mut group = c.benchmark_group("ablation_spearman");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("tie_correct_spearman", |b| {
        b.iter(|| black_box(spearman(black_box(&xs), black_box(&ys))))
    });
    group.bench_function("d2_formula_on_prebuilt_ranks", |b| {
        let rx = fractional_ranks(&xs, RankOrder::Ascending);
        let ry = fractional_ranks(&ys, RankOrder::Ascending);
        b.iter(|| black_box(spearman_from_distinct_ranks(black_box(&rx), black_box(&ry))))
    });
    group.finish();
}

fn warm_vs_cold_sweep(c: &mut Criterion) {
    let g = barabasi_albert(3_000, 5, 11).expect("generator succeeds");
    let engine = D2pr::new(&g);
    let grid = D2pr::paper_p_grid();
    let mut group = c.benchmark_group("ablation_warm_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("cold_sweep", |b| {
        b.iter(|| black_box(engine.sweep_p(black_box(&grid)).expect("valid grid")))
    });
    group.bench_function("warm_sweep", |b| {
        b.iter(|| black_box(engine.sweep_p_warm(black_box(&grid)).expect("valid grid")))
    });
    group.finish();
}

criterion_group!(
    benches,
    theta_caching,
    warm_vs_cold_sweep,
    kernel_logspace_vs_direct,
    serial_vs_parallel,
    spearman_variants
);
criterion_main!(benches);
