//! Serving-concurrency benchmark: read throughput during refresh,
//! double-buffered vs stop-the-world.
//!
//! The acceptance run for the serving layer. Two deployments stream the
//! *same* churn (at full scale single-edge trickle batches at the 1e-6
//! serving tolerance, the `incremental_updates` serving regime; smoke
//! uses denser batches — see [`CHURN`]) over the same graph while reader
//! threads hammer point queries:
//!
//! * **live** — the `ServingEngine` path: readers hold [`ScoreReader`]s,
//!   the writer resolves into the back buffer and publishes atomically.
//!   Reads proceed *during* the refresh.
//! * **stop_the_world** — the pre-serving discipline: scores live behind
//!   a writer-priority lock that the writer holds for the whole refresh
//!   (no reader may touch an engine while `resolve_incremental` runs —
//!   exactly the constraint this PR removes). Identical solver work; only
//!   the reader-availability discipline differs. (Writer-priority, not a
//!   bare `Mutex`/`RwLock`: under a continuous reader stream both std
//!   locks starve the sleeping writer out of its own refresh — measured
//!   here — which models neither discipline; real lock-based serving
//!   gates readers for exactly this reason.)
//!
//! Both run the same duty cycle (a short idle between batches, as any
//! real ingest stream has). The **guarded** key is
//! `read_availability_during_refresh_ratio`: reads served inside refresh
//! windows, live over stop-the-world, **saturated at 10** — the true gap
//! is unbounded (stop-the-world serves ~zero reads there) and hence
//! noisy, while the cap turns it into a stable pass/fail signal: any
//! publication-path regression that blocks readers collapses the ratio
//! to ~1 and trips the tight ratio gate. Whole-stream throughput and the
//! raw (uncapped) gap are reported unguarded. Results land in
//! `BENCH_serving.json` (the smoke variant in `target/bench-smoke/`,
//! gated by `perf_guard` against `ci/BENCH_serving.smoke.json`).

use d2pr_core::engine::{default_threads, Engine};
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::ServingEngine;
use d2pr_core::transition::TransitionModel;
use d2pr_experiments::evolving::churn_stream;
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[cfg(not(feature = "smoke"))]
const NODES: usize = 100_000;
#[cfg(feature = "smoke")]
const NODES: usize = 3_000;
const ATTACH: usize = 5;
#[cfg(not(feature = "smoke"))]
const BATCHES: usize = 24;
#[cfg(feature = "smoke")]
const BATCHES: usize = 6;
/// Per-batch churn fraction. Full scale uses the sampler's floor (churn
/// 0.0 => exactly one delete + one insert per batch — the single-edge
/// trickle regime). Smoke runs a graph ~30x smaller, where trickle
/// refreshes have shrunk below a scheduler quantum as the solver got
/// faster — on a 1-CPU host the reader threads can get zero timeslices
/// inside such a window and the availability ratio degenerates to
/// coin-flip noise. Real per-batch churn keeps smoke refresh windows a
/// few ms wide so the during-refresh read rate is actually measurable.
#[cfg(not(feature = "smoke"))]
const CHURN: f64 = 0.0;
#[cfg(feature = "smoke")]
const CHURN: f64 = 0.25;
const READERS: usize = 2;
/// Idle between batches (the duty cycle any real ingest stream has).
const IDLE: Duration = Duration::from_millis(2);
const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
const SEED: u64 = 0x5E21;

fn serving_config() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-6,
        max_iterations: 1_000,
        ..Default::default()
    }
}

/// The stop-the-world baseline's lock: a mutex with writer priority.
/// Readers spin out while a refresh is pending/running, so the writer
/// acquires promptly (a bare std Mutex/RwLock lets spinning readers
/// starve the sleeping writer on a busy host).
struct StopTheWorld {
    write_pending: AtomicBool,
    scores: Mutex<Vec<f64>>,
}

impl StopTheWorld {
    fn new(scores: Vec<f64>) -> Self {
        Self {
            write_pending: AtomicBool::new(false),
            scores: Mutex::new(scores),
        }
    }

    fn read(&self, node: usize) -> f64 {
        while self.write_pending.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        self.scores.lock().expect("not poisoned")[node]
    }

    /// Take the lock for a whole refresh; released by [`Self::end_write`].
    fn begin_write(&self) -> MutexGuard<'_, Vec<f64>> {
        self.write_pending.store(true, Ordering::Release);
        self.scores.lock().expect("not poisoned")
    }

    fn end_write(&self, guard: MutexGuard<'_, Vec<f64>>) {
        drop(guard);
        self.write_pending.store(false, Ordering::Release);
    }
}

/// Sets the reader stop flag when dropped — **including during a panic's
/// unwind** out of the refresh closure, so a failed `expect`/`assert`
/// surfaces instead of hanging the scope join on spinning readers.
struct StopOnDrop<'a>(&'a AtomicBool);

impl Drop for StopOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// Shared read-side counters of one run.
#[derive(Default)]
struct ReadCounters {
    total: AtomicU64,
    during_refresh: AtomicU64,
}

/// Per-mode measurement.
struct RunStats {
    refresh_ms_total: f64,
    stream_ms: f64,
    reads_total: u64,
    reads_during_refresh: u64,
    generations: u64,
}

impl RunStats {
    fn reads_per_ms_stream(&self) -> f64 {
        self.reads_total as f64 / self.stream_ms.max(1e-9)
    }

    fn reads_per_ms_during_refresh(&self) -> f64 {
        self.reads_during_refresh as f64 / self.refresh_ms_total.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"refresh_ms_total\": {:.2}, \"refresh_ms_mean\": {:.3}, ",
                "\"stream_ms\": {:.2}, \"reads_total\": {}, ",
                "\"reads_during_refresh\": {}, \"reads_per_ms_stream\": {:.1}, ",
                "\"reads_per_ms_during_refresh\": {:.1}, \"generations\": {}}}"
            ),
            self.refresh_ms_total,
            self.refresh_ms_total / BATCHES as f64,
            self.stream_ms,
            self.reads_total,
            self.reads_during_refresh,
            self.reads_per_ms_stream(),
            self.reads_per_ms_during_refresh(),
            self.generations,
        )
    }
}

/// Drive one churn stream with `refresh` while `READERS` threads spin on
/// `read` (a single point query; it must return a finite score).
fn drive(
    batches: &[EdgeBatch],
    read: impl Fn(u32) -> f64 + Sync,
    mut refresh: impl FnMut(&EdgeBatch),
) -> (f64, f64, ReadCounters) {
    let counters = ReadCounters::default();
    let refreshing = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut refresh_ms = 0.0f64;
    let mut stream_ms = 0.0f64;
    std::thread::scope(|scope| {
        for r in 0..READERS {
            let read = &read;
            let counters = &counters;
            let refreshing = &refreshing;
            let stop = &stop;
            scope.spawn(move || {
                let mut node = r as u32;
                let mut local = 0u64;
                let mut local_during = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..32 {
                        node =
                            node.wrapping_mul(1_664_525).wrapping_add(1_013_904_223) % NODES as u32;
                        let s = read(node);
                        assert!(s.is_finite());
                        local += 1;
                        if refreshing.load(Ordering::Relaxed) {
                            local_during += 1;
                        }
                    }
                }
                counters.total.fetch_add(local, Ordering::Relaxed);
                counters
                    .during_refresh
                    .fetch_add(local_during, Ordering::Relaxed);
            });
        }
        // Dropped on every exit path — a refresh panic must release the
        // readers or the scope join hangs and masks the failure.
        let _stop_guard = StopOnDrop(&stop);
        let stream_start = Instant::now();
        for batch in batches {
            refreshing.store(true, Ordering::Relaxed);
            let t0 = Instant::now();
            refresh(batch);
            refresh_ms += t0.elapsed().as_secs_f64() * 1e3;
            refreshing.store(false, Ordering::Relaxed);
            std::thread::sleep(IDLE);
        }
        stream_ms = stream_start.elapsed().as_secs_f64() * 1e3;
    });
    (refresh_ms, stream_ms, counters)
}

fn main() {
    let threads = default_threads();
    eprintln!("serving_concurrent: generating BA({NODES}, {ATTACH}) ...");
    let graph = barabasi_albert(NODES, ATTACH, SEED).expect("graph generates");
    let arcs = graph.num_arcs();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD1CE);
    let batches = churn_stream(&graph, BATCHES, CHURN, &mut rng).expect("unweighted");
    let config = serving_config();

    // -- Live: double-buffered publication, readers never excluded.
    let mut serving =
        ServingEngine::new(graph.clone(), MODEL, config, threads).expect("serving engine");
    let reader = serving.reader();
    let (refresh_ms, stream_ms, counters) = drive(
        &batches,
        |node| reader.get(node).expect("in range"),
        |batch| {
            let refresh = serving.ingest(batch).expect("refresh");
            assert!(refresh.converged);
        },
    );
    let live = RunStats {
        refresh_ms_total: refresh_ms,
        stream_ms,
        reads_total: counters.total.load(Ordering::Relaxed),
        reads_during_refresh: counters.during_refresh.load(Ordering::Relaxed),
        generations: serving.generation(),
    };

    // Parity: the final published generation matches a cold solve of the
    // final graph at the same tolerance.
    let final_divergence = {
        let mut dg = DeltaGraph::new(graph.clone()).expect("unweighted");
        for batch in &batches {
            dg.apply_batch(batch).expect("valid batch");
        }
        let final_graph = dg.snapshot();
        let mut engine = Engine::with_threads(&final_graph, threads)
            .with_config(config)
            .expect("config");
        let cold = engine.solve_model(MODEL).expect("cold solve");
        let mut snap = Vec::new();
        reader.snapshot_into(&mut snap);
        let l1: f64 = cold
            .scores
            .iter()
            .zip(&snap)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 1e-4, "published scores diverged from cold: {l1:.3e}");
        l1
    };
    drop(reader);

    // -- Stop-the-world: same solver work, but scores live behind the
    //    writer-priority lock whose guard spans the whole refresh.
    let mut serving_stw =
        ServingEngine::new(graph.clone(), MODEL, config, threads).expect("serving engine");
    let stw_reader = serving_stw.reader();
    let published = {
        let mut initial = Vec::new();
        stw_reader.snapshot_into(&mut initial);
        StopTheWorld::new(initial)
    };
    let (refresh_ms, stream_ms, counters) = drive(
        &batches,
        |node| published.read(node as usize),
        |batch| {
            let mut guard = published.begin_write();
            let refresh = serving_stw.ingest(batch).expect("refresh");
            assert!(refresh.converged);
            stw_reader.snapshot_into(&mut guard);
            published.end_write(guard);
        },
    );
    let stw = RunStats {
        refresh_ms_total: refresh_ms,
        stream_ms,
        reads_total: counters.total.load(Ordering::Relaxed),
        reads_during_refresh: counters.during_refresh.load(Ordering::Relaxed),
        generations: serving_stw.generation(),
    };

    let speedup_stream = live.reads_per_ms_stream() / stw.reads_per_ms_stream().max(1e-9);
    // Raw availability gap inside refresh windows; enormous and noisy by
    // nature (stop-the-world serves ~0 reads there), so it is reported
    // under a deliberately *unguarded* key name...
    let during_advantage = live.reads_per_ms_during_refresh()
        / stw
            .reads_per_ms_during_refresh()
            .max(1.0 / stw.refresh_ms_total.max(1.0));
    // ...while the *guarded* form saturates at 10: both the baseline and
    // any healthy candidate sit pinned at the cap (stable under timing
    // noise), and a publication-path regression that blocks readers
    // during refresh collapses it to ~1, tripping the tight ratio gate.
    const AVAILABILITY_CAP: f64 = 10.0;
    let availability_ratio = during_advantage.min(AVAILABILITY_CAP);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving_concurrent\",\n",
            "  \"graph\": {{\"generator\": \"barabasi_albert({}, {}, 0x5E21)\", ",
            "\"nodes\": {}, \"arcs\": {}}},\n",
            "  \"model\": \"DegreeDecoupled(p = 0.5)\",\n",
            "  \"tolerance\": 1e-6,\n",
            "  \"batches\": {},\n",
            "  \"churn_per_batch\": {},\n",
            "  \"reader_threads\": {},\n",
            "  \"idle_between_batches_ms\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"live\": {},\n",
            "  \"stop_the_world\": {},\n",
            "  \"read_availability_during_refresh_ratio\": {:.3},\n",
            "  \"speedup_reads_live_vs_stop_the_world\": {:.3},\n",
            "  \"during_refresh_reads_live_over_stw\": {:.1},\n",
            "  \"final_l1_divergence_vs_cold\": {:.3e},\n",
            "  \"note\": \"Identical churn streams at the 1e-6 serving ",
            "tolerance; both modes run the same incremental solver. live publishes ",
            "through the double-buffered ServingEngine (readers wait-free throughout); ",
            "stop_the_world holds a writer-priority lock for the whole refresh, the ",
            "pre-serving discipline. read_availability_during_refresh_ratio is the ",
            "GUARDED key: reads served inside refresh windows, live over ",
            "stop-the-world, saturated at 10 -- healthy runs pin the cap, a ",
            "publication-path regression that blocks readers collapses it to ~1. ",
            "speedup_reads_live_vs_stop_the_world (whole duty-cycled stream) and ",
            "during_refresh_reads_live_over_stw (the raw unbounded availability gap) ",
            "are reported unguarded. On a 1-CPU host aggregate throughput cannot ",
            "improve (reads and solves time-share one core, and the wait-free readers ",
            "stretch refresh wall time by competing with the solver); the win this ",
            "bench demonstrates is availability -- zero reader outage during ",
            "refresh -- which multi-core hosts convert into throughput.\"\n",
            "}}\n"
        ),
        NODES,
        ATTACH,
        NODES,
        arcs,
        BATCHES,
        CHURN,
        READERS,
        IDLE.as_millis(),
        default_threads(),
        threads,
        live.json(),
        stw.json(),
        availability_ratio,
        speedup_stream,
        during_advantage,
        final_divergence,
    );

    let out = if cfg!(feature = "smoke") {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-smoke");
        std::fs::create_dir_all(&dir).expect("create bench-smoke dir");
        dir.join("BENCH_serving.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json")
    };
    let mut f = std::fs::File::create(&out).expect("create BENCH_serving.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serving.json");
    println!("wrote {}\n{json}", out.display());
    println!(
        "read throughput: live {:.0}/ms vs stop-the-world {:.0}/ms ({:.2}x); \
         during refresh windows: {:.0}/ms vs {:.0}/ms",
        live.reads_per_ms_stream(),
        stw.reads_per_ms_stream(),
        speedup_stream,
        live.reads_per_ms_during_refresh(),
        stw.reads_per_ms_during_refresh(),
    );
}
