//! Fused-engine sweep benchmark: the PR-1 acceptance bench.
//!
//! Compares a 5-point `p` sweep on a 100k-node / ~1M-arc Barabási–Albert
//! graph across three solver paths:
//!
//! * **seed_rebuild** — a faithful port of the PR-0 parallel solver:
//!   transition matrix and transpose rebuilt from scratch at every grid
//!   point, node-count destination chunks, worker threads spawned (and
//!   joined) on *every* power iteration. Measured twice: with 1 thread and
//!   with 4 threads — the seed API forced callers to hardcode a thread
//!   count, and every call site the seed shipped (its tests and benches)
//!   used 4, so the 4-thread run is the configuration the seed actually
//!   ran in; the 1-thread run is reported alongside for transparency.
//! * **engine_cold** — the fused [`Engine`]: structural transpose and arc
//!   permutation built once, operator rewritten in place per point, one
//!   persistent arc-balanced worker pool; every point starts from the
//!   teleport distribution.
//! * **engine_warm** — same, but each grid point warm-starts from the
//!   previous point's solution (the engine's sweep mode).
//!
//! Besides the timing comparison, the bench verifies the engine's
//! zero-allocation contract: after warm-up, the five in-place operator
//! updates of a sweep must perform **zero heap allocations** (counted by a
//! wrapping global allocator). Results are written to
//! `BENCH_pagerank.json` at the workspace root so the perf trajectory is
//! machine-readable from PR 1 onward.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::{axis_json, report_ms, thread_axis};
use d2pr_core::engine::{default_threads, Engine};
use d2pr_core::pagerank::{PageRankConfig, PageRankResult};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::generators::barabasi_albert;
use d2pr_graph::permute::Layout as GraphLayout;
use d2pr_graph::transpose::CscStructure;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Counting allocator: proves the zero-allocation operator-update contract.
// ---------------------------------------------------------------------------

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter is a
// side-effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

// ---------------------------------------------------------------------------
// Faithful port of the PR-0 ("seed") parallel solver, kept as the baseline.
// ---------------------------------------------------------------------------

mod seed_baseline {
    use super::*;

    struct SeedTranspose {
        in_offsets: Vec<usize>,
        in_sources: Vec<u32>,
        in_probs: Vec<f64>,
        dangling: Vec<u32>,
        num_nodes: usize,
    }

    impl SeedTranspose {
        fn build(graph: &CsrGraph, matrix: &TransitionMatrix) -> Self {
            let n = graph.num_nodes();
            let (offsets, targets, _) = graph.parts();
            let probs = matrix.arc_probs();
            let mut counts = vec![0usize; n + 1];
            for &t in targets {
                counts[t as usize + 1] += 1;
            }
            for i in 0..n {
                counts[i + 1] += counts[i];
            }
            let in_offsets = counts.clone();
            let mut cursor = counts;
            let mut in_sources = vec![0u32; targets.len()];
            let mut in_probs = vec![0.0f64; targets.len()];
            for v in 0..n {
                for k in offsets[v]..offsets[v + 1] {
                    let t = targets[k] as usize;
                    let slot = cursor[t];
                    cursor[t] += 1;
                    in_sources[slot] = v as u32;
                    in_probs[slot] = probs[k];
                }
            }
            let dangling = (0..n as u32)
                .filter(|&v| offsets[v as usize] == offsets[v as usize + 1])
                .collect();
            Self {
                in_offsets,
                in_sources,
                in_probs,
                dangling,
                num_nodes: n,
            }
        }
    }

    /// The PR-0 iteration scheme: node-count chunks, threads spawned every
    /// iteration (crossbeam scope in the original; std scope here).
    fn pagerank_parallel_seed(
        transpose: &SeedTranspose,
        config: &PageRankConfig,
        num_threads: usize,
    ) -> PageRankResult {
        let n = transpose.num_nodes;
        let threads = num_threads.clamp(1, n.max(1));
        let uniform = 1.0 / n as f64;
        let alpha = config.alpha;
        let mut rank: Vec<f64> = vec![uniform; n];
        let mut next = vec![0.0f64; n];
        let chunk = n.div_ceil(threads);

        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        while iterations < config.max_iterations {
            iterations += 1;
            let dangling_mass: f64 = transpose.dangling.iter().map(|&v| rank[v as usize]).sum();
            let rank_ref = &rank;
            let residuals: Vec<f64> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for (ci, slice) in next.chunks_mut(chunk).enumerate() {
                    let start = ci * chunk;
                    let in_offsets = &transpose.in_offsets;
                    let in_sources = &transpose.in_sources;
                    let in_probs = &transpose.in_probs;
                    handles.push(scope.spawn(move || {
                        let mut local_residual = 0.0;
                        for (off, slot) in slice.iter_mut().enumerate() {
                            let j = start + off;
                            let mut acc = (1.0 - alpha) * uniform + alpha * dangling_mass * uniform;
                            for k in in_offsets[j]..in_offsets[j + 1] {
                                acc += alpha * in_probs[k] * rank_ref[in_sources[k] as usize];
                            }
                            local_residual += (acc - rank_ref[j]).abs();
                            *slot = acc;
                        }
                        local_residual
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            residual = residuals.iter().sum();
            std::mem::swap(&mut rank, &mut next);
            if residual < config.tolerance {
                break;
            }
        }
        PageRankResult {
            scores: rank,
            iterations,
            residual,
            converged: residual < config.tolerance,
        }
    }

    /// The seed sweep: rebuild matrix + transpose at every grid point.
    pub fn sweep(
        graph: &CsrGraph,
        ps: &[f64],
        config: &PageRankConfig,
        threads: usize,
    ) -> Vec<PageRankResult> {
        ps.iter()
            .map(|&p| {
                let matrix = TransitionMatrix::build(graph, TransitionModel::DegreeDecoupled { p });
                let transpose = SeedTranspose::build(graph, &matrix);
                pagerank_parallel_seed(&transpose, config, threads)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The bench proper
// ---------------------------------------------------------------------------

const SWEEP_PS: [f64; 5] = [-1.0, -0.5, 0.0, 0.5, 1.0];

fn bench_graph() -> CsrGraph {
    // ~100k nodes, ~1M arcs (undirected BA with 5 attachments per node
    // stores each edge as two arcs). The `smoke` feature shrinks this to a
    // seconds-scale CI run that still exercises every measured path.
    let nodes = if cfg!(feature = "smoke") {
        3_000
    } else {
        100_000
    };
    barabasi_albert(nodes, 5, 0xD2).expect("generator succeeds")
}

fn models() -> Vec<TransitionModel> {
    SWEEP_PS
        .iter()
        .map(|&p| TransitionModel::DegreeDecoupled { p })
        .collect()
}

fn engine_sweep(graph: &CsrGraph, warm: bool, threads: usize) -> Vec<PageRankResult> {
    let mut engine = Engine::with_threads(graph, threads);
    engine.sweep(&models(), warm).expect("valid sweep")
}

fn check_agreement(a: &[PageRankResult], b: &[PageRankResult]) {
    for (x, y) in a.iter().zip(b) {
        for (s, t) in x.scores.iter().zip(&y.scores) {
            assert!((s - t).abs() < 1e-7, "solver paths disagree: {s} vs {t}");
        }
    }
}

fn operator_update_allocations(graph: &CsrGraph) -> u64 {
    let mut engine = Engine::new(graph);
    // Warm-up: the first build may grow the neighborhood scratch buffers.
    engine
        .set_model(TransitionModel::DegreeDecoupled { p: SWEEP_PS[0] })
        .expect("valid");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for &p in &SWEEP_PS {
        engine
            .set_model(TransitionModel::DegreeDecoupled { p })
            .expect("valid");
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn p_sweep_comparison(c: &mut Criterion) {
    let graph = bench_graph();
    let threads = default_threads();
    let config = PageRankConfig::default();
    println!(
        "graph: {} nodes, {} arcs, {} threads",
        graph.num_nodes(),
        graph.num_arcs(),
        threads
    );

    // The thread count every call site in the seed repo hardcoded.
    const SEED_CANONICAL_THREADS: usize = 4;

    // Correctness cross-check before timing anything.
    let seed_results = seed_baseline::sweep(&graph, &SWEEP_PS, &config, SEED_CANONICAL_THREADS);
    let cold_results = engine_sweep(&graph, false, threads);
    let warm_results = engine_sweep(&graph, true, threads);
    check_agreement(&seed_results, &cold_results);
    check_agreement(&seed_results, &warm_results);
    let iters = |rs: &[PageRankResult]| rs.iter().map(|r| r.iterations).sum::<usize>();
    let (seed_iters, cold_iters, warm_iters) = (
        iters(&seed_results),
        iters(&cold_results),
        iters(&warm_results),
    );

    let allocs = operator_update_allocations(&graph);
    println!(
        "operator-update allocations across {} points: {allocs}",
        SWEEP_PS.len()
    );

    let mut group = c.benchmark_group("engine_p_sweep");
    if cfg!(feature = "smoke") {
        // Enough samples that the perf-guard's ratio gate is not at the
        // mercy of one noisy measurement on a shared CI runner.
        group
            .sample_size(5)
            .measurement_time(Duration::from_secs(3));
    } else {
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(60));
    }
    group.bench_function("seed_rebuild_4threads", |b| {
        b.iter(|| {
            black_box(seed_baseline::sweep(
                black_box(&graph),
                &SWEEP_PS,
                &config,
                SEED_CANONICAL_THREADS,
            ))
        })
    });
    group.bench_function("seed_rebuild_1thread", |b| {
        b.iter(|| {
            black_box(seed_baseline::sweep(
                black_box(&graph),
                &SWEEP_PS,
                &config,
                1,
            ))
        })
    });
    group.bench_function("engine_cold", |b| {
        b.iter(|| black_box(engine_sweep(black_box(&graph), false, threads)))
    });
    group.bench_function("engine_warm", |b| {
        b.iter(|| black_box(engine_sweep(black_box(&graph), true, threads)))
    });
    // The engine's designed usage: the structural transpose is cached per
    // graph and sweeps reuse it (the sweep-reuse contract), so measure a
    // persistent engine separately from the build-everything-per-sweep runs.
    let mut persistent = Engine::with_threads(&graph, threads);
    group.bench_function("engine_prebuilt_warm", |b| {
        b.iter(|| black_box(persistent.sweep(&models(), true).expect("valid sweep")))
    });
    // Thread-count axis: the prebuilt warm sweep at every power-of-two
    // worker count up to the host's parallelism, so runs from hosts with
    // different core counts stay comparable. The transpose is *shared*
    // across the axis engines (one build, `Arc`-cloned).
    let thread_axis = thread_axis(threads);
    let shared = persistent.shared_structure();
    for &t in &thread_axis {
        let mut engine = Engine::with_structure(&graph, shared.clone(), t).expect("same graph");
        group.bench_function(format!("engine_prebuilt_warm_t{t}").as_str(), |b| {
            b.iter(|| black_box(engine.sweep(&models(), true).expect("valid sweep")))
        });
    }
    // Layout × index axes: the prebuilt warm sweep under every cache-aware
    // node ordering (baseline / degree-descending / RCM), each measured
    // both with the narrow (u32) offsets copy the kernels prefer and with
    // it dropped (the wide-usize fallback huge graphs take). Every combo
    // is cross-checked against the seed results before timing — permuted
    // solves must be observationally identical.
    let mut layout_combos: Vec<String> = Vec::new();
    for layout in GraphLayout::ALL {
        let (internal, csc) =
            CscStructure::with_layout(&graph, layout).expect("bench graph fits u32");
        let perm = csc.permutation().cloned();
        for (index, csc) in [
            ("narrow", csc.clone()),
            ("wide", csc.without_narrow_index()),
        ] {
            let combo = format!("{}_{index}", layout.name());
            let mut engine =
                Engine::with_structure(&internal, Arc::new(csc), threads).expect("same graph");
            let results = engine.sweep(&models(), true).expect("valid sweep");
            for (seed, r) in seed_results.iter().zip(&results) {
                for (v, s) in seed.scores.iter().enumerate() {
                    let internal_v = perm
                        .as_ref()
                        .map_or(v, |p| p.to_internal(v as u32) as usize);
                    assert!(
                        (s - r.scores[internal_v]).abs() < 1e-7,
                        "layout {combo} diverges at node {v}"
                    );
                }
            }
            group.bench_function(
                format!("engine_prebuilt_warm_layout_{combo}").as_str(),
                |b| b.iter(|| black_box(engine.sweep(&models(), true).expect("valid sweep"))),
            );
            layout_combos.push(combo);
        }
    }
    group.finish();

    let ms = |name: &str| report_ms(c, name);
    let seed4_ms = ms("seed_rebuild_4threads");
    let seed1_ms = ms("seed_rebuild_1thread");
    let cold_ms = ms("engine_cold");
    let warm_ms = ms("engine_warm");
    let prebuilt_ms = ms("engine_prebuilt_warm");
    let axis_ms = axis_json(&thread_axis, |t| ms(&format!("engine_prebuilt_warm_t{t}")));
    let layout_ms: Vec<(String, f64)> = layout_combos
        .iter()
        .map(|combo| {
            (
                combo.clone(),
                ms(&format!("engine_prebuilt_warm_layout_{combo}")),
            )
        })
        .collect();
    let layout_json = format!(
        "{{{}}}",
        layout_ms
            .iter()
            .map(|(combo, v)| format!("\"{combo}\": {v:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let best = layout_ms
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("layout axes measured");
    let baseline_wide_ms = layout_ms
        .iter()
        .find(|(combo, _)| combo == "baseline_wide")
        .expect("baseline_wide measured")
        .1;
    let best_narrow_ms = layout_ms
        .iter()
        .filter(|(combo, _)| combo.ends_with("_narrow"))
        .map(|&(_, v)| v)
        .min_by(f64::total_cmp)
        .expect("narrow combos measured");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_p_sweep\",\n",
            "  \"graph\": {{\"generator\": \"barabasi_albert({}, 5, 0xD2)\", ",
            "\"nodes\": {}, \"arcs\": {}}},\n",
            "  \"sweep_ps\": [-1.0, -0.5, 0.0, 0.5, 1.0],\n",
            "  \"host_cpus\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"tolerance\": {:e},\n",
            "  \"iterations\": {{\"seed\": {}, \"engine_cold\": {}, \"engine_warm\": {}}},\n",
            "  \"seed_rebuild_4threads_ms\": {:.2},\n",
            "  \"seed_rebuild_1thread_ms\": {:.2},\n",
            "  \"engine_cold_ms\": {:.2},\n",
            "  \"engine_warm_ms\": {:.2},\n",
            "  \"engine_prebuilt_warm_ms\": {:.2},\n",
            "  \"engine_prebuilt_warm_ms_by_threads\": {},\n",
            "  \"engine_prebuilt_warm_ms_by_layout\": {},\n",
            "  \"layout_best\": \"{}\",\n",
            "  \"speedup_layout_best_vs_baseline\": {:.3},\n",
            "  \"speedup_layout_narrow_vs_seed4\": {:.3},\n",
            "  \"speedup_cold_vs_seed4\": {:.3},\n",
            "  \"speedup_warm_vs_seed4\": {:.3},\n",
            "  \"speedup_warm_vs_seed1\": {:.3},\n",
            "  \"speedup_prebuilt_vs_seed4\": {:.3},\n",
            "  \"operator_update_allocations\": {}\n",
            "}}\n"
        ),
        graph.num_nodes(),
        graph.num_nodes(),
        graph.num_arcs(),
        default_threads(),
        threads,
        config.tolerance,
        seed_iters,
        cold_iters,
        warm_iters,
        seed4_ms,
        seed1_ms,
        cold_ms,
        warm_ms,
        prebuilt_ms,
        axis_ms,
        layout_json,
        best.0,
        baseline_wide_ms / best.1,
        seed4_ms / best_narrow_ms,
        seed4_ms / cold_ms,
        seed4_ms / warm_ms,
        seed1_ms / warm_ms,
        seed4_ms / prebuilt_ms,
        allocs,
    );
    // Smoke runs feed the CI perf guard from a scratch path; acceptance
    // runs update the committed trajectory at the workspace root.
    let out = if cfg!(feature = "smoke") {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-smoke");
        std::fs::create_dir_all(&dir).expect("create bench-smoke dir");
        dir.join("BENCH_pagerank.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pagerank.json")
    };
    let mut f = std::fs::File::create(&out).expect("create BENCH_pagerank.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_pagerank.json");
    println!("wrote {}\n{json}", out.display());
    println!(
        "warm vs seed@4: {:.2}x, prebuilt vs seed@4: {:.2}x",
        seed4_ms / warm_ms,
        seed4_ms / prebuilt_ms
    );
    println!(
        "layout best: {} at {:.2} ms ({:.2}x vs baseline_wide)",
        best.0,
        best.1,
        baseline_wide_ms / best.1
    );
}

criterion_group!(benches, p_sweep_comparison);
criterion_main!(benches);
