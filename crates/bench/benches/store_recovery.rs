//! Durable-store benchmark: write-ahead-log ingest overhead and crash
//! recovery replay throughput.
//!
//! Two measurements over the same churn stream on the same graph:
//!
//! * **ingest overhead** — the stream runs once on the in-memory
//!   [`ServingEngine`] and once on the [`DurableServingEngine`]
//!   (fsync-logged before every publish, `snapshot_every = 0` so the
//!   whole stream rides the log). The durable-over-memory wall-time
//!   multiple is the price of durability; it is reported **unguarded**
//!   (fsync latency is host storage, not code).
//! * **recovery** — the durable store is dropped and reopened cold:
//!   latest snapshot + full log-tail replay + one warm re-solve. Reported
//!   as wall time and replayed batches/arcs per second (unguarded
//!   timings).
//!
//! The **guarded** key is `recovery_durable_generation_ratio`: the
//! recovered generation over the last acknowledged generation. It is
//! exactly 1.0 by the durability contract — every acknowledged ingest was
//! fsync-logged first — and it is deterministic (no timing in it), so the
//! tight ratio gate catches any recovery path that silently drops
//! acknowledged batches. Recovered scores are additionally checked against
//! a cold solve of the final graph (≤ 1e-4 L1 at the serving tolerance).
//! Results land in `BENCH_store.json` (smoke variant in
//! `target/bench-smoke/`, gated by `perf_guard` against
//! `ci/BENCH_store.smoke.json`).

use d2pr_core::engine::{default_threads, Engine};
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::ServingEngine;
use d2pr_core::transition::TransitionModel;
use d2pr_experiments::evolving::churn_stream;
use d2pr_graph::delta::DeltaGraph;
use d2pr_graph::generators::barabasi_albert;
use d2pr_store::durable::{DurableServingEngine, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::time::Instant;

#[cfg(not(feature = "smoke"))]
const NODES: usize = 100_000;
#[cfg(feature = "smoke")]
const NODES: usize = 3_000;
const ATTACH: usize = 5;
#[cfg(not(feature = "smoke"))]
const BATCHES: usize = 24;
#[cfg(feature = "smoke")]
const BATCHES: usize = 8;
/// Fraction of current edges mutated per batch — enough churn that the
/// log replay does real work per record.
const CHURN: f64 = 0.002;
const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
const SEED: u64 = 0x570E;

fn serving_config() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-6,
        max_iterations: 1_000,
        ..Default::default()
    }
}

fn main() {
    let threads = default_threads();
    let config = serving_config();
    eprintln!("store_recovery: generating BA({NODES}, {ATTACH}) ...");
    let graph = barabasi_albert(NODES, ATTACH, SEED).expect("graph generates");
    let arcs = graph.num_arcs();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD1CE);
    let batches = churn_stream(&graph, BATCHES, CHURN, &mut rng).expect("unweighted");
    let mutated_arcs: usize = batches
        .iter()
        .map(|b| b.inserts.len() + b.deletes.len())
        .sum();

    // -- In-memory baseline: the same stream with no durability.
    let mut mem =
        ServingEngine::new(graph.clone(), MODEL, config, threads).expect("serving engine");
    let t0 = Instant::now();
    for batch in &batches {
        let refresh = mem.ingest(batch).expect("refresh");
        assert!(refresh.converged);
    }
    let mem_ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(mem);

    // -- Durable: identical stream, every batch fsync-logged before it
    //    publishes. snapshot_every = 0: only the initial snapshot, the
    //    whole stream rides the log (the worst case for recovery below).
    let dir = std::env::temp_dir().join(format!("d2pr-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions {
        snapshot_every: 0,
        ..Default::default()
    };
    let mut durable =
        DurableServingEngine::create(&dir, graph.clone(), MODEL, config, threads, opts)
            .expect("durable engine");
    let t0 = Instant::now();
    for batch in &batches {
        let refresh = durable.ingest(batch).expect("durable refresh");
        assert!(refresh.converged);
    }
    let durable_ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
    let acked = durable.generation();
    assert_eq!(acked, BATCHES as u64);
    drop(durable);

    // -- Recovery: reopen cold. Latest snapshot (generation 0 here) +
    //    full log replay + one warm re-solve; open() also re-snapshots
    //    after a non-empty replay, so this is the complete crash-restart
    //    path a production restart pays.
    let t0 = Instant::now();
    let (recovered, report) =
        DurableServingEngine::open(&dir, threads, StoreOptions::default()).expect("recovery");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.recovered_generation, acked);
    assert_eq!(report.outcome.replayed_batches, BATCHES);
    let recovery_generation_ratio = report.recovered_generation as f64 / acked as f64;
    let replayed_arcs =
        report.outcome.replayed_inserted_arcs + report.outcome.replayed_deleted_arcs;

    // Parity: recovered scores match a cold solve of the final graph.
    let final_l1 = {
        let mut dg = DeltaGraph::new(graph).expect("unweighted");
        for batch in &batches {
            dg.apply_batch(batch).expect("valid batch");
        }
        let final_graph = dg.snapshot();
        let mut engine = Engine::with_threads(&final_graph, threads)
            .with_config(config)
            .expect("config");
        let cold = engine.solve_model(MODEL).expect("cold solve");
        let reader = recovered.reader();
        let mut snap = Vec::new();
        reader.snapshot_into(&mut snap);
        let l1: f64 = cold
            .scores
            .iter()
            .zip(&snap)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 1e-4, "recovered scores diverged from cold: {l1:.3e}");
        l1
    };
    drop(recovered);
    let store_bytes: u64 = std::fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum();
    std::fs::remove_dir_all(&dir).expect("clean up store dir");

    let ingest_overhead = durable_ingest_ms / mem_ingest_ms.max(1e-9);
    let replay_batches_per_s = BATCHES as f64 / (recovery_ms / 1e3).max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store_recovery\",\n",
            "  \"graph\": {{\"generator\": \"barabasi_albert({}, {}, 0x570E)\", ",
            "\"nodes\": {}, \"arcs\": {}}},\n",
            "  \"model\": \"DegreeDecoupled(p = 0.5)\",\n",
            "  \"tolerance\": 1e-6,\n",
            "  \"batches\": {},\n",
            "  \"mutated_arcs\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"mem_ingest_ms\": {:.2},\n",
            "  \"durable_ingest_ms\": {:.2},\n",
            "  \"ingest_overhead_durable_over_mem\": {:.3},\n",
            "  \"recovery_ms\": {:.2},\n",
            "  \"recovery_replayed_batches\": {},\n",
            "  \"recovery_replayed_arcs\": {},\n",
            "  \"recovery_replay_batches_per_s\": {:.1},\n",
            "  \"recovery_durable_generation_ratio\": {:.3},\n",
            "  \"store_bytes_on_disk\": {},\n",
            "  \"final_l1_divergence_vs_cold\": {:.3e},\n",
            "  \"note\": \"Identical churn streams at the 1e-6 serving tolerance. ",
            "mem runs the in-memory ServingEngine; durable fsync-logs every batch ",
            "before it publishes (snapshot_every = 0, so recovery replays the whole ",
            "stream -- its worst case). recovery_ms is a full cold reopen: snapshot ",
            "load + log-tail replay + one warm re-solve + the post-replay ",
            "re-snapshot. recovery_durable_generation_ratio is the GUARDED key: ",
            "recovered generation over the last acknowledged generation, exactly ",
            "1.0 by the durability contract and deterministic -- any recovery path ",
            "that drops acknowledged batches trips the gate. The timing keys ",
            "(ingest overhead, replay throughput) are host-storage-dependent and ",
            "reported unguarded.\"\n",
            "}}\n"
        ),
        NODES,
        ATTACH,
        NODES,
        arcs,
        BATCHES,
        mutated_arcs,
        default_threads(),
        threads,
        mem_ingest_ms,
        durable_ingest_ms,
        ingest_overhead,
        recovery_ms,
        report.outcome.replayed_batches,
        replayed_arcs,
        replay_batches_per_s,
        recovery_generation_ratio,
        store_bytes,
        final_l1,
    );

    let out = if cfg!(feature = "smoke") {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-smoke");
        std::fs::create_dir_all(&dir).expect("create bench-smoke dir");
        dir.join("BENCH_store.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json")
    };
    let mut f = std::fs::File::create(&out).expect("create BENCH_store.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_store.json");
    println!("wrote {}\n{json}", out.display());
    println!(
        "durable ingest {:.2}ms vs mem {:.2}ms ({:.2}x); cold recovery of {} batches in {:.2}ms",
        durable_ingest_ms, mem_ingest_ms, ingest_overhead, BATCHES, recovery_ms,
    );
}
