//! Query-path benchmark: ranked and point reads on the serving layer.
//!
//! Three read shapes, all against live `ServingEngine`s under the same
//! single-edge trickle churn (the `serving_concurrent` regime — churn 0.0
//! floor, 1e-6 serving tolerance):
//!
//! * **indexed vs scan top-k** — `ScoreReader::top_k(K)` answered from
//!   the maintained per-slot index (an `O(k)` copy) against
//!   `ScoreReader::top_k_scan(K)`, the `O(n log k)` full-scan reference,
//!   re-measured after every churn batch so the index is exercised in its
//!   repaired/rebuilt states, with exact parity asserted each generation.
//!   The **guarded** key is `indexed_topk_speedup_vs_scan` — the whole
//!   point of maintaining the index is that ranked reads stop paying
//!   `O(n)`, so a maintenance bug that degrades reads back to scans (or
//!   slows the indexed path) trips the ratio gate.
//! * **cross-shard ranked reads** — `ShardManager::top_k_global(K)` over
//!   4 shards: per-shard `O(k)` partials merged by threshold. Reported
//!   unguarded (`global_topk_ns_per_op`).
//! * **grouped point reads** — `ShardManager::batch_get` (one pin per
//!   shard per batch) against the per-key loop it replaced. Reported
//!   unguarded (`batch_get_grouped_vs_perkey_gain`) — the pin/unpin pair
//!   dominates a point read, so grouping is a constant-factor win that
//!   sits near the guard's noise floor.
//!
//! Results land in `BENCH_query.json` (smoke: `target/bench-smoke/`,
//! gated by `perf_guard` against `ci/BENCH_query.smoke.json`).

use d2pr_core::engine::default_threads;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::{ServingEngine, ShardManager};
use d2pr_core::transition::TransitionModel;
use d2pr_experiments::evolving::churn_stream;
use d2pr_graph::generators::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::io::Write;
use std::time::Instant;

#[cfg(not(feature = "smoke"))]
const NODES: usize = 100_000;
#[cfg(feature = "smoke")]
const NODES: usize = 3_000;
const ATTACH: usize = 5;
#[cfg(not(feature = "smoke"))]
const BATCHES: usize = 16;
#[cfg(feature = "smoke")]
const BATCHES: usize = 4;
/// The ranked-read size: within the default index capacity (128), so the
/// indexed path answers every query.
const K: usize = 100;
/// Indexed reads per generation (cheap: `O(k)` each).
const TOPK_REPS: usize = 256;
/// Scan reads per generation (each pays `O(n log k)`).
#[cfg(not(feature = "smoke"))]
const SCAN_REPS: usize = 24;
#[cfg(feature = "smoke")]
const SCAN_REPS: usize = 64;
const SHARDS: usize = 4;
#[cfg(not(feature = "smoke"))]
const SHARD_NODES: usize = 20_000;
#[cfg(feature = "smoke")]
const SHARD_NODES: usize = 1_000;
const POINT_QUERIES: usize = 4_096;
const POINT_REPS: usize = 64;
const GLOBAL_REPS: usize = 128;
const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
const SEED: u64 = 0x5E21;

fn serving_config() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-6,
        max_iterations: 1_000,
        ..Default::default()
    }
}

/// Mean ns per call of `f` over `reps` calls.
fn time_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e9 / reps as f64
}

fn main() {
    let threads = default_threads();
    eprintln!("query_path: generating BA({NODES}, {ATTACH}) ...");
    let graph = barabasi_albert(NODES, ATTACH, SEED).expect("graph generates");
    let arcs = graph.num_arcs();
    // churn 0.0 => the sampler's floor: one delete plus one insert per
    // batch — the single-edge trickle regime.
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xD1CE);
    let batches = churn_stream(&graph, BATCHES, 0.0, &mut rng).expect("unweighted");

    let mut serving =
        ServingEngine::new(graph, MODEL, serving_config(), threads).expect("serving engine");
    let reader = serving.reader();
    let capacity = serving.top_k_capacity();
    assert!(K <= capacity, "K must ride the indexed path");

    // Ranked reads at every published generation: the initial solve, then
    // after each churn batch (repair and rebuild maintenance states both
    // occur along the stream). Parity is asserted before timing — a bench
    // that measured a wrong answer fast would be worse than useless.
    let mut indexed_ns = 0.0f64;
    let mut scan_ns = 0.0f64;
    let mut generations = 0u32;
    let mut measure = |reader: &d2pr_core::serving::ScoreReader| {
        assert_eq!(reader.top_k(K), reader.top_k_scan(K), "index/scan parity");
        indexed_ns += time_ns(TOPK_REPS, || reader.top_k(K));
        scan_ns += time_ns(SCAN_REPS, || reader.top_k_scan(K));
        generations += 1;
    };
    measure(&reader);
    for batch in &batches {
        let refresh = serving.ingest(batch).expect("refresh");
        assert!(refresh.converged);
        measure(&reader);
    }
    let indexed_ns = indexed_ns / generations as f64;
    let scan_ns = scan_ns / generations as f64;
    let speedup = scan_ns / indexed_ns.max(1e-9);

    // Cross-shard ranked reads + grouped point reads on a 4-shard manager.
    eprintln!("query_path: building {SHARDS} shards of BA({SHARD_NODES}, {ATTACH}) ...");
    let shard_graphs: Vec<_> = (0..SHARDS)
        .map(|s| barabasi_albert(SHARD_NODES, ATTACH, SEED + s as u64).expect("graph generates"))
        .collect();
    let manager = ShardManager::from_graphs(shard_graphs, MODEL, serving_config(), threads)
        .expect("shard manager");
    let global_ns = time_ns(GLOBAL_REPS, || manager.top_k_global(K));

    let mut node = 7u32;
    let queries: Vec<(u64, u32)> = (0..POINT_QUERIES)
        .map(|q| {
            node = node.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (q as u64, node % SHARD_NODES as u32)
        })
        .collect();
    let grouped_ns =
        time_ns(POINT_REPS, || manager.batch_get(&queries)) / POINT_QUERIES as f64;
    let per_key_ns = time_ns(POINT_REPS, || {
        queries
            .iter()
            .map(|&(key, node)| manager.get(key, node))
            .collect::<Vec<_>>()
    }) / POINT_QUERIES as f64;
    let gain = per_key_ns / grouped_ns.max(1e-9);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"query_path\",\n",
            "  \"graph\": {{\"generator\": \"barabasi_albert({}, {}, 0x5E21)\", ",
            "\"nodes\": {}, \"arcs\": {}}},\n",
            "  \"model\": \"DegreeDecoupled(p = 0.5)\",\n",
            "  \"tolerance\": 1e-6,\n",
            "  \"k\": {},\n",
            "  \"index_capacity\": {},\n",
            // Not "generations": perf_guard watches every key containing
            // the substring "ratio", which "generations" does.
            "  \"publish_points_measured\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"topk_indexed_ns_per_query\": {:.1},\n",
            "  \"topk_scan_ns_per_query\": {:.1},\n",
            "  \"indexed_topk_speedup_vs_scan\": {:.3},\n",
            "  \"global_topk\": {{\"shards\": {}, \"shard_nodes\": {}, ",
            "\"ns_per_op\": {:.1}}},\n",
            "  \"batch_get\": {{\"queries\": {}, \"grouped_ns_per_query\": {:.2}, ",
            "\"per_key_ns_per_query\": {:.2}}},\n",
            "  \"batch_get_grouped_vs_perkey_gain\": {:.3},\n",
            "  \"note\": \"Ranked reads against the maintained top-k index vs the ",
            "O(n log k) scan, re-measured at every published generation of a ",
            "single-edge churn stream with exact parity asserted first. ",
            "indexed_topk_speedup_vs_scan is the GUARDED key: a maintenance bug ",
            "that degrades ranked reads back to scan cost (or slows the indexed ",
            "copy) trips the ratio gate. global_topk times the 4-shard ",
            "scatter/gather threshold merge; batch_get compares the grouped ",
            "one-pin-per-shard batch read against the per-key pin loop it ",
            "replaced (unguarded: a constant-factor win near the noise floor).\"\n",
            "}}\n"
        ),
        NODES,
        ATTACH,
        NODES,
        arcs,
        K,
        capacity,
        generations,
        default_threads(),
        indexed_ns,
        scan_ns,
        speedup,
        SHARDS,
        SHARD_NODES,
        global_ns,
        POINT_QUERIES,
        grouped_ns,
        per_key_ns,
        gain,
    );

    let out = if cfg!(feature = "smoke") {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-smoke");
        std::fs::create_dir_all(&dir).expect("create bench-smoke dir");
        dir.join("BENCH_query.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query.json")
    };
    let mut f = std::fs::File::create(&out).expect("create BENCH_query.json");
    f.write_all(json.as_bytes()).expect("write BENCH_query.json");
    println!("wrote {}\n{json}", out.display());
    println!(
        "top_k({K}): indexed {indexed_ns:.0} ns vs scan {scan_ns:.0} ns ({speedup:.1}x); \
         global merge {global_ns:.0} ns; batch_get {grouped_ns:.1} ns/query \
         vs per-key {per_key_ns:.1} ns/query ({gain:.2}x)"
    );
}
