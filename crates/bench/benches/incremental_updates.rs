//! Incremental-update benchmark: the delta-CSR subsystem's acceptance run.
//!
//! Streams fixed sequences of edge-churn batches over a 100k-node / ~1M-arc
//! Barabási–Albert graph in two regimes — **bulk** (1% of the edges mutated
//! per batch) and **trickle** (one edge swapped per batch, the streaming
//! case) — and refreshes D2PR ranks after every batch three ways:
//!
//! * **seed_rebuild** — the non-incremental deployment the seed stack would
//!   run, faithful to PR 0 (and to `engine_p_sweep`'s baseline): rebuild
//!   the CSR from the full edge list through the builder, rebuild the
//!   transition matrix and its transpose, and solve from the teleport
//!   distribution with the seed parallel solver (node-count chunks, worker
//!   threads spawned every iteration, canonical 4 threads).
//! * **cold_engine** — fused-engine cold path: materialize the delta
//!   snapshot, rebuild the `CscStructure`, solve from the teleport
//!   distribution (with Aitken extrapolation).
//! * **warm_incremental** — the incremental path: materialize the snapshot
//!   from the delta overlay, *patch* the previous transpose with the
//!   batch's `ArcDelta` (`CscStructure::patched`), and re-solve
//!   warm-started from the previous rank vector
//!   (`Engine::resolve_incremental`).
//!
//! All strategies run the same model and tolerance and must agree on the
//! scores; both iteration counts and wall-clock per stream are recorded in
//! `BENCH_incremental.json`.
//!
//! **How to read the numbers.** The headline is the *refresh cost*: the
//! warm incremental pipeline refreshes ranks ≥3× faster (ms per stream)
//! than the seed rebuild deployment, because it replaces the builder-path
//! rebuild with an overlay merge, the transpose rebuild with a patch, and
//! a from-teleport solve with a warm-started one. The *iteration* ratio at
//! matched tolerance, by contrast, is information-bounded: a solver that
//! gains one error decade per `c` iterations needs
//! `log(err_start/tol)/log-rate` iterations, so the best possible ratio is
//! `log(err_cold/tol) / log(err_warm/tol)` — with a 1% churn batch
//! perturbing the ranks by ~1e-2 (L1) against a cold-start error of ~0.8
//! and tol 1e-8, that bound is ≈ 1.35, and the bench measures ≈ 1.3. Even
//! single-edge batches only reach ≈ 1.6 at 1e-8, because the extrapolated
//! cold solve already converges in ~24 iterations and every warm solve
//! pays a few startup iterations. The JSON records all of it; see
//! DESIGN.md ("Warm-start convergence contract") for the derivation, and
//! ROADMAP.md for the residual-push follow-up that could beat the bound on
//! trickle streams.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_core::engine::{default_threads, Engine};
use d2pr_core::pagerank::{PageRankConfig, PageRankResult};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction, NodeId};
use d2pr_graph::delta::{ArcDelta, DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use d2pr_graph::transpose::CscStructure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::io::Write;
use std::time::Duration;

const NODES: usize = 100_000;
const ATTACH: usize = 5;
const BATCHES: usize = 8;
const BULK_CHURN: f64 = 0.01;
const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
/// The thread count every call site in the seed repo hardcoded.
const SEED_CANONICAL_THREADS: usize = 4;

fn solver_config() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-8,
        max_iterations: 1_000,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Faithful port of the PR-0 ("seed") deployment, as in engine_p_sweep.
// ---------------------------------------------------------------------------

struct SeedTranspose {
    in_offsets: Vec<usize>,
    in_sources: Vec<u32>,
    in_probs: Vec<f64>,
    dangling: Vec<u32>,
    num_nodes: usize,
}

impl SeedTranspose {
    fn build(graph: &CsrGraph, matrix: &TransitionMatrix) -> Self {
        let n = graph.num_nodes();
        let (offsets, targets, _) = graph.parts();
        let probs = matrix.arc_probs();
        let mut counts = vec![0usize; n + 1];
        for &t in targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let in_offsets = counts.clone();
        let mut cursor = counts;
        let mut in_sources = vec![0u32; targets.len()];
        let mut in_probs = vec![0.0f64; targets.len()];
        for v in 0..n {
            for k in offsets[v]..offsets[v + 1] {
                let t = targets[k] as usize;
                let slot = cursor[t];
                cursor[t] += 1;
                in_sources[slot] = v as u32;
                in_probs[slot] = probs[k];
            }
        }
        let dangling = (0..n as u32)
            .filter(|&v| offsets[v as usize] == offsets[v as usize + 1])
            .collect();
        Self {
            in_offsets,
            in_sources,
            in_probs,
            dangling,
            num_nodes: n,
        }
    }
}

/// The PR-0 iteration scheme: node-count chunks, threads spawned every
/// iteration.
fn pagerank_parallel_seed(
    transpose: &SeedTranspose,
    config: &PageRankConfig,
    num_threads: usize,
) -> PageRankResult {
    let n = transpose.num_nodes;
    let threads = num_threads.clamp(1, n.max(1));
    let uniform = 1.0 / n as f64;
    let alpha = config.alpha;
    let mut rank: Vec<f64> = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let chunk = n.div_ceil(threads);

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < config.max_iterations {
        iterations += 1;
        let dangling_mass: f64 = transpose.dangling.iter().map(|&v| rank[v as usize]).sum();
        let rank_ref = &rank;
        let residuals: Vec<f64> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (ci, slice) in next.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                let in_offsets = &transpose.in_offsets;
                let in_sources = &transpose.in_sources;
                let in_probs = &transpose.in_probs;
                handles.push(scope.spawn(move || {
                    let mut local_residual = 0.0;
                    for (off, slot) in slice.iter_mut().enumerate() {
                        let j = start + off;
                        let mut acc = (1.0 - alpha) * uniform + alpha * dangling_mass * uniform;
                        for k in in_offsets[j]..in_offsets[j + 1] {
                            acc += alpha * in_probs[k] * rank_ref[in_sources[k] as usize];
                        }
                        local_residual += (acc - rank_ref[j]).abs();
                        *slot = acc;
                    }
                    local_residual
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        residual = residuals.iter().sum();
        std::mem::swap(&mut rank, &mut next);
        if residual < config.tolerance {
            break;
        }
    }
    PageRankResult {
        scores: rank,
        iterations,
        residual,
        converged: residual < config.tolerance,
    }
}

// ---------------------------------------------------------------------------
// Deterministic churn streams
// ---------------------------------------------------------------------------

/// The precomputed churn stream: per batch, the post-batch snapshot, the
/// effective arc delta, and the post-batch edge list.
struct Stream {
    snapshots: Vec<CsrGraph>,
    deltas: Vec<ArcDelta>,
    edge_lists: Vec<Vec<(NodeId, NodeId)>>,
    compactions: usize,
    /// Logical edges changed per batch (inserts + deletes).
    edges_changed_per_batch: usize,
}

/// Simulate a batch stream once, deterministically, so every measured mode
/// replays identical updates. `edges_per_batch` = edge mutations per batch
/// (half deletions, half insertions; minimum one of each).
fn build_stream(initial: &CsrGraph, edges_per_batch: usize, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = initial.arcs().filter(|&(u, v)| u < v).collect();
    let mut dg = DeltaGraph::new(initial.clone()).expect("unweighted base");
    let mut snapshots = Vec::with_capacity(BATCHES);
    let mut deltas = Vec::with_capacity(BATCHES);
    let mut edge_lists = Vec::with_capacity(BATCHES);
    let mut compactions = 0;
    let n = NODES as u32;
    let mutations = edges_per_batch.max(2);
    for _ in 0..BATCHES {
        let deletes = mutations / 2;
        let mut batch = EdgeBatch::new();
        for _ in 0..deletes {
            let i = rng.gen_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            batch.delete(u, v);
        }
        for _ in 0..(mutations - deletes) {
            loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                let e = (u.min(v), u.max(v));
                if u != v && !dg.has_arc(e.0, e.1) && !batch.inserts.contains(&e) {
                    batch.insert(e.0, e.1);
                    edges.push(e);
                    break;
                }
            }
        }
        let outcome = dg.apply_batch(&batch).expect("in-range batch");
        compactions += outcome.compacted as usize;
        snapshots.push(dg.snapshot());
        deltas.push(outcome.delta);
        edge_lists.push(edges.clone());
    }
    Stream {
        snapshots,
        deltas,
        edge_lists,
        compactions,
        edges_changed_per_batch: mutations,
    }
}

// ---------------------------------------------------------------------------
// The three refresh strategies
// ---------------------------------------------------------------------------

/// Seed deployment: full builder rebuild + matrix + transpose + seed
/// parallel solve from the teleport distribution, per batch.
fn seed_rebuild(stream: &Stream, config: &PageRankConfig) -> (usize, Vec<Vec<f64>>) {
    let mut iterations = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    for edges in &stream.edge_lists {
        let mut b = GraphBuilder::new(Direction::Undirected, NODES);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        let matrix = TransitionMatrix::build(&g, MODEL);
        let transpose = SeedTranspose::build(&g, &matrix);
        let r = pagerank_parallel_seed(&transpose, config, SEED_CANONICAL_THREADS);
        assert!(r.converged, "seed baseline must converge");
        iterations += r.iterations;
        scores.push(r.scores);
    }
    (iterations, scores)
}

/// Engine cold path: fresh `CscStructure` per batch, teleport start.
fn cold_engine(stream: &Stream, config: &PageRankConfig, threads: usize) -> (usize, Vec<Vec<f64>>) {
    let mut iterations = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    for snap in &stream.snapshots {
        let mut engine = Engine::with_threads(snap, threads)
            .with_config(*config)
            .expect("valid config");
        let r = engine.solve_model(MODEL).expect("valid model");
        assert!(r.converged, "cold engine must converge");
        iterations += r.iterations;
        scores.push(r.scores);
    }
    (iterations, scores)
}

/// The incremental path: patched transpose + warm-started re-solve.
/// `csc0`/`scores0` come from the pre-stream solve of the initial graph.
fn warm_incremental(
    stream: &Stream,
    config: &PageRankConfig,
    threads: usize,
    csc0: &CscStructure,
    scores0: &[f64],
) -> (usize, Vec<Vec<f64>>) {
    let mut iterations = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    let mut csc = csc0.clone();
    let mut prev = scores0.to_vec();
    for (snap, delta) in stream.snapshots.iter().zip(&stream.deltas) {
        let patched = csc.patched(snap, delta).expect("consistent delta");
        let mut engine = Engine::with_structure(snap, patched, threads)
            .expect("structure matches snapshot")
            .with_config(*config)
            .expect("valid config");
        engine.set_model(MODEL).expect("valid model");
        let r = engine.resolve_incremental(&prev).expect("valid warm start");
        assert!(r.converged, "warm re-solve must converge");
        iterations += r.iterations;
        prev = r.scores.clone();
        scores.push(r.scores);
        csc = engine.into_structure();
    }
    (iterations, scores)
}

fn max_l1(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Per-regime measurement record.
struct RegimeResult {
    edges_changed_per_batch: usize,
    compactions: usize,
    iters_seed: usize,
    iters_cold: usize,
    iters_warm: usize,
    seed_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    max_divergence: f64,
}

fn run_regime(
    c: &mut Criterion,
    label: &str,
    stream: &Stream,
    config: &PageRankConfig,
    threads: usize,
    csc0: &CscStructure,
    scores0: &[f64],
) -> RegimeResult {
    // Iteration accounting + cross-strategy agreement, measured once.
    let (iters_seed, scores_seed) = seed_rebuild(stream, config);
    let (iters_cold, scores_cold) = cold_engine(stream, config, threads);
    let (iters_warm, scores_warm) = warm_incremental(stream, config, threads, csc0, scores0);
    let divergence = max_l1(&scores_warm, &scores_seed).max(max_l1(&scores_warm, &scores_cold));
    assert!(divergence < 1e-6, "strategies disagree: {divergence:.2e}");
    println!(
        "{label}: iterations over {BATCHES} batches: seed_rebuild {iters_seed}, \
         cold_engine {iters_cold}, warm_incremental {iters_warm}"
    );

    let seed_name = format!("{label}/seed_rebuild");
    let cold_name = format!("{label}/cold_engine");
    let warm_name = format!("{label}/warm_incremental");
    let mut group = c.benchmark_group("incremental_updates");
    group
        .sample_size(3)
        .measurement_time(Duration::from_secs(30));
    group.bench_function(seed_name.as_str(), |b| {
        b.iter(|| black_box(seed_rebuild(black_box(stream), config)))
    });
    group.bench_function(cold_name.as_str(), |b| {
        b.iter(|| black_box(cold_engine(black_box(stream), config, threads)))
    });
    group.bench_function(warm_name.as_str(), |b| {
        b.iter(|| {
            black_box(warm_incremental(
                black_box(stream),
                config,
                threads,
                csc0,
                scores0,
            ))
        })
    });
    group.finish();
    let ms = |name: &str| c.mean_of(name).expect("measured").as_secs_f64() * 1e3;
    RegimeResult {
        edges_changed_per_batch: stream.edges_changed_per_batch,
        compactions: stream.compactions,
        iters_seed,
        iters_cold,
        iters_warm,
        seed_ms: ms(&seed_name),
        cold_ms: ms(&cold_name),
        warm_ms: ms(&warm_name),
        max_divergence: divergence,
    }
}

fn regime_json(r: &RegimeResult) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"edges_changed_per_batch\": {},\n",
            "    \"overlay_compactions\": {},\n",
            "    \"iterations\": {{\"seed_rebuild\": {}, \"cold_engine\": {}, ",
            "\"warm_incremental\": {}}},\n",
            "    \"iteration_ratio_warm_vs_seed_rebuild\": {:.2},\n",
            "    \"iteration_ratio_warm_vs_cold_engine\": {:.2},\n",
            "    \"seed_rebuild_ms\": {:.2},\n",
            "    \"cold_engine_ms\": {:.2},\n",
            "    \"warm_incremental_ms\": {:.2},\n",
            "    \"refresh_speedup_warm_vs_seed_rebuild\": {:.3},\n",
            "    \"refresh_speedup_warm_vs_cold_engine\": {:.3},\n",
            "    \"max_l1_divergence\": {:.3e}\n",
            "  }}"
        ),
        r.edges_changed_per_batch,
        r.compactions,
        r.iters_seed,
        r.iters_cold,
        r.iters_warm,
        r.iters_seed as f64 / r.iters_warm as f64,
        r.iters_cold as f64 / r.iters_warm as f64,
        r.seed_ms,
        r.cold_ms,
        r.warm_ms,
        r.seed_ms / r.warm_ms,
        r.cold_ms / r.warm_ms,
        r.max_divergence,
    )
}

fn incremental_updates(c: &mut Criterion) {
    let initial = barabasi_albert(NODES, ATTACH, 0xD2).expect("generator succeeds");
    let threads = default_threads();
    let config = solver_config();
    let initial_edges = initial.num_edges();
    println!(
        "graph: {} nodes, {} arcs initially, {} batches per regime, {} threads",
        NODES,
        initial.num_arcs(),
        BATCHES,
        threads
    );

    let bulk = build_stream(
        &initial,
        (BULK_CHURN * initial_edges as f64).round() as usize,
        0x1C4E,
    );
    let trickle = build_stream(&initial, 2, 0x7B1C);

    // Pre-stream solve: the serving system is warm before the first batch
    // arrives (identical cost for every strategy, so it is not measured).
    let csc0 = CscStructure::build(&initial);
    let mut engine0 = Engine::with_structure(&initial, csc0.clone(), threads)
        .expect("fresh structure")
        .with_config(config)
        .expect("valid config");
    let scores0 = engine0.solve_model(MODEL).expect("initial solve").scores;
    drop(engine0);

    let bulk_r = run_regime(c, "bulk", &bulk, &config, threads, &csc0, &scores0);
    let trickle_r = run_regime(c, "trickle", &trickle, &config, threads, &csc0, &scores0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"incremental_updates\",\n",
            "  \"graph\": {{\"generator\": \"barabasi_albert(100000, 5, 0xD2)\", ",
            "\"nodes\": {}, \"arcs\": {}}},\n",
            "  \"model\": \"DegreeDecoupled(p = 0.5)\",\n",
            "  \"tolerance\": {:e},\n",
            "  \"batches_per_regime\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"bulk_1pct_churn\": {},\n",
            "  \"trickle_single_edge\": {},\n",
            "  \"note\": \"Refresh speedup (ms) is the headline: the incremental pipeline ",
            "(overlay merge + patched transpose + warm-started solve) vs the seed rebuild ",
            "deployment. Iteration ratios at matched tolerance are information-bounded at ",
            "log(err_cold/tol)/log(err_warm/tol) -- about 1.35 for 1% churn at 1e-8 -- ",
            "because the warm solve must still re-earn every error decade the batch ",
            "destroyed; see DESIGN.md (warm-start convergence contract).\"\n",
            "}}\n"
        ),
        NODES,
        initial.num_arcs(),
        config.tolerance,
        BATCHES,
        default_threads(),
        threads,
        regime_json(&bulk_r),
        regime_json(&trickle_r),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_incremental.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_incremental.json");
    println!(
        "wrote {} (bulk refresh: {:.2}x faster than seed rebuild, {:.2}x fewer iterations; \
         trickle: {:.2}x faster, {:.2}x fewer iterations)",
        out.display(),
        bulk_r.seed_ms / bulk_r.warm_ms,
        bulk_r.iters_seed as f64 / bulk_r.iters_warm as f64,
        trickle_r.seed_ms / trickle_r.warm_ms,
        trickle_r.iters_seed as f64 / trickle_r.iters_warm as f64,
    );
}

criterion_group!(benches, incremental_updates);
criterion_main!(benches);
