//! Incremental-update benchmark: the incremental-serving acceptance run.
//!
//! Streams fixed sequences of edge-churn batches over a 100k-node / ~1M-arc
//! Barabási–Albert graph in four regimes — **bulk** (1% of the edges
//! mutated per batch, tol 1e-8), **trickle** (one edge swapped per batch,
//! tol 1e-8), **trickle at the serving tolerance** (1e-6, the evolving
//! scenario's default), and **weighted trickle** (two existing edges
//! re-weighted to new half-star ratings per batch on a weighted base under
//! the paper's Blended β = 0.5 model — the pure re-weight channel, whose
//! localized refresh reconstructs the pre-batch β>0 operator columns from
//! the delta's old weights) — and refreshes D2PR ranks after every batch
//! four ways:
//!
//! * **seed_rebuild** — the non-incremental deployment the seed stack would
//!   run, faithful to PR 0 (and to `engine_p_sweep`'s baseline): rebuild
//!   the CSR from the full edge list through the builder, rebuild the
//!   transition matrix and its transpose, and solve from the teleport
//!   distribution with the seed parallel solver (node-count chunks, worker
//!   threads spawned every iteration, canonical 4 threads).
//! * **cold_engine** — fused-engine cold path: materialize the delta
//!   snapshot, rebuild the `CscStructure`, solve from the teleport
//!   distribution (with Aitken extrapolation).
//! * **warm_incremental** — the PR-2 incremental path: full transpose
//!   patch (`CscStructure::patched`), engine rebuild, `O(E)` operator
//!   build, warm-started full sweep (`Engine::resolve_warm`).
//! * **localized_incremental** — the PR-3 serving pipeline: engine-state
//!   handoff (`EngineState::patched` — structurally patched transpose,
//!   frontier-patched factored operator) plus the auto-selected
//!   residual-localized push (`Engine::resolve_incremental`).
//!
//! All strategies run the same model and tolerance and must agree on the
//! scores; iteration/push counts, per-batch strategy choices, and
//! wall-clock per stream are recorded in `BENCH_incremental.json`.
//!
//! **How to read the numbers.** On bulk churn the auto mode must choose
//! the warm sweep (localized ≈ warm, no regression). On trickle at 1e-8
//! the localized path wins its concentrated decades by pushing and hands
//! the graph-wide residual tail to the sweep finisher (hybrid mode) —
//! measured ≈ 2.2× over the warm pipeline, bounded by the α-decay of
//! spread residual mass (DESIGN.md, "Residual-localized refresh", the
//! successor of the PR-2 warm-start iteration bound). At the 1e-6 serving
//! tolerance the push drains the entire residual locally: single-edge
//! refreshes run in low-single-digit milliseconds, ≈ 7.6× faster than the
//! warm pipeline and ≈ 48× faster than the seed rebuild deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use d2pr_bench::{axis_json, report_ms, thread_axis};
use d2pr_core::engine::{default_threads, Engine, ResolveMode};
use d2pr_core::pagerank::{PageRankConfig, PageRankResult};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction, NodeId};
use d2pr_graph::delta::{ArcDelta, DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use d2pr_graph::transpose::CscStructure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

#[cfg(not(feature = "smoke"))]
const NODES: usize = 100_000;
/// The `smoke` feature shrinks the bench to a seconds-scale CI run (small
/// graph, one batch per regime) that exercises every strategy end-to-end
/// without overwriting the committed BENCH_incremental.json.
#[cfg(feature = "smoke")]
const NODES: usize = 3_000;
const ATTACH: usize = 5;
#[cfg(not(feature = "smoke"))]
const BATCHES: usize = 8;
#[cfg(feature = "smoke")]
const BATCHES: usize = 1;
const BULK_CHURN: f64 = 0.01;
const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
/// The thread count every call site in the seed repo hardcoded.
const SEED_CANONICAL_THREADS: usize = 4;

fn solver_config() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-8,
        max_iterations: 1_000,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Faithful port of the PR-0 ("seed") deployment, as in engine_p_sweep.
// ---------------------------------------------------------------------------

struct SeedTranspose {
    in_offsets: Vec<usize>,
    in_sources: Vec<u32>,
    in_probs: Vec<f64>,
    dangling: Vec<u32>,
    num_nodes: usize,
}

impl SeedTranspose {
    fn build(graph: &CsrGraph, matrix: &TransitionMatrix) -> Self {
        let n = graph.num_nodes();
        let (offsets, targets, _) = graph.parts();
        let probs = matrix.arc_probs();
        let mut counts = vec![0usize; n + 1];
        for &t in targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let in_offsets = counts.clone();
        let mut cursor = counts;
        let mut in_sources = vec![0u32; targets.len()];
        let mut in_probs = vec![0.0f64; targets.len()];
        for v in 0..n {
            for k in offsets[v]..offsets[v + 1] {
                let t = targets[k] as usize;
                let slot = cursor[t];
                cursor[t] += 1;
                in_sources[slot] = v as u32;
                in_probs[slot] = probs[k];
            }
        }
        let dangling = (0..n as u32)
            .filter(|&v| offsets[v as usize] == offsets[v as usize + 1])
            .collect();
        Self {
            in_offsets,
            in_sources,
            in_probs,
            dangling,
            num_nodes: n,
        }
    }
}

/// The PR-0 iteration scheme: node-count chunks, threads spawned every
/// iteration.
fn pagerank_parallel_seed(
    transpose: &SeedTranspose,
    config: &PageRankConfig,
    num_threads: usize,
) -> PageRankResult {
    let n = transpose.num_nodes;
    let threads = num_threads.clamp(1, n.max(1));
    let uniform = 1.0 / n as f64;
    let alpha = config.alpha;
    let mut rank: Vec<f64> = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let chunk = n.div_ceil(threads);

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < config.max_iterations {
        iterations += 1;
        let dangling_mass: f64 = transpose.dangling.iter().map(|&v| rank[v as usize]).sum();
        let rank_ref = &rank;
        let residuals: Vec<f64> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (ci, slice) in next.chunks_mut(chunk).enumerate() {
                let start = ci * chunk;
                let in_offsets = &transpose.in_offsets;
                let in_sources = &transpose.in_sources;
                let in_probs = &transpose.in_probs;
                handles.push(scope.spawn(move || {
                    let mut local_residual = 0.0;
                    for (off, slot) in slice.iter_mut().enumerate() {
                        let j = start + off;
                        let mut acc = (1.0 - alpha) * uniform + alpha * dangling_mass * uniform;
                        for k in in_offsets[j]..in_offsets[j + 1] {
                            acc += alpha * in_probs[k] * rank_ref[in_sources[k] as usize];
                        }
                        local_residual += (acc - rank_ref[j]).abs();
                        *slot = acc;
                    }
                    local_residual
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        residual = residuals.iter().sum();
        std::mem::swap(&mut rank, &mut next);
        if residual < config.tolerance {
            break;
        }
    }
    PageRankResult {
        scores: rank,
        iterations,
        residual,
        converged: residual < config.tolerance,
    }
}

// ---------------------------------------------------------------------------
// Deterministic churn streams
// ---------------------------------------------------------------------------

/// The precomputed churn stream: per batch, the post-batch snapshot, the
/// effective arc delta, and the post-batch edge list.
struct Stream {
    /// The pre-stream graph every strategy starts from.
    initial: CsrGraph,
    snapshots: Vec<CsrGraph>,
    deltas: Vec<ArcDelta>,
    edge_lists: Vec<Vec<(NodeId, NodeId, f64)>>,
    /// Whether the edge lists carry real weights (the seed rebuild then
    /// goes through the weighted builder path).
    weighted: bool,
    compactions: usize,
    /// Logical edges changed per batch (inserts + deletes + re-weights).
    edges_changed_per_batch: usize,
}

/// Simulate a batch stream once, deterministically, so every measured mode
/// replays identical updates. `edges_per_batch` = edge mutations per batch
/// (half deletions, half insertions; minimum one of each).
fn build_stream(initial: &CsrGraph, edges_per_batch: usize, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId, f64)> = initial
        .arcs()
        .filter(|&(u, v)| u < v)
        .map(|(u, v)| (u, v, 1.0))
        .collect();
    let mut dg = DeltaGraph::new(initial.clone()).expect("unweighted base");
    let mut snapshots = Vec::with_capacity(BATCHES);
    let mut deltas = Vec::with_capacity(BATCHES);
    let mut edge_lists = Vec::with_capacity(BATCHES);
    let mut compactions = 0;
    let n = NODES as u32;
    let mutations = edges_per_batch.max(2);
    for _ in 0..BATCHES {
        let deletes = mutations / 2;
        let mut batch = EdgeBatch::new();
        for _ in 0..deletes {
            let i = rng.gen_range(0..edges.len());
            let (u, v, _) = edges.swap_remove(i);
            batch.delete(u, v);
        }
        for _ in 0..(mutations - deletes) {
            loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                let e = (u.min(v), u.max(v));
                if u != v && !dg.has_arc(e.0, e.1) && !batch.inserts.contains(&e) {
                    batch.insert(e.0, e.1);
                    edges.push((e.0, e.1, 1.0));
                    break;
                }
            }
        }
        let outcome = dg.apply_batch(&batch).expect("in-range batch");
        compactions += outcome.compacted as usize;
        snapshots.push(dg.snapshot());
        deltas.push(outcome.delta);
        edge_lists.push(edges.clone());
    }
    Stream {
        initial: initial.clone(),
        snapshots,
        deltas,
        edge_lists,
        weighted: false,
        compactions,
        edges_changed_per_batch: mutations,
    }
}

/// The weighted world: the same BA topology re-built with deterministic
/// half-star weights (1.0–5.0) — the ratings shape the evolving scenario
/// serves under the paper's Blended model.
fn build_weighted_initial(seed: u64) -> CsrGraph {
    let base = barabasi_albert(NODES, ATTACH, seed).expect("generator succeeds");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57A5);
    let mut b = GraphBuilder::new(Direction::Undirected, NODES);
    for (u, v) in base.arcs().filter(|&(u, v)| u < v) {
        let stars = 1.0 + 0.5 * f64::from(rng.gen_range(0..9u32));
        b.add_weighted_edge(u, v, stars);
    }
    b.build().expect("in-range edges")
}

/// Weighted trickle: per batch, two existing edges get fresh half-star
/// weights ([`EdgeBatch::set_weight`]) — the pure re-weight channel, no
/// structural change at all. The delta carries `(old, new)` per arc, so
/// the localized path reconstructs the pre-batch β>0 operator columns
/// exactly instead of falling back to a sweep.
fn build_weighted_stream(initial: &CsrGraph, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId, f64)> =
        initial.weighted_arcs().filter(|&(u, v, _)| u < v).collect();
    let mut dg = DeltaGraph::new(initial.clone()).expect("weighted base");
    let mut snapshots = Vec::with_capacity(BATCHES);
    let mut deltas = Vec::with_capacity(BATCHES);
    let mut edge_lists = Vec::with_capacity(BATCHES);
    let mut compactions = 0;
    const MUTATIONS: usize = 2;
    for _ in 0..BATCHES {
        let mut batch = EdgeBatch::new();
        for _ in 0..MUTATIONS {
            let i = rng.gen_range(0..edges.len());
            let (u, v, old) = edges[i];
            // A guaranteed-different half-star rating.
            let mut stars = 1.0 + 0.5 * f64::from(rng.gen_range(0..9u32));
            if stars == old {
                stars = if old >= 5.0 { 0.5 } else { old + 0.5 };
            }
            batch.set_weight(u, v, stars);
            edges[i].2 = stars;
        }
        let outcome = dg.apply_batch(&batch).expect("in-range batch");
        compactions += outcome.compacted as usize;
        snapshots.push(dg.snapshot());
        deltas.push(outcome.delta);
        edge_lists.push(edges.clone());
    }
    Stream {
        initial: initial.clone(),
        snapshots,
        deltas,
        edge_lists,
        weighted: true,
        compactions,
        edges_changed_per_batch: MUTATIONS,
    }
}

// ---------------------------------------------------------------------------
// The three refresh strategies
// ---------------------------------------------------------------------------

/// Seed deployment: full builder rebuild + matrix + transpose + seed
/// parallel solve from the teleport distribution, per batch.
fn seed_rebuild(
    stream: &Stream,
    config: &PageRankConfig,
    model: TransitionModel,
) -> (usize, Vec<Vec<f64>>) {
    let mut iterations = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    for edges in &stream.edge_lists {
        let mut b = GraphBuilder::new(Direction::Undirected, NODES);
        for &(u, v, w) in edges {
            if stream.weighted {
                b.add_weighted_edge(u, v, w);
            } else {
                b.add_edge(u, v);
            }
        }
        let g = b.build().expect("in-range edges");
        let matrix = TransitionMatrix::build(&g, model);
        let transpose = SeedTranspose::build(&g, &matrix);
        let r = pagerank_parallel_seed(&transpose, config, SEED_CANONICAL_THREADS);
        assert!(r.converged, "seed baseline must converge");
        iterations += r.iterations;
        scores.push(r.scores);
    }
    (iterations, scores)
}

/// Engine cold path: fresh `CscStructure` per batch, teleport start.
fn cold_engine(
    stream: &Stream,
    config: &PageRankConfig,
    threads: usize,
    model: TransitionModel,
) -> (usize, Vec<Vec<f64>>) {
    let mut iterations = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    for snap in &stream.snapshots {
        let mut engine = Engine::with_threads(snap, threads)
            .with_config(*config)
            .expect("valid config");
        let r = engine.solve_model(model).expect("valid model");
        assert!(r.converged, "cold engine must converge");
        iterations += r.iterations;
        scores.push(r.scores);
    }
    (iterations, scores)
}

/// The incremental path: patched transpose + warm-started re-solve.
/// `csc0`/`scores0` come from the pre-stream solve of the initial graph.
fn warm_incremental(
    stream: &Stream,
    config: &PageRankConfig,
    threads: usize,
    model: TransitionModel,
    csc0: &CscStructure,
    scores0: &[f64],
) -> (usize, Vec<Vec<f64>>) {
    let mut iterations = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    let mut csc = Arc::new(csc0.clone());
    let mut prev = scores0.to_vec();
    for (snap, delta) in stream.snapshots.iter().zip(&stream.deltas) {
        let patched = Arc::new(csc.patched(snap, delta).expect("consistent delta"));
        let mut engine = Engine::with_structure(snap, patched, threads)
            .expect("structure matches snapshot")
            .with_config(*config)
            .expect("valid config");
        engine.set_model(model).expect("valid model");
        let r = engine.resolve_warm(&prev).expect("valid warm start");
        assert!(r.converged, "warm re-solve must converge");
        iterations += r.iterations;
        prev = r.scores.clone();
        scores.push(r.scores);
        csc = engine.into_structure();
    }
    (iterations, scores)
}

/// The residual-localized serving pipeline (PR 3): carry the engine state
/// across batches ([`Engine::into_state`]/[`EngineState::patched`] — the
/// transpose is patched *structurally*, no `O(E)` permutation rebuild, and
/// the factored operator is repaired only at the delta's frontier), then
/// auto-select localized push vs warm sweep per batch
/// (`Engine::resolve_incremental`).
fn localized_incremental(
    stream: &Stream,
    config: &PageRankConfig,
    threads: usize,
    model: TransitionModel,
    csc0: &CscStructure,
    scores0: &[f64],
) -> (usize, Vec<Vec<f64>>, Vec<ResolveMode>) {
    let mut pushes_or_iters = 0;
    let mut scores = Vec::with_capacity(BATCHES);
    let mut modes = Vec::with_capacity(BATCHES);
    let mut prev = scores0.to_vec();
    // Seed the serving state from a throwaway engine over the pre-stream
    // graph (outside the measured region the cost is identical for every
    // strategy; inside the loop only `patched` + `from_state` are paid).
    let initial = &stream.initial;
    let mut engine0 = Engine::with_structure(initial, Arc::new(csc0.clone()), threads)
        .expect("fresh structure")
        .with_config(*config)
        .expect("valid config");
    engine0.set_model(model).expect("valid model");
    let mut state = engine0.into_state();
    for (snap, delta) in stream.snapshots.iter().zip(&stream.deltas) {
        state = state.patched(snap, delta).expect("consistent delta");
        let mut engine = Engine::from_state(snap, state).expect("state matches snapshot");
        let out = engine
            .resolve_incremental(&prev, delta)
            .expect("valid warm start");
        assert!(out.result.converged, "localized re-solve must converge");
        pushes_or_iters += out.result.iterations;
        modes.push(out.mode);
        prev = out.result.scores.clone();
        scores.push(out.result.scores);
        state = engine.into_state();
    }
    (pushes_or_iters, scores, modes)
}

fn max_l1(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Per-regime measurement record.
struct RegimeResult {
    edges_changed_per_batch: usize,
    compactions: usize,
    iters_seed: usize,
    iters_cold: usize,
    iters_warm: usize,
    /// Iterations (sweep batches) or pushes (localized batches).
    work_localized: usize,
    /// Per-batch strategies the auto mode actually chose.
    localized_modes: Vec<ResolveMode>,
    seed_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    localized_ms: f64,
    max_divergence: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_regime(
    c: &mut Criterion,
    label: &str,
    stream: &Stream,
    config: &PageRankConfig,
    threads: usize,
    model: TransitionModel,
    csc0: &CscStructure,
    scores0: &[f64],
) -> RegimeResult {
    // Iteration accounting + cross-strategy agreement, measured once.
    let (iters_seed, scores_seed) = seed_rebuild(stream, config, model);
    let (iters_cold, scores_cold) = cold_engine(stream, config, threads, model);
    let (iters_warm, scores_warm) = warm_incremental(stream, config, threads, model, csc0, scores0);
    let (work_localized, scores_localized, localized_modes) =
        localized_incremental(stream, config, threads, model, csc0, scores0);
    let divergence = max_l1(&scores_warm, &scores_seed)
        .max(max_l1(&scores_warm, &scores_cold))
        .max(max_l1(&scores_localized, &scores_cold));
    assert!(
        divergence < config.tolerance * 100.0,
        "strategies disagree: {divergence:.2e}"
    );
    // The acceptance bound: at 1e-8 the localized path must stay within
    // 1e-7 (L1) of the cold solve.
    let localized_divergence = max_l1(&scores_localized, &scores_cold);
    assert!(
        localized_divergence < config.tolerance * 10.0,
        "localized path must track the cold solve: {localized_divergence:.2e}"
    );
    println!(
        "{label}: iterations over {BATCHES} batches: seed_rebuild {iters_seed}, \
         cold_engine {iters_cold}, warm_incremental {iters_warm}; localized modes {localized_modes:?}"
    );

    let seed_name = format!("{label}/seed_rebuild");
    let cold_name = format!("{label}/cold_engine");
    let warm_name = format!("{label}/warm_incremental");
    let localized_name = format!("{label}/localized_incremental");
    let mut group = c.benchmark_group("incremental_updates");
    if cfg!(feature = "smoke") {
        // Enough samples that the perf-guard's ratio gate is not at the
        // mercy of one noisy measurement on a shared CI runner.
        group
            .sample_size(5)
            .measurement_time(Duration::from_secs(3));
    } else {
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(30));
    }
    group.bench_function(seed_name.as_str(), |b| {
        b.iter(|| black_box(seed_rebuild(black_box(stream), config, model)))
    });
    group.bench_function(cold_name.as_str(), |b| {
        b.iter(|| black_box(cold_engine(black_box(stream), config, threads, model)))
    });
    group.bench_function(warm_name.as_str(), |b| {
        b.iter(|| {
            black_box(warm_incremental(
                black_box(stream),
                config,
                threads,
                model,
                csc0,
                scores0,
            ))
        })
    });
    group.bench_function(localized_name.as_str(), |b| {
        b.iter(|| {
            black_box(localized_incremental(
                black_box(stream),
                config,
                threads,
                model,
                csc0,
                scores0,
            ))
        })
    });
    group.finish();
    let ms = |name: &str| report_ms(c, name);
    RegimeResult {
        edges_changed_per_batch: stream.edges_changed_per_batch,
        compactions: stream.compactions,
        iters_seed,
        iters_cold,
        iters_warm,
        work_localized,
        localized_modes,
        seed_ms: ms(&seed_name),
        cold_ms: ms(&cold_name),
        warm_ms: ms(&warm_name),
        localized_ms: ms(&localized_name),
        max_divergence: divergence,
    }
}

fn regime_json(r: &RegimeResult) -> String {
    let modes: Vec<String> = r
        .localized_modes
        .iter()
        .map(|m| {
            format!(
                "\"{}\"",
                match m {
                    ResolveMode::WarmSweep => "sweep",
                    ResolveMode::LocalizedPush => "push",
                    ResolveMode::HybridPushSweep => "hybrid",
                    ResolveMode::DenseGaussSeidel => "gs",
                }
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "    \"edges_changed_per_batch\": {},\n",
            "    \"overlay_compactions\": {},\n",
            "    \"iterations\": {{\"seed_rebuild\": {}, \"cold_engine\": {}, ",
            "\"warm_incremental\": {}}},\n",
            "    \"localized_pushes_or_iterations\": {},\n",
            "    \"localized_modes\": [{}],\n",
            "    \"iteration_ratio_warm_vs_seed_rebuild\": {:.2},\n",
            "    \"iteration_ratio_warm_vs_cold_engine\": {:.2},\n",
            "    \"seed_rebuild_ms\": {:.2},\n",
            "    \"cold_engine_ms\": {:.2},\n",
            "    \"warm_incremental_ms\": {:.2},\n",
            "    \"localized_incremental_ms\": {:.2},\n",
            "    \"refresh_speedup_warm_vs_seed_rebuild\": {:.3},\n",
            "    \"refresh_speedup_warm_vs_cold_engine\": {:.3},\n",
            "    \"refresh_speedup_localized_vs_warm\": {:.3},\n",
            "    \"refresh_speedup_localized_vs_seed_rebuild\": {:.3},\n",
            "    \"max_l1_divergence\": {:.3e}\n",
            "  }}"
        ),
        r.edges_changed_per_batch,
        r.compactions,
        r.iters_seed,
        r.iters_cold,
        r.iters_warm,
        r.work_localized,
        modes.join(", "),
        r.iters_seed as f64 / r.iters_warm as f64,
        r.iters_cold as f64 / r.iters_warm as f64,
        r.seed_ms,
        r.cold_ms,
        r.warm_ms,
        r.localized_ms,
        r.seed_ms / r.warm_ms,
        r.cold_ms / r.warm_ms,
        r.warm_ms / r.localized_ms,
        r.seed_ms / r.localized_ms,
        r.max_divergence,
    )
}

fn incremental_updates(c: &mut Criterion) {
    let initial = barabasi_albert(NODES, ATTACH, 0xD2).expect("generator succeeds");
    let threads = default_threads();
    let config = solver_config();
    let initial_edges = initial.num_edges();
    println!(
        "graph: {} nodes, {} arcs initially, {} batches per regime, {} threads",
        NODES,
        initial.num_arcs(),
        BATCHES,
        threads
    );

    let bulk = build_stream(
        &initial,
        (BULK_CHURN * initial_edges as f64).round() as usize,
        0x1C4E,
    );
    let trickle = build_stream(&initial, 2, 0x7B1C);

    // Pre-stream solve: the serving system is warm before the first batch
    // arrives (identical cost for every strategy, so it is not measured).
    let csc0 = CscStructure::build(&initial);
    let mut engine0 = Engine::with_structure(&initial, Arc::new(csc0.clone()), threads)
        .expect("fresh structure")
        .with_config(config)
        .expect("valid config");
    let scores0 = engine0.solve_model(MODEL).expect("initial solve").scores;
    drop(engine0);

    let bulk_r = run_regime(c, "bulk", &bulk, &config, threads, MODEL, &csc0, &scores0);
    let trickle_r = run_regime(c, "trickle", &trickle, &config, threads, MODEL, &csc0, &scores0);

    // Third regime: the same trickle stream at the *serving* tolerance the
    // evolving scenario defaults to (1e-6 -- re-solving far below the next
    // batch's perturbation is wasted work). Here the push drains the whole
    // residual locally, so the localized pipeline shows its full advantage.
    let serving_config = PageRankConfig {
        tolerance: 1e-6,
        ..config
    };
    let mut engine_s = Engine::with_structure(&initial, Arc::new(csc0.clone()), threads)
        .expect("fresh structure")
        .with_config(serving_config)
        .expect("valid config");
    let scores0_serving = engine_s.solve_model(MODEL).expect("initial solve").scores;
    drop(engine_s);
    let serving_r = run_regime(
        c,
        "trickle_serving",
        &trickle,
        &serving_config,
        threads,
        MODEL,
        &csc0,
        &scores0_serving,
    );

    // Fourth regime: weighted trickle — half-star re-ratings on a
    // weighted base under the paper's Blended beta = 0.5 model (arc-mode
    // operator reads the weights). Pure re-weights change no structure,
    // so the localized path must hold: the delta's (old, new) weights
    // let it rebuild the pre-batch operator columns and seed the
    // residual exactly.
    const WEIGHTED_MODEL: TransitionModel = TransitionModel::Blended { p: 0.5, beta: 0.5 };
    let weighted_initial = build_weighted_initial(0xD2);
    let weighted = build_weighted_stream(&weighted_initial, 0x3A7E);
    let csc0_w = CscStructure::build(&weighted_initial);
    let mut engine_w = Engine::with_structure(&weighted_initial, Arc::new(csc0_w.clone()), threads)
        .expect("fresh structure")
        .with_config(config)
        .expect("valid config");
    let scores0_weighted = engine_w
        .solve_model(WEIGHTED_MODEL)
        .expect("initial solve")
        .scores;
    drop(engine_w);
    let weighted_r = run_regime(
        c,
        "weighted_trickle",
        &weighted,
        &config,
        threads,
        WEIGHTED_MODEL,
        &csc0_w,
        &scores0_weighted,
    );
    assert!(
        weighted_r
            .localized_modes
            .iter()
            .all(|m| *m != ResolveMode::WarmSweep),
        "weighted re-weights must not force a sweep: {:?}",
        weighted_r.localized_modes
    );

    // Thread-count axis: the serving pipeline (the hot path this bench
    // guards) at every power-of-two worker count up to the host's
    // parallelism, so multi-core hosts stay comparable with the 1-CPU
    // trajectory. Uses the same stream, tolerance, and state handoff.
    let axis = thread_axis(threads);
    {
        let mut group = c.benchmark_group("incremental_updates");
        if cfg!(feature = "smoke") {
            group
                .sample_size(2)
                .measurement_time(Duration::from_secs(2));
        } else {
            group
                .sample_size(3)
                .measurement_time(Duration::from_secs(10));
        }
        for &t in &axis {
            group.bench_function(format!("trickle_serving/localized_t{t}").as_str(), |b| {
                b.iter(|| {
                    black_box(localized_incremental(
                        black_box(&trickle),
                        &serving_config,
                        t,
                        MODEL,
                        &csc0,
                        &scores0_serving,
                    ))
                })
            });
        }
        group.finish();
    }
    let axis_ms = axis_json(&axis, |t| {
        report_ms(c, &format!("trickle_serving/localized_t{t}"))
    });

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"incremental_updates\",\n",
            "  \"graph\": {{\"generator\": \"barabasi_albert({}, 5, 0xD2)\", ",
            "\"nodes\": {}, \"arcs\": {}}},\n",
            "  \"model\": \"DegreeDecoupled(p = 0.5)\",\n",
            "  \"tolerance\": {:e},\n",
            "  \"batches_per_regime\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"bulk_1pct_churn\": {},\n",
            "  \"trickle_single_edge\": {},\n",
            "  \"trickle_single_edge_serving_tol_1e6\": {},\n",
            "  \"weighted_trickle_reweight_blended_beta05\": {},\n",
            "  \"localized_trickle_serving_ms_by_threads\": {},\n",
            "  \"note\": \"localized_incremental is the PR-3 serving pipeline: engine-state ",
            "handoff (structurally patched transpose, frontier-patched factored operator) ",
            "plus the auto-selected residual-localized push with sweep fallbacks. ",
            "warm_incremental is the PR-2 pipeline (full transpose patch + engine rebuild + ",
            "O(E) operator build + warm full sweep). Iteration ratios at matched tolerance ",
            "remain information-bounded (DESIGN.md, warm-start convergence contract); the ",
            "localized path escapes the bound only for the residual mass it can drain ",
            "locally -- the remaining decades decay at the alpha-rate wherever they have ",
            "spread (DESIGN.md, residual-localized refresh).\"\n",
            "}}\n"
        ),
        NODES,
        NODES,
        initial.num_arcs(),
        config.tolerance,
        BATCHES,
        default_threads(),
        threads,
        regime_json(&bulk_r),
        regime_json(&trickle_r),
        regime_json(&serving_r),
        regime_json(&weighted_r),
        axis_ms,
    );
    // Smoke runs feed the CI perf guard from a scratch path; acceptance
    // runs update the committed trajectory at the workspace root.
    let out = if cfg!(feature = "smoke") {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-smoke");
        std::fs::create_dir_all(&dir).expect("create bench-smoke dir");
        dir.join("BENCH_incremental.json")
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json")
    };
    let mut f = std::fs::File::create(&out).expect("create BENCH_incremental.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_incremental.json");
    println!("wrote {}\n{json}", out.display());
    println!(
        "bulk refresh: warm {:.2}x vs seed rebuild, localized {:.2}x vs warm; \
         trickle@1e-8: warm {:.2}x vs seed rebuild, localized {:.2}x vs warm; \
         trickle@1e-6 serving: localized {:.2}x vs warm; \
         weighted trickle (Blended beta=0.5): localized {:.2}x vs warm",
        bulk_r.seed_ms / bulk_r.warm_ms,
        bulk_r.warm_ms / bulk_r.localized_ms,
        trickle_r.seed_ms / trickle_r.warm_ms,
        trickle_r.warm_ms / trickle_r.localized_ms,
        serving_r.warm_ms / serving_r.localized_ms,
        weighted_r.warm_ms / weighted_r.localized_ms,
    );
}

criterion_group!(benches, incremental_updates);
criterion_main!(benches);
