//! Property-based tests for the graph substrate.

use d2pr_graph::builder::{DuplicatePolicy, GraphBuilder};
use d2pr_graph::components::connected_components;
use d2pr_graph::csr::{CsrGraph, Direction};
use d2pr_graph::stats::{degree_stats, degrees};
use d2pr_graph::subgraph::{giant_component, induced_subgraph};
use d2pr_graph::traversal::{bfs_distances, bfs_order, dfs_order};
use proptest::prelude::*;

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..=max_edges)
}

fn build(direction: Direction, n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(direction, n as usize);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("in-range edges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Undirected storage is perfectly symmetric: u ∈ N(v) ⇔ v ∈ N(u).
    #[test]
    fn undirected_adjacency_symmetric(edges in arb_edges(25, 120)) {
        let g = build(Direction::Undirected, 25, &edges);
        for (u, v) in g.arcs() {
            prop_assert!(g.has_arc(v, u), "missing mirror of {u}->{v}");
        }
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// Sum of out-degrees equals the arc count; in-degrees match too.
    #[test]
    fn degree_sums_match_arcs(edges in arb_edges(20, 100)) {
        let g = build(Direction::Directed, 20, &edges);
        let out_sum: u64 = g.nodes().map(|v| u64::from(g.out_degree(v))).sum();
        let in_sum: u64 = g.nodes().map(|v| u64::from(g.in_degree(v))).sum();
        prop_assert_eq!(out_sum, g.num_arcs() as u64);
        prop_assert_eq!(in_sum, g.num_arcs() as u64);
    }

    /// Neighborhoods come out sorted and deduplicated under MergeSum.
    #[test]
    fn neighborhoods_sorted_dedup(edges in arb_edges(15, 80)) {
        let g = build(Direction::Directed, 15, &edges);
        for v in g.nodes() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "node {v}: {ns:?}");
        }
    }

    /// Keep policy preserves multiplicity: arc count equals non-loop input count.
    #[test]
    fn keep_policy_preserves_count(edges in arb_edges(12, 60)) {
        let mut b = GraphBuilder::new(Direction::Directed, 12)
            .duplicate_policy(DuplicatePolicy::Keep);
        let mut expected = 0;
        for &(u, v) in &edges {
            b.add_edge(u, v);
            if u != v {
                expected += 1; // self-loops dropped by default policy
            }
        }
        let g = b.build().expect("valid");
        prop_assert_eq!(g.num_arcs(), expected);
    }

    /// Component labels partition the node set and sizes sum to n.
    #[test]
    fn components_partition(edges in arb_edges(30, 90)) {
        let g = build(Direction::Undirected, 30, &edges);
        let c = connected_components(&g);
        prop_assert_eq!(c.labels.len(), 30);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), 30);
        for (u, v) in g.arcs() {
            prop_assert_eq!(c.labels[u as usize], c.labels[v as usize]);
        }
        // every label in range
        prop_assert!(c.labels.iter().all(|&l| (l as usize) < c.count));
    }

    /// BFS distances satisfy the edge relaxation property:
    /// |dist(u) − dist(v)| ≤ 1 across every edge (undirected).
    #[test]
    fn bfs_distance_relaxation(edges in arb_edges(20, 80), src in 0u32..20) {
        let g = build(Direction::Undirected, 20, &edges);
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[src as usize], 0);
        for (u, v) in g.arcs() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != u32::MAX {
                prop_assert!(dv != u32::MAX && dv <= du + 1);
            }
        }
    }

    /// BFS and DFS visit exactly the same node set (reachability agrees).
    #[test]
    fn bfs_dfs_reach_same_set(edges in arb_edges(18, 70), src in 0u32..18) {
        let g = build(Direction::Directed, 18, &edges);
        let mut b: Vec<u32> = bfs_order(&g, src);
        let mut d: Vec<u32> = dfs_order(&g, src);
        b.sort_unstable();
        d.sort_unstable();
        prop_assert_eq!(b, d);
    }

    /// Induced subgraph on ALL nodes reproduces the original edge count,
    /// and the giant component has no more edges than the original.
    #[test]
    fn subgraph_conservation(edges in arb_edges(16, 60)) {
        let g = build(Direction::Undirected, 16, &edges);
        let all: Vec<u32> = g.nodes().collect();
        let full = induced_subgraph(&g, &all).expect("in range");
        prop_assert_eq!(full.graph.num_edges(), g.num_edges());
        let giant = giant_component(&g).expect("in range");
        prop_assert!(giant.graph.num_edges() <= g.num_edges());
        let c = connected_components(&giant.graph);
        prop_assert!(c.count <= 1, "giant component must be connected");
    }

    /// Degree statistics are internally consistent.
    #[test]
    fn degree_stats_consistent(edges in arb_edges(22, 100)) {
        let g = build(Direction::Undirected, 22, &edges);
        let s = degree_stats(&g);
        let degs = degrees(&g);
        prop_assert_eq!(s.max_degree, degs.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(s.min_degree, degs.iter().copied().min().unwrap_or(0));
        prop_assert!(s.min_degree <= s.max_degree || degs.is_empty());
        prop_assert!(s.avg_degree <= f64::from(s.max_degree));
        prop_assert!(s.avg_degree >= f64::from(s.min_degree));
        prop_assert!(s.std_degree >= 0.0);
        let mean = degs.iter().map(|&d| f64::from(d)).sum::<f64>() / 22.0;
        prop_assert!((s.avg_degree - mean).abs() < 1e-12);
    }

    /// Edge-list text round trip preserves the graph for arbitrary inputs.
    #[test]
    fn edge_list_round_trip(edges in arb_edges(14, 50)) {
        let g = build(Direction::Undirected, 14, &edges);
        let mut doc = Vec::new();
        d2pr_graph::io::write_edge_list(&g, &mut doc).expect("write");
        let g2 = d2pr_graph::io::read_edge_list(std::io::Cursor::new(doc), Direction::Undirected)
            .expect("parse");
        // Node count can shrink (trailing isolated nodes are not serialized);
        // adjacency of surviving nodes must match exactly.
        for v in g2.nodes() {
            prop_assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
        prop_assert_eq!(g2.num_edges(), g.num_edges());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Degree-preserving rewiring keeps the exact degree sequence for any
    /// input graph and swap intensity.
    #[test]
    fn rewiring_preserves_degree_sequence(
        edges in arb_edges(20, 80),
        swaps in 0.0f64..4.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let g = build(Direction::Undirected, 20, &edges);
        let r = d2pr_graph::rewire::degree_preserving_rewire(&g, swaps, seed)
            .expect("rewiring valid input");
        prop_assert_eq!(degrees(&g), degrees(&r));
        prop_assert_eq!(g.num_edges(), r.num_edges());
    }

    /// Core numbers never exceed degrees, and the k-core subgraph induced by
    /// nodes with core >= k has minimum degree >= k inside itself.
    #[test]
    fn k_core_invariants(edges in arb_edges(18, 70)) {
        let g = build(Direction::Undirected, 18, &edges);
        let core = d2pr_graph::rewire::k_core(&g);
        for v in g.nodes() {
            prop_assert!(core[v as usize] <= g.out_degree(v));
        }
        let max_core = core.iter().copied().max().unwrap_or(0);
        if max_core > 0 {
            let members: Vec<u32> = g
                .nodes()
                .filter(|&v| core[v as usize] >= max_core)
                .collect();
            let sub = induced_subgraph(&g, &members).expect("in range");
            for v in sub.graph.nodes() {
                prop_assert!(
                    sub.graph.out_degree(v) >= max_core,
                    "node {v} has degree {} inside the {max_core}-core",
                    sub.graph.out_degree(v)
                );
            }
        }
    }

    /// Assortativity, when defined, is a correlation: bounded by [-1, 1].
    #[test]
    fn assortativity_bounded(edges in arb_edges(16, 60)) {
        let g = build(Direction::Undirected, 16, &edges);
        if let Some(r) = d2pr_graph::metrics::degree_assortativity(&g) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{r}");
        }
    }

    /// Clustering coefficients are proper fractions.
    #[test]
    fn clustering_bounded(edges in arb_edges(14, 50)) {
        let g = build(Direction::Undirected, 14, &edges);
        for v in g.nodes() {
            if let Some(c) = d2pr_graph::metrics::local_clustering(&g, v) {
                prop_assert!((0.0..=1.0).contains(&c));
            }
        }
        let avg = d2pr_graph::metrics::average_clustering(&g);
        prop_assert!((0.0..=1.0).contains(&avg));
    }
}
