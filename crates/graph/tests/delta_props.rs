//! Property tests for the delta-CSR subsystem: the overlay + compaction
//! pipeline must be indistinguishable from rebuilding the graph from the
//! edited edge list, and the patched transpose must equal a fresh build.

use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction, NodeId};
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::transpose::CscStructure;
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: u32 = 24;

fn arb_edges(max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..N, 0..N), 0..=max_edges)
}

/// One batch: (inserts, deletes).
type RawBatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// A sequence of batches; each batch is (inserts, deletes) drawn from the
/// full node-pair space, so re-inserts, double-deletes, self-loops, and
/// batch-internal cancellations all occur.
fn arb_batches() -> impl Strategy<Value = Vec<RawBatch>> {
    proptest::collection::vec((arb_edges(30), arb_edges(30)), 1..=6)
}

fn build(direction: Direction, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(direction, N as usize);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build().expect("in-range edges")
}

/// Reference model: the arc set of the logical graph, maintained with the
/// documented batch semantics (self-loops dropped, inserts before deletes,
/// mirroring for undirected graphs).
fn apply_reference(
    arcs: &mut BTreeSet<(NodeId, NodeId)>,
    mirrored: bool,
    inserts: &[(u32, u32)],
    deletes: &[(u32, u32)],
) {
    for &(u, v) in inserts {
        if u != v {
            arcs.insert((u, v));
            if mirrored {
                arcs.insert((v, u));
            }
        }
    }
    for &(u, v) in deletes {
        if u != v {
            arcs.remove(&(u, v));
            if mirrored {
                arcs.remove(&(v, u));
            }
        }
    }
}

/// Rebuild a CSR directly from a reference arc set.
fn build_from_arcs(direction: Direction, arcs: &BTreeSet<(NodeId, NodeId)>) -> CsrGraph {
    let mut b = GraphBuilder::new(direction, N as usize);
    for &(u, v) in arcs {
        match direction {
            Direction::Directed => b.add_edge(u, v),
            // The set is symmetric; feed each undirected edge once.
            Direction::Undirected => {
                if u < v {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build().expect("in-range arcs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole invariant: apply_batch (+ forced compaction) equals
    /// building a CSR from the edited edge list directly, for random
    /// insert/delete sequences on directed graphs.
    #[test]
    fn directed_delta_equals_direct_build(
        initial in arb_edges(60),
        batches in arb_batches(),
    ) {
        let base = build(Direction::Directed, &initial);
        let mut reference: BTreeSet<(NodeId, NodeId)> = base.arcs().collect();
        let mut dg = DeltaGraph::new(base).expect("unweighted");
        for (inserts, deletes) in &batches {
            let mut batch = EdgeBatch::new();
            batch.inserts.clone_from(inserts);
            batch.deletes.clone_from(deletes);
            let outcome = dg.apply_batch(&batch).expect("in-range batch");
            apply_reference(&mut reference, false, inserts, deletes);
            // Effective delta is consistent with the arc-count change.
            prop_assert_eq!(dg.num_arcs(), reference.len());
            prop_assert!(outcome.delta.inserted.iter().all(|a| reference.contains(a)));
            prop_assert!(outcome.delta.deleted.iter().all(|a| !reference.contains(a)));
            // The live (uncompacted) view already matches the reference.
            prop_assert_eq!(dg.snapshot(), build_from_arcs(Direction::Directed, &reference));
        }
        dg.compact();
        prop_assert_eq!(
            dg.into_snapshot(),
            build_from_arcs(Direction::Directed, &reference)
        );
    }

    /// Same invariant for undirected graphs (mirrored arcs).
    #[test]
    fn undirected_delta_equals_direct_build(
        initial in arb_edges(50),
        batches in arb_batches(),
    ) {
        let base = build(Direction::Undirected, &initial);
        let mut reference: BTreeSet<(NodeId, NodeId)> = base.arcs().collect();
        let mut dg = DeltaGraph::new(base).expect("unweighted");
        for (inserts, deletes) in &batches {
            let mut batch = EdgeBatch::new();
            batch.inserts.clone_from(inserts);
            batch.deletes.clone_from(deletes);
            dg.apply_batch(&batch).expect("in-range batch");
            apply_reference(&mut reference, true, inserts, deletes);
            prop_assert_eq!(dg.num_arcs(), reference.len());
        }
        dg.compact();
        prop_assert_eq!(
            dg.into_snapshot(),
            build_from_arcs(Direction::Undirected, &reference)
        );
    }

    /// The incrementally patched transpose is bit-identical to a fresh
    /// build at every step of a random batch sequence.
    #[test]
    fn patched_transpose_equals_fresh_build(
        initial in arb_edges(60),
        batches in arb_batches(),
    ) {
        let base = build(Direction::Directed, &initial);
        let mut csc = CscStructure::build(&base);
        let mut dg = DeltaGraph::new(base).expect("unweighted");
        for (inserts, deletes) in &batches {
            let mut batch = EdgeBatch::new();
            batch.inserts.clone_from(inserts);
            batch.deletes.clone_from(deletes);
            let outcome = dg.apply_batch(&batch).expect("in-range batch");
            let snapshot = dg.snapshot();
            csc = csc.patched(&snapshot, &outcome.delta).expect("consistent delta");
            prop_assert_eq!(&csc, &CscStructure::build(&snapshot));
        }
    }

    /// Compaction is invisible: interleaving forced compactions with
    /// batches never changes the logical graph.
    #[test]
    fn compaction_is_transparent(
        initial in arb_edges(40),
        batches in arb_batches(),
    ) {
        let base = build(Direction::Directed, &initial);
        // Aggressive thresholds: compact after nearly every batch.
        let mut eager = DeltaGraph::new(base.clone())
            .expect("unweighted")
            .with_compaction_threshold(0.0, 1);
        let mut lazy = DeltaGraph::new(base)
            .expect("unweighted")
            .with_compaction_threshold(f64::INFINITY, usize::MAX);
        for (inserts, deletes) in &batches {
            let mut batch = EdgeBatch::new();
            batch.inserts.clone_from(inserts);
            batch.deletes.clone_from(deletes);
            let a = eager.apply_batch(&batch).expect("in-range");
            let b = lazy.apply_batch(&batch).expect("in-range");
            // The effective delta is independent of compaction timing.
            prop_assert_eq!(a.delta, b.delta);
            prop_assert!(!b.compacted);
            prop_assert_eq!(eager.snapshot(), lazy.snapshot());
        }
    }
}
