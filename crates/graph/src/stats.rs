//! Degree statistics of a graph — the columns of the paper's Table 3.
//!
//! Table 3 reports, per data graph: number of nodes, number of edges, average
//! node degree, standard deviation of node degrees, and the *median standard
//! deviation of neighbors' node degrees*. The last column drives the paper's
//! explanation of why Group-B curves collapse for `p < 0` while Group-C
//! curves plateau (§4.3.2–4.3.3), so it is computed here exactly: for every
//! node take the standard deviation of its neighbors' degrees, then take the
//! median over all nodes with at least one neighbor.

use crate::csr::{CsrGraph, NodeId};

/// Summary degree statistics for a graph (paper Table 3 row).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of logical edges (see [`CsrGraph::num_edges`]).
    pub num_edges: usize,
    /// Mean node degree.
    pub avg_degree: f64,
    /// Population standard deviation of node degrees.
    pub std_degree: f64,
    /// Median over nodes of the standard deviation of the node's neighbors'
    /// degrees. Nodes without neighbors are excluded from the median.
    pub median_neighbor_degree_std: f64,
    /// Maximum node degree.
    pub max_degree: u32,
    /// Minimum node degree.
    pub min_degree: u32,
    /// Number of isolated (degree-0) nodes.
    pub isolated_nodes: usize,
}

/// Degree of each node as used throughout the paper: plain degree for
/// undirected graphs, out-degree for directed graphs.
pub fn degrees(g: &CsrGraph) -> Vec<u32> {
    g.nodes().map(|v| g.kernel_degree(v)).collect()
}

/// Degrees as `f64`, convenient for correlation computations.
pub fn degrees_f64(g: &CsrGraph) -> Vec<f64> {
    g.nodes().map(|v| f64::from(g.kernel_degree(v))).collect()
}

/// Population mean and standard deviation of a slice.
fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Median of a slice (averaging the two middle elements for even lengths).
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Standard deviation of the degrees of `v`'s neighbors, or `None` when `v`
/// has no neighbors.
pub fn neighbor_degree_std(g: &CsrGraph, v: NodeId, degs: &[u32]) -> Option<f64> {
    let ns = g.neighbors(v);
    if ns.is_empty() {
        return None;
    }
    let vals: Vec<f64> = ns.iter().map(|&t| f64::from(degs[t as usize])).collect();
    Some(mean_std(&vals).1)
}

/// Compute the full Table-3 statistics for a graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let degs = degrees(g);
    let degs_f: Vec<f64> = degs.iter().map(|&d| f64::from(d)).collect();
    let (avg, std) = mean_std(&degs_f);
    let mut neighbor_stds: Vec<f64> = g
        .nodes()
        .filter_map(|v| neighbor_degree_std(g, v, &degs))
        .collect();
    let med = median(&mut neighbor_stds);
    DegreeStats {
        num_nodes: g.num_nodes(),
        num_edges: g.num_edges(),
        avg_degree: avg,
        std_degree: std,
        median_neighbor_degree_std: med,
        max_degree: degs.iter().copied().max().unwrap_or(0),
        min_degree: degs.iter().copied().min().unwrap_or(0),
        isolated_nodes: degs.iter().filter(|&&d| d == 0).count(),
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let degs = degrees(g);
    let max = degs.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0usize; max + 1];
    for d in degs {
        hist[d as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::Direction;

    /// Star graph: center 0 connected to 1..=4.
    fn star5() -> CsrGraph {
        let mut b = GraphBuilder::new(Direction::Undirected, 5);
        for leaf in 1..5 {
            b.add_edge(0, leaf);
        }
        b.build().unwrap()
    }

    #[test]
    fn star_degree_stats() {
        let s = degree_stats(&star5());
        assert_eq!(s.num_nodes, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.min_degree, 1);
        // degrees: [4,1,1,1,1] -> mean 1.6
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
        // var = (4-1.6)^2 + 4*(1-1.6)^2 over 5 = (5.76 + 1.44)/5 = 1.44
        assert!((s.std_degree - 1.2).abs() < 1e-12);
    }

    #[test]
    fn star_neighbor_degree_std() {
        let g = star5();
        let degs = degrees(&g);
        // center's neighbors all have degree 1 -> std 0
        assert_eq!(neighbor_degree_std(&g, 0, &degs), Some(0.0));
        // each leaf's single neighbor has degree 4 -> std 0
        assert_eq!(neighbor_degree_std(&g, 1, &degs), Some(0.0));
        let s = degree_stats(&g);
        assert_eq!(s.median_neighbor_degree_std, 0.0);
    }

    #[test]
    fn isolated_node_excluded_from_median() {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        // node 3 isolated
        let g = b.build().unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.isolated_nodes, 1);
        assert_eq!(s.min_degree, 0);
        // neighbor degree std per node: 0:{deg(1)=2}->0, 1:{1,1}->0, 2:{2}->0
        assert_eq!(s.median_neighbor_degree_std, 0.0);
    }

    #[test]
    fn heterogeneous_neighbor_degrees() {
        // path 0-1-2-3: degrees [1,2,2,1]
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let degs = degrees(&g);
        // node 1 neighbors {0,2} with degrees {1,2}: mean 1.5, std 0.5
        assert!((neighbor_degree_std(&g, 1, &degs).unwrap() - 0.5).abs() < 1e-12);
        // node 0 neighbor {1} deg 2 -> std 0
        assert_eq!(neighbor_degree_std(&g, 0, &degs), Some(0.0));
        let s = degree_stats(&g);
        // per-node stds: [0, 0.5, 0.5, 0] -> median (0+0.5)/2... sorted [0,0,0.5,0.5] -> 0.25
        assert!((s.median_neighbor_degree_std - 0.25).abs() < 1e-12);
    }

    #[test]
    fn directed_uses_out_degree() {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        let g = b.build().unwrap();
        assert_eq!(degrees(&g), vec![2, 0, 0]);
        let s = degree_stats(&g);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.isolated_nodes, 2);
    }

    #[test]
    fn histogram_counts_degrees() {
        let h = degree_histogram(&star5());
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(Direction::Undirected, 0).build().unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.median_neighbor_degree_std, 0.0);
        assert_eq!(degree_histogram(&g), vec![0]);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
