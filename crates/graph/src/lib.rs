//! # d2pr-graph
//!
//! Graph substrate for the D2PR (degree de-coupled PageRank) reproduction:
//! an immutable CSR graph core, a policy-driven builder, bipartite
//! affiliation graphs with co-occurrence projections, degree statistics
//! (including the paper's "median standard deviation of neighbors' degrees"),
//! traversal and component utilities, classic random-graph generators, and
//! edge-list / binary snapshot I/O.
//!
//! Everything is implemented from scratch — no external graph library — per
//! the reproduction brief (see `DESIGN.md` at the repository root).
//!
//! ## Quick tour
//! ```
//! use d2pr_graph::prelude::*;
//!
//! // Build a small undirected graph.
//! let mut b = GraphBuilder::new(Direction::Undirected, 4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g = b.build().unwrap();
//!
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.neighbors(1), &[0, 2]);
//!
//! let stats = d2pr_graph::stats::degree_stats(&g);
//! assert_eq!(stats.max_degree, 2);
//! ```

#![warn(missing_docs)]

pub mod bipartite;
pub mod builder;
pub mod components;
pub mod csr;
pub mod delta;
pub mod error;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod permute;
pub mod projection;
pub mod rewire;
pub mod stats;
pub mod subgraph;
pub mod transpose;
pub mod traversal;

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::bipartite::BipartiteGraph;
    pub use crate::builder::{DuplicatePolicy, GraphBuilder, SelfLoopPolicy};
    pub use crate::csr::{CsrGraph, Direction, NodeId};
    pub use crate::delta::{ArcDelta, BatchOutcome, DeltaGraph, EdgeBatch};
    pub use crate::error::{GraphError, Result};
    pub use crate::metrics::{average_clustering, degree_assortativity, local_clustering};
    pub use crate::permute::{Layout, LayoutError, NodePermutation};
    pub use crate::projection::{project_left, project_right, ProjectionConfig};
    pub use crate::rewire::{degree_preserving_rewire, k_core};
    pub use crate::stats::{degree_stats, degrees, degrees_f64, DegreeStats};
    pub use crate::subgraph::{giant_component, induced_subgraph, Subgraph};
    pub use crate::transpose::CscStructure;
}

pub use crate::csr::{CsrGraph, Direction, NodeId};
pub use crate::error::{GraphError, Result};
