//! Degree-preserving rewiring and k-core decomposition.
//!
//! Both tools isolate *what degree alone explains*:
//!
//! * [`degree_preserving_rewire`] applies random double-edge swaps, keeping
//!   every node's degree while destroying higher-order structure (quality
//!   assortativity, clustering). The `repro rewire` ablation uses it to show
//!   that D2PR's Group-A gains come from structure the paper's "Factor 1"
//!   describes, not from the degree sequence itself.
//! * [`k_core`] computes core numbers — the standard robust alternative to
//!   raw degree when discussing how "central" high-degree nodes really are.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomize an undirected graph by double-edge swaps:
/// pick edges (a,b) and (c,d), replace with (a,d) and (c,b) when neither
/// new edge exists and no self-loop results. Every node keeps its exact
/// degree. `swaps_per_edge` controls mixing (≥ 1 is conventional).
///
/// # Panics
/// Panics when called on a directed graph (swap semantics differ).
pub fn degree_preserving_rewire(g: &CsrGraph, swaps_per_edge: f64, seed: u64) -> Result<CsrGraph> {
    assert!(
        !g.is_directed(),
        "degree-preserving rewiring expects an undirected graph"
    );
    assert!(swaps_per_edge >= 0.0, "swaps_per_edge must be non-negative");
    // Unique edge list (u < v).
    let mut edges: Vec<(NodeId, NodeId)> = g.arcs().filter(|&(u, v)| u < v).collect();
    let m = edges.len();
    if m < 2 {
        return Ok(g.clone());
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAB);
    // Membership set for O(1) duplicate checks.
    let mut present: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let key = |a: NodeId, b: NodeId| if a < b { (a, b) } else { (b, a) };

    let target_swaps = (swaps_per_edge * m as f64).round() as usize;
    let mut done = 0usize;
    let mut attempts = 0usize;
    let max_attempts = target_swaps.saturating_mul(20).max(64);
    while done < target_swaps && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        // Candidate swap: (a,d) and (c,b).
        if a == d || c == b {
            continue;
        }
        let e1 = key(a, d);
        let e2 = key(c, b);
        if e1 == e2 || present.contains(&e1) || present.contains(&e2) {
            continue;
        }
        present.remove(&key(a, b));
        present.remove(&key(c, d));
        present.insert(e1);
        present.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
        done += 1;
    }

    let mut builder = GraphBuilder::new(Direction::Undirected, g.num_nodes());
    for (u, v) in edges {
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Core number of every node: the largest `k` such that the node belongs to
/// a subgraph where every node has degree ≥ `k` (Batagelj–Zaveršnik peeling,
/// O(V + E)).
pub fn k_core(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.out_degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0u32; n];
    for v in 0..n {
        let d = degree[v] as usize;
        pos[v] = bins[d];
        order[pos[v]] = v as u32;
        bins[d] += 1;
    }
    // Restore bin starts.
    for d in (1..=max_deg + 1).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core = degree.clone();
    for idx in 0..n {
        let v = order[idx] as usize;
        for &u in g.neighbors(v as u32) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first node of its bin.
                let du = degree[u] as usize;
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw] as usize;
                if u != w {
                    order[pu] = w as u32;
                    order[pw] = u as u32;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
        core[v] = degree[v];
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, erdos_renyi_nm};
    use crate::metrics::average_clustering;
    use crate::stats::degrees;

    #[test]
    fn rewire_preserves_degrees() {
        let g = barabasi_albert(200, 3, 5).unwrap();
        let r = degree_preserving_rewire(&g, 2.0, 9).unwrap();
        assert_eq!(degrees(&g), degrees(&r));
        assert_eq!(g.num_edges(), r.num_edges());
        assert_ne!(g, r, "rewiring must actually change edges");
    }

    #[test]
    fn rewire_zero_swaps_is_identity() {
        let g = erdos_renyi_nm(50, 120, 3).unwrap();
        let r = degree_preserving_rewire(&g, 0.0, 1).unwrap();
        assert_eq!(g, r);
    }

    #[test]
    fn rewire_destroys_clustering() {
        // Watts-Strogatz lattices are highly clustered; rewiring should
        // bring clustering toward the random-graph baseline.
        let g = crate::generators::watts_strogatz(300, 4, 0.0, 2).unwrap();
        let before = average_clustering(&g);
        let r = degree_preserving_rewire(&g, 3.0, 2).unwrap();
        let after = average_clustering(&r);
        assert!(before > 0.5, "lattice clustering {before}");
        assert!(
            after < before / 2.0,
            "rewired clustering {after} vs {before}"
        );
    }

    #[test]
    fn rewire_is_deterministic() {
        let g = erdos_renyi_nm(60, 150, 4).unwrap();
        let a = degree_preserving_rewire(&g, 1.0, 7).unwrap();
        let b = degree_preserving_rewire(&g, 1.0, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rewire_handles_tiny_graphs() {
        let mut b = GraphBuilder::new(Direction::Undirected, 3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let r = degree_preserving_rewire(&g, 5.0, 1).unwrap();
        assert_eq!(g, r);
    }

    #[test]
    fn k_core_of_clique_with_tail() {
        // 4-clique {0,1,2,3} + path 3-4-5
        let mut b = GraphBuilder::new(Direction::Undirected, 6);
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build().unwrap();
        let core = k_core(&g);
        assert_eq!(core[0], 3);
        assert_eq!(core[1], 3);
        assert_eq!(core[2], 3);
        assert_eq!(core[3], 3);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn k_core_of_cycle_is_two() {
        let mut b = GraphBuilder::new(Direction::Undirected, 5);
        for v in 0..5u32 {
            b.add_edge(v, (v + 1) % 5);
        }
        let g = b.build().unwrap();
        assert!(k_core(&g).iter().all(|&c| c == 2));
    }

    #[test]
    fn k_core_bounds() {
        let g = barabasi_albert(150, 3, 8).unwrap();
        let core = k_core(&g);
        for v in g.nodes() {
            assert!(
                core[v as usize] <= g.out_degree(v),
                "core can never exceed degree"
            );
        }
        // BA with m=3 has a 3-core containing the early clique.
        assert!(core.iter().any(|&c| c >= 3));
    }

    #[test]
    fn k_core_empty_and_isolated() {
        let g = GraphBuilder::new(Direction::Undirected, 3).build().unwrap();
        assert_eq!(k_core(&g), vec![0, 0, 0]);
    }
}
