//! Structural graph metrics beyond plain degree statistics.
//!
//! The paper's §4.3.2–4.3.3 argument hinges on *neighbor-degree structure*
//! (whether a node's neighbors have comparable or dominant degrees). Degree
//! assortativity and clustering quantify exactly that structure, and the
//! experiment harness reports them alongside Table 3 so the generated
//! worlds can be compared to the paper's datasets on richer axes.

use crate::csr::{CsrGraph, NodeId};

/// Pearson degree assortativity over the arcs of the graph (Newman's `r`):
/// the correlation between the degrees of the endpoints of every edge.
/// `None` when the graph has no arcs or degenerate degree variance.
pub fn degree_assortativity(g: &CsrGraph) -> Option<f64> {
    let m = g.num_arcs();
    if m == 0 {
        return None;
    }
    // Collect endpoint degree pairs per arc (undirected graphs contribute
    // both orientations, which is the standard symmetric treatment).
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (u, v) in g.arcs() {
        let du = f64::from(g.kernel_degree(u));
        let dv = f64::from(g.kernel_degree(v));
        sx += du;
        sy += dv;
        sxx += du * du;
        syy += dv * dv;
        sxy += du * dv;
    }
    let n = m as f64;
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n) * (sx / n);
    let vy = syy / n - (sy / n) * (sy / n);
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Local clustering coefficient of one node: the fraction of its neighbor
/// pairs that are themselves connected. `None` for degree < 2.
pub fn local_clustering(g: &CsrGraph, v: NodeId) -> Option<f64> {
    let ns = g.neighbors(v);
    let k = ns.len();
    if k < 2 {
        return None;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if ns[i] != ns[j] && g.has_arc(ns[i], ns[j]) {
                closed += 1;
            }
        }
    }
    Some(closed as f64 / (k * (k - 1) / 2) as f64)
}

/// Average local clustering coefficient over nodes with degree ≥ 2
/// (Watts–Strogatz definition). 0 when no such node exists.
pub fn average_clustering(g: &CsrGraph) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in g.nodes() {
        if let Some(c) = local_clustering(g, v) {
            sum += c;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Mean degree of a node's neighbors (the quantity whose per-node standard
/// deviation drives the paper's Table 3 last column). `None` for isolated
/// nodes.
pub fn mean_neighbor_degree(g: &CsrGraph, v: NodeId) -> Option<f64> {
    let ns = g.neighbors(v);
    if ns.is_empty() {
        return None;
    }
    Some(
        ns.iter()
            .map(|&t| f64::from(g.kernel_degree(t)))
            .sum::<f64>()
            / ns.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::Direction;
    use crate::generators::{barabasi_albert, watts_strogatz};

    fn triangle_plus_tail() -> CsrGraph {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = triangle_plus_tail();
        assert_eq!(local_clustering(&g, 0), Some(1.0));
        assert_eq!(local_clustering(&g, 1), Some(1.0));
        // node 2 has neighbors {0,1,3}: only (0,1) closed of 3 pairs
        assert!((local_clustering(&g, 2).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), None);
        let avg = average_clustering(&g);
        assert!((avg - (1.0 + 1.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clique_clustering_is_one() {
        let mut b = GraphBuilder::new(Direction::Undirected, 5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn star_clustering_is_zero() {
        let mut b = GraphBuilder::new(Direction::Undirected, 5);
        for leaf in 1..5 {
            b.add_edge(0, leaf);
        }
        let g = b.build().unwrap();
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(local_clustering(&g, 0), Some(0.0));
        assert_eq!(local_clustering(&g, 1), None);
    }

    #[test]
    fn star_is_maximally_disassortative() {
        let mut b = GraphBuilder::new(Direction::Undirected, 6);
        for leaf in 1..6 {
            b.add_edge(0, leaf);
        }
        let g = b.build().unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!(
            (r + 1.0).abs() < 1e-12,
            "star assortativity must be -1, got {r}"
        );
    }

    #[test]
    fn regular_ring_has_undefined_assortativity() {
        // every node has degree 2k: zero variance -> None
        let g = watts_strogatz(20, 2, 0.0, 1).unwrap();
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn ba_graph_is_disassortative() {
        let g = barabasi_albert(500, 3, 9).unwrap();
        let r = degree_assortativity(&g).unwrap();
        assert!(r < 0.05, "BA graphs are (weakly) disassortative, got {r}");
        assert!(r > -1.0);
    }

    #[test]
    fn assortativity_bounds() {
        let g = triangle_plus_tail();
        let r = degree_assortativity(&g).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn empty_graph_metrics() {
        let g = GraphBuilder::new(Direction::Undirected, 3).build().unwrap();
        assert_eq!(degree_assortativity(&g), None);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(mean_neighbor_degree(&g, 0), None);
    }

    #[test]
    fn mean_neighbor_degree_values() {
        let g = triangle_plus_tail();
        // node 3's only neighbor is 2 (degree 3)
        assert_eq!(mean_neighbor_degree(&g, 3), Some(3.0));
        // node 2's neighbors are 0 (2), 1 (2), 3 (1) -> 5/3
        assert!((mean_neighbor_degree(&g, 2).unwrap() - 5.0 / 3.0).abs() < 1e-12);
    }
}
