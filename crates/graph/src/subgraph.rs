//! Induced subgraphs and component extraction.
//!
//! Real evaluation pipelines (including the paper's) typically operate on
//! the giant component of a projection — isolated nodes hold only teleport
//! mass and dilute rank correlations. This module extracts induced
//! subgraphs with a dense re-numbering and a mapping back to the original
//! node ids.

use crate::components::connected_components;
use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::{GraphError, Result};

/// An induced subgraph together with its id mappings.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph over dense ids `0..kept.len()`.
    pub graph: CsrGraph,
    /// `kept[new_id] = original_id`.
    pub kept: Vec<NodeId>,
    /// `original_to_new[original_id] = Some(new_id)` for kept nodes.
    pub original_to_new: Vec<Option<NodeId>>,
}

impl Subgraph {
    /// Map a significance (or any per-node) vector from the original graph
    /// onto the subgraph's node numbering.
    ///
    /// # Panics
    /// Panics when `values` does not cover the original node set.
    pub fn project_values(&self, values: &[f64]) -> Vec<f64> {
        assert_eq!(
            values.len(),
            self.original_to_new.len(),
            "value vector must cover the original graph"
        );
        self.kept
            .iter()
            .map(|&orig| values[orig as usize])
            .collect()
    }

    /// Map subgraph scores back to the original numbering (missing nodes
    /// receive `fill`).
    pub fn lift_values(&self, values: &[f64], fill: f64) -> Vec<f64> {
        let mut out = vec![fill; self.original_to_new.len()];
        for (new_id, &orig) in self.kept.iter().enumerate() {
            out[orig as usize] = values[new_id];
        }
        out
    }
}

/// Extract the subgraph induced by `nodes` (duplicates ignored). Edges are
/// kept when both endpoints are in the set; weights are preserved.
pub fn induced_subgraph(g: &CsrGraph, nodes: &[NodeId]) -> Result<Subgraph> {
    let n = g.num_nodes();
    let mut original_to_new: Vec<Option<NodeId>> = vec![None; n];
    let mut kept: Vec<NodeId> = Vec::with_capacity(nodes.len());
    for &v in nodes {
        if (v as usize) >= n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: n as u32,
            });
        }
        if original_to_new[v as usize].is_none() {
            original_to_new[v as usize] = Some(kept.len() as NodeId);
            kept.push(v);
        }
    }
    let mut b = crate::builder::GraphBuilder::new(g.direction(), kept.len());
    for (new_src, &orig_src) in kept.iter().enumerate() {
        let ns = g.neighbors(orig_src);
        let ws = g.neighbor_weights(orig_src);
        for (i, &t) in ns.iter().enumerate() {
            if let Some(new_dst) = original_to_new[t as usize] {
                // Undirected graphs store mirrored arcs; add each edge once.
                if g.direction() == Direction::Undirected && (new_src as NodeId) > new_dst {
                    continue;
                }
                if g.direction() == Direction::Undirected && (new_src as NodeId) == new_dst {
                    continue; // self loop from mirror; builder policy applies on original
                }
                match ws {
                    Some(w) => b.add_weighted_edge(new_src as NodeId, new_dst, w[i]),
                    None => b.add_edge(new_src as NodeId, new_dst),
                }
            }
        }
    }
    Ok(Subgraph {
        graph: b.build()?,
        kept,
        original_to_new,
    })
}

/// Extract the largest (weakly) connected component.
pub fn giant_component(g: &CsrGraph) -> Result<Subgraph> {
    let comps = connected_components(g);
    let nodes = match comps.giant_id() {
        Some(id) => comps.members(id),
        None => Vec::new(),
    };
    induced_subgraph(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        // triangle 0-1-2 and edge 3-4 (plus isolated 5)
        let mut b = GraphBuilder::new(Direction::Undirected, 6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(3, 4);
        b.build().unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[0, 1, 3]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 3);
        // only edge 0-1 survives (3's partner 4 is absent)
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.kept, vec![0, 1, 3]);
        assert_eq!(sub.original_to_new[3], Some(2));
        assert_eq!(sub.original_to_new[4], None);
    }

    #[test]
    fn induced_preserves_weights() {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_weighted_edge(0, 1, 2.5);
        b.add_weighted_edge(1, 2, 7.0);
        let g = b.build().unwrap();
        let sub = induced_subgraph(&g, &[0, 1]).unwrap();
        assert_eq!(sub.graph.neighbor_weights(0).unwrap(), &[2.5]);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn induced_rejects_out_of_range() {
        let g = two_triangles();
        assert!(induced_subgraph(&g, &[99]).is_err());
    }

    #[test]
    fn duplicates_in_selection_ignored() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[0, 0, 1, 1]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn giant_component_extracts_triangle() {
        let g = two_triangles();
        let sub = giant_component(&g).unwrap();
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.kept, vec![0, 1, 2]);
    }

    #[test]
    fn value_projection_round_trips() {
        let g = two_triangles();
        let sub = giant_component(&g).unwrap();
        let values = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        let proj = sub.project_values(&values);
        assert_eq!(proj, vec![10.0, 11.0, 12.0]);
        let lifted = sub.lift_values(&proj, -1.0);
        assert_eq!(lifted, vec![10.0, 11.0, 12.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn directed_induced_subgraph() {
        let mut b = GraphBuilder::new(Direction::Directed, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let sub = induced_subgraph(&g, &[0, 1]).unwrap();
        assert_eq!(sub.graph.num_edges(), 2); // both directions kept
        assert!(sub.graph.is_directed());
    }

    #[test]
    fn empty_selection() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 0);
    }
}
