//! Mutable edge accumulation that compiles into an immutable [`CsrGraph`].
//!
//! The builder accepts edges in any order, optionally with weights, and
//! applies configurable policies for self-loops and duplicate edges before
//! producing sorted CSR adjacency. Sorting happens with a counting-sort pass
//! (O(V + E)), not per-node comparison sorts, so building paper-scale graphs
//! (millions of arcs) stays cheap.

use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::{GraphError, Result};

/// What to do when the same (source, target) pair is added more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep every occurrence as its own parallel arc.
    Keep,
    /// Collapse duplicates to a single arc; weights are summed.
    #[default]
    MergeSum,
    /// Collapse duplicates to a single arc; the maximum weight wins.
    MergeMax,
}

/// What to do with `v -> v` edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Silently drop them (default: the paper's co-occurrence graphs are
    /// loop-free and a self-loop makes `deg` semantics ambiguous).
    #[default]
    Drop,
    /// Keep them as ordinary arcs.
    Keep,
    /// Fail the build when one is encountered.
    Error,
}

/// Accumulates edges and compiles a [`CsrGraph`].
///
/// # Example
/// ```
/// use d2pr_graph::builder::GraphBuilder;
/// use d2pr_graph::csr::Direction;
///
/// let mut b = GraphBuilder::new(Direction::Undirected, 3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    direction: Direction,
    num_nodes: usize,
    // Edge soup in insertion order; symmetrization happens at build time.
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    weighted: bool,
    duplicate_policy: DuplicatePolicy,
    self_loop_policy: SelfLoopPolicy,
    deferred_error: Option<GraphError>,
}

impl GraphBuilder {
    /// New builder over a fixed node set `0..num_nodes`.
    pub fn new(direction: Direction, num_nodes: usize) -> Self {
        Self {
            direction,
            num_nodes,
            sources: Vec::new(),
            targets: Vec::new(),
            weights: Vec::new(),
            weighted: false,
            duplicate_policy: DuplicatePolicy::default(),
            self_loop_policy: SelfLoopPolicy::default(),
            deferred_error: None,
        }
    }

    /// Switch the duplicate-edge policy (default: [`DuplicatePolicy::MergeSum`]).
    pub fn duplicate_policy(mut self, p: DuplicatePolicy) -> Self {
        self.duplicate_policy = p;
        self
    }

    /// Switch the self-loop policy (default: [`SelfLoopPolicy::Drop`]).
    pub fn self_loop_policy(mut self, p: SelfLoopPolicy) -> Self {
        self.self_loop_policy = p;
        self
    }

    /// Number of edge records queued (before policies apply).
    pub fn pending_edges(&self) -> usize {
        self.sources.len()
    }

    /// Declared node count.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Grow the node set. Useful when ids are discovered while streaming.
    pub fn ensure_node(&mut self, v: NodeId) {
        if (v as usize) >= self.num_nodes {
            self.num_nodes = v as usize + 1;
        }
    }

    /// Queue an unweighted edge. Errors (range, loop policy) are deferred to
    /// [`Self::build`] so bulk loading loops stay branch-light.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.push(u, v, 1.0, false);
    }

    /// Queue a weighted edge.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        self.push(u, v, w, true);
    }

    fn push(&mut self, u: NodeId, v: NodeId, w: f64, weighted: bool) {
        if self.deferred_error.is_some() {
            return;
        }
        if (u as usize) >= self.num_nodes || (v as usize) >= self.num_nodes {
            let node = if (u as usize) >= self.num_nodes { u } else { v };
            self.deferred_error = Some(GraphError::NodeOutOfRange {
                node,
                num_nodes: self.num_nodes as u32,
            });
            return;
        }
        if weighted && (!w.is_finite() || w < 0.0) {
            self.deferred_error = Some(GraphError::InvalidWeight(w));
            return;
        }
        if u == v {
            match self.self_loop_policy {
                SelfLoopPolicy::Drop => return,
                SelfLoopPolicy::Keep => {}
                SelfLoopPolicy::Error => {
                    self.deferred_error = Some(GraphError::Parse {
                        line: self.sources.len() + 1,
                        message: format!("self loop on node {u} rejected by policy"),
                    });
                    return;
                }
            }
        }
        self.weighted |= weighted;
        self.sources.push(u);
        self.targets.push(v);
        self.weights.push(w);
    }

    /// Compile the queued edges into a [`CsrGraph`].
    ///
    /// # Errors
    /// Surfaces any deferred edge error, then CSR validation errors.
    pub fn build(self) -> Result<CsrGraph> {
        if let Some(e) = self.deferred_error {
            return Err(e);
        }
        if self.num_nodes > u32::MAX as usize {
            return Err(GraphError::TooManyNodes(self.num_nodes));
        }
        let n = self.num_nodes;
        let symmetric = self.direction == Direction::Undirected;

        // Materialize the arc list (mirroring for undirected graphs).
        let arc_count = self.sources.len() * if symmetric { 2 } else { 1 };
        let mut arc_src: Vec<NodeId> = Vec::with_capacity(arc_count);
        let mut arc_dst: Vec<NodeId> = Vec::with_capacity(arc_count);
        let mut arc_w: Vec<f64> = Vec::with_capacity(arc_count);
        for i in 0..self.sources.len() {
            let (u, v, w) = (self.sources[i], self.targets[i], self.weights[i]);
            arc_src.push(u);
            arc_dst.push(v);
            arc_w.push(w);
            if symmetric && u != v {
                arc_src.push(v);
                arc_dst.push(u);
                arc_w.push(w);
            }
        }

        // Counting sort by source.
        let mut counts = vec![0usize; n + 1];
        for &s in &arc_src {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let total = arc_src.len();
        let mut sorted_dst = vec![0 as NodeId; total];
        let mut sorted_w = vec![0f64; total];
        for i in 0..total {
            let s = arc_src[i] as usize;
            let slot = cursor[s];
            cursor[s] += 1;
            sorted_dst[slot] = arc_dst[i];
            sorted_w[slot] = arc_w[i];
        }

        // Per-node target sort + duplicate policy. Neighborhoods are sorted
        // so `has_arc` can binary search and projections can merge-join.
        let mut out_offsets = vec![0usize; n + 1];
        let mut out_dst: Vec<NodeId> = Vec::with_capacity(total);
        let mut out_w: Vec<f64> = Vec::with_capacity(total);
        let mut scratch: Vec<(NodeId, f64)> = Vec::new();
        for v in 0..n {
            scratch.clear();
            for i in offsets[v]..offsets[v + 1] {
                scratch.push((sorted_dst[i], sorted_w[i]));
            }
            scratch.sort_unstable_by_key(|&(t, _)| t);
            match self.duplicate_policy {
                DuplicatePolicy::Keep => {
                    for &(t, w) in scratch.iter() {
                        out_dst.push(t);
                        out_w.push(w);
                    }
                }
                DuplicatePolicy::MergeSum | DuplicatePolicy::MergeMax => {
                    let mut it = scratch.iter().copied();
                    if let Some((mut ct, mut cw)) = it.next() {
                        for (t, w) in it {
                            if t == ct {
                                cw = match self.duplicate_policy {
                                    DuplicatePolicy::MergeSum => cw + w,
                                    _ => cw.max(w),
                                };
                            } else {
                                out_dst.push(ct);
                                out_w.push(cw);
                                ct = t;
                                cw = w;
                            }
                        }
                        out_dst.push(ct);
                        out_w.push(cw);
                    }
                }
            }
            out_offsets[v + 1] = out_dst.len();
        }

        let weights = if self.weighted { Some(out_w) } else { None };
        CsrGraph::from_csr(self.direction, out_offsets, out_dst, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_edges_are_mirrored() {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
    }

    #[test]
    fn directed_edges_are_not_mirrored() {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(1).is_empty());
    }

    #[test]
    fn duplicates_merge_sum_by_default() {
        let mut b = GraphBuilder::new(Direction::Directed, 2);
        b.add_weighted_edge(0, 1, 1.5);
        b.add_weighted_edge(0, 1, 2.5);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbor_weights(0).unwrap(), &[4.0]);
    }

    #[test]
    fn duplicates_merge_max() {
        let mut b =
            GraphBuilder::new(Direction::Directed, 2).duplicate_policy(DuplicatePolicy::MergeMax);
        b.add_weighted_edge(0, 1, 1.5);
        b.add_weighted_edge(0, 1, 2.5);
        let g = b.build().unwrap();
        assert_eq!(g.neighbor_weights(0).unwrap(), &[2.5]);
    }

    #[test]
    fn duplicates_kept_when_asked() {
        let mut b =
            GraphBuilder::new(Direction::Directed, 2).duplicate_policy(DuplicatePolicy::Keep);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(Direction::Undirected, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loops_kept_or_rejected_by_policy() {
        let mut keep =
            GraphBuilder::new(Direction::Directed, 1).self_loop_policy(SelfLoopPolicy::Keep);
        keep.add_edge(0, 0);
        assert_eq!(keep.build().unwrap().neighbors(0), &[0]);

        let mut err =
            GraphBuilder::new(Direction::Directed, 1).self_loop_policy(SelfLoopPolicy::Error);
        err.add_edge(0, 0);
        assert!(err.build().is_err());
    }

    #[test]
    fn out_of_range_edge_is_deferred_error() {
        let mut b = GraphBuilder::new(Direction::Directed, 2);
        b.add_edge(0, 5);
        b.add_edge(0, 1); // ignored after the error
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn invalid_weight_is_deferred_error() {
        let mut b = GraphBuilder::new(Direction::Directed, 2);
        b.add_weighted_edge(0, 1, f64::INFINITY);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::InvalidWeight(_)
        ));
    }

    #[test]
    fn ensure_node_grows_graph() {
        let mut b = GraphBuilder::new(Direction::Directed, 0);
        b.ensure_node(3);
        b.add_edge(3, 0);
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn neighborhoods_come_out_sorted() {
        let mut b = GraphBuilder::new(Direction::Directed, 5);
        for t in [4, 1, 3, 2] {
            b.add_edge(0, t);
        }
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn mixed_weighted_unweighted_promotes_to_weighted() {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_edge(0, 1); // implicit weight 1.0
        b.add_weighted_edge(0, 2, 3.0);
        let g = b.build().unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.neighbor_weights(0).unwrap(), &[1.0, 3.0]);
    }

    #[test]
    fn undirected_self_loop_kept_only_once() {
        let mut b =
            GraphBuilder::new(Direction::Undirected, 2).self_loop_policy(SelfLoopPolicy::Keep);
        b.add_edge(0, 0);
        let g = b.build().unwrap();
        assert_eq!(g.neighbors(0), &[0]);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn empty_build_succeeds() {
        let g = GraphBuilder::new(Direction::Undirected, 3).build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
    }
}
