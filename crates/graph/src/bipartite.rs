//! Bipartite affiliation graphs (entities × containers).
//!
//! The paper's eight data graphs are all derived from affiliation data:
//! actors appear in movies, authors write articles, listeners follow artists,
//! commenters review products. [`BipartiteGraph`] stores that membership
//! relation with CSR adjacency in both directions so that
//! [`crate::projection`] can produce the co-occurrence graphs the paper
//! evaluates.

use crate::csr::NodeId;
use crate::error::{GraphError, Result};

/// An immutable bipartite graph between `num_left` entities and `num_right`
/// containers. Memberships are unweighted (an entity either belongs to a
/// container or not); multiplicity is collapsed at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    num_left: usize,
    num_right: usize,
    // left -> right adjacency
    left_offsets: Vec<usize>,
    left_targets: Vec<NodeId>,
    // right -> left adjacency
    right_offsets: Vec<usize>,
    right_targets: Vec<NodeId>,
}

impl BipartiteGraph {
    /// Build from a membership list of `(left, right)` pairs. Duplicate
    /// pairs are collapsed; ids must be in range.
    pub fn from_memberships(
        num_left: usize,
        num_right: usize,
        memberships: &[(NodeId, NodeId)],
    ) -> Result<Self> {
        if num_left > u32::MAX as usize {
            return Err(GraphError::TooManyNodes(num_left));
        }
        if num_right > u32::MAX as usize {
            return Err(GraphError::TooManyNodes(num_right));
        }
        for &(l, r) in memberships {
            if (l as usize) >= num_left {
                return Err(GraphError::NodeOutOfRange {
                    node: l,
                    num_nodes: num_left as u32,
                });
            }
            if (r as usize) >= num_right {
                return Err(GraphError::NodeOutOfRange {
                    node: r,
                    num_nodes: num_right as u32,
                });
            }
        }
        let mut pairs: Vec<(NodeId, NodeId)> = memberships.to_vec();
        pairs.sort_unstable();
        pairs.dedup();

        let (left_offsets, left_targets) = Self::to_csr(num_left, pairs.iter().copied());
        let mut flipped: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(l, r)| (r, l)).collect();
        flipped.sort_unstable();
        let (right_offsets, right_targets) = Self::to_csr(num_right, flipped.iter().copied());

        Ok(Self {
            num_left,
            num_right,
            left_offsets,
            left_targets,
            right_offsets,
            right_targets,
        })
    }

    fn to_csr(
        n: usize,
        sorted_pairs: impl Iterator<Item = (NodeId, NodeId)>,
    ) -> (Vec<usize>, Vec<NodeId>) {
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::new();
        for (s, t) in sorted_pairs {
            offsets[s as usize + 1] += 1;
            targets.push(t);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        (offsets, targets)
    }

    /// Number of entity (left) nodes.
    pub fn num_left(&self) -> usize {
        self.num_left
    }

    /// Number of container (right) nodes.
    pub fn num_right(&self) -> usize {
        self.num_right
    }

    /// Number of distinct memberships.
    pub fn num_memberships(&self) -> usize {
        self.left_targets.len()
    }

    /// Containers the entity `l` belongs to (sorted).
    pub fn containers_of(&self, l: NodeId) -> &[NodeId] {
        let l = l as usize;
        &self.left_targets[self.left_offsets[l]..self.left_offsets[l + 1]]
    }

    /// Entities that belong to container `r` (sorted).
    pub fn members_of(&self, r: NodeId) -> &[NodeId] {
        let r = r as usize;
        &self.right_targets[self.right_offsets[r]..self.right_offsets[r + 1]]
    }

    /// Degree of a left node (number of containers it belongs to).
    pub fn left_degree(&self, l: NodeId) -> u32 {
        self.containers_of(l).len() as u32
    }

    /// Degree of a right node (number of members).
    pub fn right_degree(&self, r: NodeId) -> u32 {
        self.members_of(r).len() as u32
    }

    /// Iterate all memberships as `(left, right)`.
    pub fn memberships(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_left as u32)
            .flat_map(move |l| self.containers_of(l).iter().map(move |&r| (l, r)))
    }

    /// Swap the two sides (entities become containers and vice versa).
    pub fn transpose(&self) -> BipartiteGraph {
        BipartiteGraph {
            num_left: self.num_right,
            num_right: self.num_left,
            left_offsets: self.right_offsets.clone(),
            left_targets: self.right_targets.clone(),
            right_offsets: self.left_offsets.clone(),
            right_targets: self.left_targets.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        // actors {0,1,2} x movies {0,1}
        // actor 0 in movie 0; actor 1 in movies 0,1; actor 2 in movie 1
        BipartiteGraph::from_memberships(3, 2, &[(0, 0), (1, 0), (1, 1), (2, 1)]).unwrap()
    }

    #[test]
    fn adjacency_both_directions() {
        let b = sample();
        assert_eq!(b.containers_of(1), &[0, 1]);
        assert_eq!(b.members_of(0), &[0, 1]);
        assert_eq!(b.members_of(1), &[1, 2]);
    }

    #[test]
    fn degrees() {
        let b = sample();
        assert_eq!(b.left_degree(1), 2);
        assert_eq!(b.right_degree(1), 2);
        assert_eq!(b.num_memberships(), 4);
    }

    #[test]
    fn duplicates_collapse() {
        let b = BipartiteGraph::from_memberships(1, 1, &[(0, 0), (0, 0)]).unwrap();
        assert_eq!(b.num_memberships(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(BipartiteGraph::from_memberships(1, 1, &[(1, 0)]).is_err());
        assert!(BipartiteGraph::from_memberships(1, 1, &[(0, 1)]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let b = sample();
        let t = b.transpose();
        assert_eq!(t.num_left(), 2);
        assert_eq!(t.containers_of(0), b.members_of(0));
        assert_eq!(t.transpose(), b);
    }

    #[test]
    fn memberships_iterator() {
        let b = sample();
        let ms: Vec<_> = b.memberships().collect();
        assert_eq!(ms, vec![(0, 0), (1, 0), (1, 1), (2, 1)]);
    }

    #[test]
    fn empty_sides_allowed() {
        let b = BipartiteGraph::from_memberships(0, 0, &[]).unwrap();
        assert_eq!(b.num_memberships(), 0);
    }
}
