//! Cached structural transpose (CSC view) of a [`CsrGraph`].
//!
//! The pull-based PageRank engine iterates over *incoming* arcs of every
//! destination node, while [`CsrGraph`] stores *outgoing* adjacency (CSR).
//! [`CscStructure`] materializes the transpose once per graph:
//!
//! * `in_offsets` / `in_sources` — the classic CSC arrays: the sources of
//!   the arcs pointing at node `v` live at `in_sources[in_offsets[v]..in_offsets[v+1]]`;
//! * the **arc permutation** `csc_slot_of_arc`, mapping every CSR arc index
//!   to its CSC slot. Per-arc values computed in CSR order (transition
//!   probabilities) can then be scattered into CSC order in one pass —
//!   a parameter sweep rewrites a probability array in place without ever
//!   rebuilding the structure;
//! * the dangling-node list (no out-arcs), needed by every dangling policy.
//!
//! The structure is purely topological: it depends on the graph only, never
//! on transition probabilities, so one build serves every `(p, α, β)` sweep
//! point. See `DESIGN.md` for how the engine layers on top.

use crate::csr::{CsrGraph, NodeId};
use crate::delta::ArcDelta;
use crate::error::{GraphError, Result};
use crate::permute::{narrow_offsets, Layout, NodePermutation};
use std::sync::{Arc, OnceLock};

/// The structural transpose of a [`CsrGraph`], plus the CSR→CSC arc
/// permutation. Build once per graph with [`CscStructure::build`]; after an
/// incremental edit, update it with [`CscStructure::patched`] instead of
/// rebuilding.
///
/// # Examples
/// ```
/// use d2pr_graph::builder::GraphBuilder;
/// use d2pr_graph::csr::Direction;
/// use d2pr_graph::transpose::CscStructure;
///
/// // 0 -> 1, 0 -> 2, 1 -> 2; node 2 is the in-degree hub.
/// let mut b = GraphBuilder::new(Direction::Directed, 3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 2);
/// b.add_edge(1, 2);
/// let g = b.build().unwrap();
///
/// let csc = CscStructure::build(&g);
/// assert_eq!(csc.in_neighbors(2), &[0, 1]);
/// assert_eq!(csc.dangling(), &[2]);
///
/// // Scatter per-arc values (computed in CSR order) into CSC order.
/// let mut csc_vals = vec![0.0; g.num_arcs()];
/// csc.scatter_arc_values(&[0.1, 0.2, 0.3], &mut csc_vals);
/// assert_eq!(csc_vals, vec![0.1, 0.2, 0.3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscStructure {
    /// `in_offsets[v]..in_offsets[v+1]` indexes `in_sources` for node `v`.
    in_offsets: Vec<usize>,
    /// Source endpoint of every incoming arc, grouped by destination.
    in_sources: Vec<NodeId>,
    /// `csc_slot_of_arc[k]` is the CSC slot of the `k`-th CSR arc.
    ///
    /// Kept behind a [`OnceLock`] so a structure shared between engines
    /// (`Arc<CscStructure>`) can materialize the permutation lazily —
    /// [`CscStructure::ensure_arc_permutation`] takes `&self`, every
    /// sharer sees the one build, and structures that only ever serve
    /// factored operators never pay the `O(E)` rewrite at all.
    csc_slot_of_arc: OnceLock<Vec<usize>>,
    /// Nodes with no out-arcs.
    dangling: Vec<NodeId>,
    num_nodes: usize,
    /// `in_offsets` narrowed to `u32`, present whenever the arc count fits
    /// (see [`narrow_offsets`]). The pull kernels stream these instead of
    /// the wide offsets, halving the per-row index bytes; structures past
    /// `u32::MAX` arcs stay on the wide path.
    narrow_in_offsets: Option<Vec<u32>>,
    /// The node permutation this structure was built under (see
    /// [`CscStructure::with_layout`]); `None` for native order. Carried so
    /// serving layers can translate ids at the boundary, and propagated
    /// through [`CscStructure::patched`].
    permutation: Option<Arc<NodePermutation>>,
}

impl CscStructure {
    /// Build the transpose in a single pass over the CSR arc array.
    ///
    /// Cost: `O(V + E)` time, using the in-degrees the graph already caches
    /// for the counting sort — no per-arc re-counting pass.
    pub fn build(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let m = graph.num_arcs();
        let (offsets, targets, _) = graph.parts();

        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0usize);
        let mut acc = 0usize;
        for v in 0..n {
            acc += graph.in_degree(v as NodeId) as usize;
            in_offsets.push(acc);
        }
        debug_assert_eq!(acc, m);

        let mut cursor: Vec<usize> = in_offsets[..n].to_vec();
        let mut in_sources = vec![0 as NodeId; m];
        let mut csc_slot_of_arc = vec![0usize; m];
        let mut dangling = Vec::new();
        for v in 0..n {
            let (s, e) = (offsets[v], offsets[v + 1]);
            if s == e {
                dangling.push(v as NodeId);
                continue;
            }
            for k in s..e {
                let t = targets[k] as usize;
                let slot = cursor[t];
                cursor[t] += 1;
                in_sources[slot] = v as NodeId;
                csc_slot_of_arc[k] = slot;
            }
        }
        let narrow_in_offsets = narrow_offsets(&in_offsets).ok();
        Self {
            in_offsets,
            in_sources,
            csc_slot_of_arc: OnceLock::from(csc_slot_of_arc),
            dangling,
            num_nodes: n,
            narrow_in_offsets,
            permutation: None,
        }
    }

    /// Build the transpose under a cache-aware node [`Layout`]: permute the
    /// graph into internal order once, build the CSC over the permuted
    /// graph, and record the permutation on the structure.
    ///
    /// Returns the **internal-order** graph alongside the structure — the
    /// engine stack must run on that graph (its node `i` is external node
    /// [`NodePermutation::to_external`]`(i)`). External ids never change:
    /// callers translate per-node vectors and deltas at the boundary via
    /// [`CscStructure::permutation`]. [`Layout::Baseline`] returns a plain
    /// clone + [`CscStructure::build`] with no permutation attached.
    ///
    /// # Errors
    /// Propagates [`NodePermutation::permute_graph`] errors.
    pub fn with_layout(graph: &CsrGraph, layout: Layout) -> Result<(CsrGraph, CscStructure)> {
        match NodePermutation::for_layout(graph, layout) {
            None => Ok((graph.clone(), Self::build(graph))),
            Some(perm) => {
                let internal = perm.permute_graph(graph)?;
                let mut csc = Self::build(&internal);
                csc.permutation = Some(Arc::new(perm));
                Ok((internal, csc))
            }
        }
    }

    /// Drop the narrow (`u32`) offsets copy, forcing kernels onto the wide
    /// (`usize`) path. A benchmarking/testing aid for measuring the
    /// narrow-index win; a later [`CscStructure::patched`] re-narrows (the
    /// patched result must stay bit-identical to a fresh build).
    pub fn without_narrow_index(mut self) -> Self {
        self.narrow_in_offsets = None;
        self
    }

    /// Incremental maintenance: derive the transpose of `new_graph` from
    /// this structure plus the [`ArcDelta`] separating the two graphs,
    /// instead of rebuilding from scratch.
    ///
    /// What is reused and what is recomputed:
    ///
    /// * `in_offsets` — patched from the old prefix sums with the per-node
    ///   in-degree changes of the delta: `O(V + Δ)`;
    /// * `in_sources` — untouched destinations copy their old span
    ///   wholesale (sequential `memcpy`, no per-arc scatter); edited
    ///   destinations merge their old span with the delta;
    /// * the dangling list — patched: only sources appearing in the delta
    ///   are re-examined;
    /// * `csc_slot_of_arc` — rewritten in one linear pass over the new CSR
    ///   (every CSR arc index after the first edit shifts, so per-entry
    ///   work is unavoidable; the pass is sequential-write).
    ///
    /// The result is bit-identical to `CscStructure::build(new_graph)`
    /// (property-tested in `tests/delta_props.rs`).
    ///
    /// # Errors
    /// Returns [`GraphError::Snapshot`] when the delta does not actually
    /// connect this structure's graph to `new_graph`: node/arc count
    /// mismatch, an edit referencing a node out of range, a deleted arc
    /// that does not exist in the old structure (or is still present in
    /// the new graph), or an inserted arc missing from the new graph. The
    /// per-arc presence checks assume simple-graph semantics (no parallel
    /// arcs among edited pairs), which [`DeltaGraph`](crate::delta::DeltaGraph)
    /// guarantees.
    pub fn patched(&self, new_graph: &CsrGraph, delta: &ArcDelta) -> Result<CscStructure> {
        self.patched_inner(new_graph, delta, true)
    }

    /// [`CscStructure::patched`] without the CSR→CSC arc permutation — the
    /// permutation is the only `O(E)`-rewrite part of a patch (every CSR
    /// arc index after the first edit shifts), and only consumers of
    /// [`CscStructure::scatter_arc_values`] need it. Pull kernels over
    /// factored operators (the degree-decoupled serving path) read just
    /// `in_offsets`/`in_sources`/`dangling`, so a trickle update patches in
    /// `O(V + Δ + copy)` and skips the permutation entirely.
    ///
    /// The result reports [`CscStructure::has_arc_permutation`] `== false`;
    /// rebuild on demand with [`CscStructure::ensure_arc_permutation`]
    /// (which restores bit-identity with a fresh build).
    ///
    /// # Errors
    /// As [`CscStructure::patched`].
    pub fn patched_structural(
        &self,
        new_graph: &CsrGraph,
        delta: &ArcDelta,
    ) -> Result<CscStructure> {
        self.patched_inner(new_graph, delta, false)
    }

    fn patched_inner(
        &self,
        new_graph: &CsrGraph,
        delta: &ArcDelta,
        with_permutation: bool,
    ) -> Result<CscStructure> {
        let n = self.num_nodes;
        // Node growth is append-only: a delta may add ids at the tail
        // (they have no old in-span), never reorder or shrink. Removal
        // tombstones at the DeltaGraph layer, so the id space only grows.
        let n_new = n + delta.added_nodes() as usize;
        if new_graph.num_nodes() != n_new {
            return Err(GraphError::Snapshot(format!(
                "patched: delta implies {} nodes but the new graph has {}",
                n_new,
                new_graph.num_nodes()
            )));
        }
        let expected_arcs = (self.num_arcs() + delta.inserted.len())
            .checked_sub(delta.deleted.len())
            .ok_or_else(|| GraphError::Snapshot("patched: delta deletes too many arcs".into()))?;
        if new_graph.num_arcs() != expected_arcs {
            return Err(GraphError::Snapshot(format!(
                "patched: delta implies {} arcs but the new graph has {}",
                expected_arcs,
                new_graph.num_arcs()
            )));
        }
        // Per-arc validation: the aggregate count check cannot catch a
        // delta that names the wrong arcs (the merge below would then
        // silently build a corrupt permutation in release builds).
        for &(s, t) in delta.inserted.iter().chain(&delta.deleted) {
            if (s as usize) >= n_new || (t as usize) >= n_new {
                return Err(GraphError::Snapshot(format!(
                    "patched: delta arc {s} -> {t} is out of range for {n_new} nodes"
                )));
            }
        }
        for &(s, t) in &delta.inserted {
            if !new_graph.has_arc(s, t) {
                return Err(GraphError::Snapshot(format!(
                    "patched: inserted arc {s} -> {t} is missing from the new graph"
                )));
            }
        }
        for &(s, t) in &delta.deleted {
            if new_graph.has_arc(s, t) {
                return Err(GraphError::Snapshot(format!(
                    "patched: deleted arc {s} -> {t} is still present in the new graph"
                )));
            }
        }

        // Per-destination edit lists, sorted by (target, source). The delta
        // arrives sorted by (source, target), so a re-sort is needed.
        let mut ins: Vec<(NodeId, NodeId)> = delta.inserted.iter().map(|&(s, t)| (t, s)).collect();
        let mut del: Vec<(NodeId, NodeId)> = delta.deleted.iter().map(|&(s, t)| (t, s)).collect();
        ins.sort_unstable();
        del.sort_unstable();

        // in_offsets: patch the prefix sums; in_sources: span-copy or merge.
        let m = new_graph.num_arcs();
        let mut in_offsets = Vec::with_capacity(n_new + 1);
        in_offsets.push(0usize);
        let mut in_sources: Vec<NodeId> = Vec::with_capacity(m);
        let (mut ii, mut di) = (0usize, 0usize);
        for v in 0..n_new {
            let old_span: &[NodeId] = if v < n {
                &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
            } else {
                &[]
            };
            let ins_here = run_len(&ins, ii, v as NodeId);
            let del_here = run_len(&del, di, v as NodeId);
            if ins_here == 0 && del_here == 0 {
                in_sources.extend_from_slice(old_span);
            } else {
                merge_span(
                    old_span,
                    &ins[ii..ii + ins_here],
                    &del[di..di + del_here],
                    &mut in_sources,
                )
                .map_err(|src| {
                    GraphError::Snapshot(format!(
                        "patched: deleted arc {src} -> {v} is not in the old structure"
                    ))
                })?;
                ii += ins_here;
                di += del_here;
            }
            in_offsets.push(in_sources.len());
        }
        debug_assert_eq!(in_sources.len(), m);

        // Dangling list: only sources named by the delta — plus freshly
        // appended ids (isolated until arcs reference them) — can change
        // state.
        let mut changed: Vec<NodeId> = delta
            .inserted
            .iter()
            .chain(&delta.deleted)
            .map(|&(s, _)| s)
            .chain(n as NodeId..n_new as NodeId)
            .collect();
        changed.sort_unstable();
        changed.dedup();
        let mut dangling: Vec<NodeId> = self
            .dangling
            .iter()
            .copied()
            .filter(|v| changed.binary_search(v).is_err())
            .chain(
                changed
                    .iter()
                    .copied()
                    .filter(|&v| new_graph.out_degree(v) == 0),
            )
            .collect();
        dangling.sort_unstable();

        let narrow_in_offsets = narrow_offsets(&in_offsets).ok();
        let out = CscStructure {
            in_offsets,
            in_sources,
            csc_slot_of_arc: OnceLock::new(),
            dangling,
            num_nodes: n_new,
            narrow_in_offsets,
            permutation: self.permutation.clone(),
        };
        if with_permutation {
            out.ensure_arc_permutation(new_graph);
        }
        Ok(out)
    }

    /// `true` when the CSR→CSC arc permutation is materialized (always the
    /// case after [`CscStructure::build`] / [`CscStructure::patched`];
    /// `false` after [`CscStructure::patched_structural`] until
    /// [`CscStructure::ensure_arc_permutation`] runs).
    pub fn has_arc_permutation(&self) -> bool {
        self.csc_slot_of_arc.get().is_some()
    }

    /// Materialize the CSR→CSC arc permutation (no-op when already built)
    /// in one linear pass over `graph`'s CSR arcs against this structure's
    /// offsets — identical slot assignment to a fresh build. `graph` must
    /// be the graph this structure describes.
    ///
    /// Takes `&self`: a structure shared between engines behind an `Arc`
    /// builds the permutation exactly once, and every sharer observes it.
    pub fn ensure_arc_permutation(&self, graph: &CsrGraph) {
        let n = self.num_nodes;
        let m = self.num_arcs();
        assert_eq!(graph.num_nodes(), n, "permutation rebuild: node count");
        assert_eq!(graph.num_arcs(), m, "permutation rebuild: arc count");
        self.csc_slot_of_arc.get_or_init(|| {
            let (offsets, targets, _) = graph.parts();
            let mut cursor: Vec<usize> = self.in_offsets[..n].to_vec();
            let mut slots = vec![0usize; m];
            for v in 0..n {
                let (s, e) = (offsets[v], offsets[v + 1]);
                for (slot_out, &t) in slots[s..e].iter_mut().zip(&targets[s..e]) {
                    let slot = cursor[t as usize];
                    cursor[t as usize] += 1;
                    debug_assert_eq!(self.in_sources[slot], v as NodeId, "patched span order");
                    *slot_out = slot;
                }
            }
            slots
        });
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of arcs covered.
    pub fn num_arcs(&self) -> usize {
        self.in_sources.len()
    }

    /// CSC offsets array (`num_nodes + 1` entries).
    pub fn in_offsets(&self) -> &[usize] {
        &self.in_offsets
    }

    /// CSC source array, parallel to any CSC-ordered per-arc value array.
    pub fn in_sources(&self) -> &[NodeId] {
        &self.in_sources
    }

    /// The `u32` copy of the offsets, when the arc count fits the narrow
    /// index (see [`narrow_offsets`]); `None` past `u32::MAX` arcs or after
    /// [`CscStructure::without_narrow_index`].
    pub fn narrow_in_offsets(&self) -> Option<&[u32]> {
        self.narrow_in_offsets.as_deref()
    }

    /// `true` when the kernels can stream `u32` offsets for this structure.
    pub fn has_narrow_index(&self) -> bool {
        self.narrow_in_offsets.is_some()
    }

    /// The node permutation this structure was built under, or `None` for
    /// native order (see [`CscStructure::with_layout`]).
    pub fn permutation(&self) -> Option<&Arc<NodePermutation>> {
        self.permutation.as_ref()
    }

    /// The CSR→CSC arc permutation: element `k` is the CSC slot of CSR arc
    /// `k`. Empty until materialized (see
    /// [`CscStructure::has_arc_permutation`]).
    pub fn csc_slot_of_arc(&self) -> &[usize] {
        self.csc_slot_of_arc.get().map_or(&[], Vec::as_slice)
    }

    /// Nodes with no out-arcs, ascending.
    pub fn dangling(&self) -> &[NodeId] {
        &self.dangling
    }

    /// Sources of the arcs pointing at `v`.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Scatter CSR-ordered per-arc values into CSC order.
    ///
    /// # Panics
    /// Panics when either slice's length differs from the arc count.
    pub fn scatter_arc_values(&self, csr_values: &[f64], csc_out: &mut [f64]) {
        assert_eq!(
            csr_values.len(),
            self.num_arcs(),
            "CSR value array must cover all arcs"
        );
        assert_eq!(
            csc_out.len(),
            self.num_arcs(),
            "CSC output array must cover all arcs"
        );
        let slots = self
            .csc_slot_of_arc
            .get()
            .expect(
                "arc permutation not materialized (structure came from \
                 `patched_structural`); call `ensure_arc_permutation` first",
            )
            .as_slice();
        for (k, &val) in csr_values.iter().enumerate() {
            csc_out[slots[k]] = val;
        }
    }

    /// Partition destination nodes `0..num_nodes` into `parts` contiguous
    /// ranges of approximately equal **incoming-arc count** (each range also
    /// counts one unit per node, so empty nodes cannot pile into one range).
    ///
    /// Node-count partitions are pathological on power-law graphs: a range
    /// holding the few high in-degree hubs does almost all the work. Using
    /// the prefix sums already stored in `in_offsets` makes this `O(V)` with
    /// no extra memory beyond the output.
    ///
    /// Guarantees: ranges are disjoint, consecutive, cover `0..num_nodes`
    /// exactly, and at most `parts` ranges are returned (fewer when the
    /// graph has fewer nodes than `parts`).
    pub fn arc_balanced_partition(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        arc_balanced_partition(&self.in_offsets, parts)
    }
}

/// Length of the run of edits targeting `t`, starting at `start`. `edits`
/// is sorted by `(target, source)` and runs are consumed in ascending
/// target order, so the run (possibly empty) always begins at `start`.
fn run_len(edits: &[(NodeId, NodeId)], start: usize, t: NodeId) -> usize {
    edits[start..]
        .iter()
        .take_while(|&&(tt, _)| tt == t)
        .count()
}

/// Merge one destination's old source span (ascending) with its inserted
/// sources minus its deleted sources (both `(target, source)` pairs of one
/// fixed target, ascending by source), appending to `out`. Each deletion
/// consumes exactly one matching occurrence. Returns the source of an
/// unmatched deletion as the error.
fn merge_span(
    old: &[NodeId],
    ins: &[(NodeId, NodeId)],
    del: &[(NodeId, NodeId)],
    out: &mut Vec<NodeId>,
) -> std::result::Result<(), NodeId> {
    let mut ip = 0usize;
    let mut dp = 0usize;
    for &src in old {
        while ip < ins.len() && ins[ip].1 < src {
            out.push(ins[ip].1);
            ip += 1;
        }
        if dp < del.len() {
            if del[dp].1 < src {
                return Err(del[dp].1);
            }
            if del[dp].1 == src {
                dp += 1;
                continue;
            }
        }
        out.push(src);
    }
    for &(_, s) in &ins[ip..] {
        out.push(s);
    }
    if dp < del.len() {
        return Err(del[dp].1);
    }
    Ok(())
}

/// See [`CscStructure::arc_balanced_partition`]; `offsets` is any CSR/CSC
/// offsets array (length `n + 1`, non-decreasing, starting at 0).
pub fn arc_balanced_partition(offsets: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(!offsets.is_empty(), "offsets array must have length n + 1");
    let n = offsets.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    // Weight of node v = in_degree(v) + 1; total = m + n. The +1 keeps
    // ranges bounded even when arcs concentrate on a few destinations.
    let total = offsets[n] + n;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let target = total * (i + 1) / parts;
        let mut end = start;
        // Advance until this range's cumulative weight reaches the target.
        while end < n && offsets[end + 1] + (end + 1) <= target {
            end += 1;
        }
        // Leave at least one node for each remaining range.
        let remaining_parts = parts - i - 1;
        end = end.min(n - remaining_parts).max(start + 1);
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, n, "partition must cover all nodes");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::Direction;
    use crate::generators::barabasi_albert;

    fn sample() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 2, 3 dangling; node 2 is the in-degree hub.
        let mut b = GraphBuilder::new(Direction::Directed, 4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.build().unwrap()
    }

    #[test]
    fn transpose_matches_in_arcs() {
        let g = sample();
        let t = CscStructure::build(&g);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_arcs(), 3);
        assert_eq!(t.in_neighbors(0), &[] as &[NodeId]);
        assert_eq!(t.in_neighbors(1), &[0]);
        assert_eq!(t.in_neighbors(2), &[0, 1]);
        assert_eq!(t.dangling(), &[2, 3]);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let g = barabasi_albert(300, 3, 11).unwrap();
        let t = CscStructure::build(&g);
        let mut seen = vec![false; g.num_arcs()];
        for &slot in t.csc_slot_of_arc() {
            assert!(!seen[slot], "slot {slot} hit twice");
            seen[slot] = true;
        }
        assert!(seen.into_iter().all(|x| x));
    }

    #[test]
    fn scatter_reorders_arc_values() {
        let g = sample();
        let t = CscStructure::build(&g);
        // CSR arc order: (0->1), (0->2), (1->2). Tag each with its target.
        let csr_vals = [1.0, 2.0, 2.5];
        let mut csc_vals = vec![0.0; 3];
        t.scatter_arc_values(&csr_vals, &mut csc_vals);
        // CSC order groups by destination: [arc into 1, arcs into 2].
        assert_eq!(csc_vals, vec![1.0, 2.0, 2.5]);
        // The value at each CSC slot must describe the same arc: check via
        // in_sources alignment on a reversed tagging.
        let csr_tag_source = [0.0, 0.0, 1.0];
        let mut csc_tag = vec![-1.0; 3];
        t.scatter_arc_values(&csr_tag_source, &mut csc_tag);
        for v in g.nodes() {
            let s = t.in_offsets()[v as usize];
            for (i, &src) in t.in_neighbors(v).iter().enumerate() {
                assert_eq!(csc_tag[s + i], f64::from(src));
            }
        }
    }

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let g = barabasi_albert(500, 4, 3).unwrap();
        let t = CscStructure::build(&g);
        for parts in [1, 2, 3, 7, 16, 499, 500, 5000] {
            let ranges = t.arc_balanced_partition(parts);
            assert!(ranges.len() <= parts);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be consecutive");
                assert!(r.start < r.end, "ranges must be non-empty");
                next = r.end;
            }
            assert_eq!(next, 500, "partition must cover all nodes");
        }
    }

    #[test]
    fn partition_balances_arcs_on_skewed_graphs() {
        // Star pointing at node 0: all arcs land in one destination.
        let mut b = GraphBuilder::new(Direction::Directed, 1000);
        for v in 1..1000u32 {
            b.add_edge(v, 0);
        }
        let g = b.build().unwrap();
        let t = CscStructure::build(&g);
        let ranges = t.arc_balanced_partition(4);
        // The hub's range must be small (it alone carries ~half the weight),
        // rather than the n/4 a node-count split would produce.
        assert!(
            ranges[0].len() < 250,
            "hub range got {} nodes",
            ranges[0].len()
        );
        let arcs_in = |r: &std::ops::Range<usize>| t.in_offsets()[r.end] - t.in_offsets()[r.start];
        assert!(
            arcs_in(&ranges[0]) >= 999 / 2,
            "hub range must carry the hub's arcs"
        );
    }

    #[test]
    fn patched_matches_fresh_build() {
        use crate::delta::{DeltaGraph, EdgeBatch};
        let g = barabasi_albert(200, 3, 17).unwrap();
        let csc = CscStructure::build(&g);
        let mut dg = DeltaGraph::new(g.clone()).unwrap();
        let mut batch = EdgeBatch::new();
        // Delete a few existing edges and insert a few new ones.
        batch.delete(0, g.neighbors(0)[0]);
        batch.delete(5, g.neighbors(5)[0]);
        for (u, v) in [(1u32, 150u32), (7, 199), (42, 43)] {
            if !g.has_arc(u, v) {
                batch.insert(u, v);
            }
        }
        let out = dg.apply_batch(&batch).unwrap();
        let g2 = dg.snapshot();
        let patched = csc.patched(&g2, &out.delta).unwrap();
        assert_eq!(patched, CscStructure::build(&g2));
    }

    #[test]
    fn patched_structural_skips_then_rebuilds_permutation() {
        use crate::delta::{DeltaGraph, EdgeBatch};
        let g = barabasi_albert(150, 3, 29).unwrap();
        let csc = CscStructure::build(&g);
        assert!(csc.has_arc_permutation());
        let mut dg = DeltaGraph::new(g.clone()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.delete(2, g.neighbors(2)[0]).insert(4, 140);
        let out = dg.apply_batch(&batch).unwrap();
        let g2 = dg.snapshot();
        let structural = csc.patched_structural(&g2, &out.delta).unwrap();
        assert!(!structural.has_arc_permutation());
        let full = csc.patched(&g2, &out.delta).unwrap();
        // Topology agrees without the permutation ...
        assert_eq!(structural.in_offsets(), full.in_offsets());
        assert_eq!(structural.in_sources(), full.in_sources());
        assert_eq!(structural.dangling(), full.dangling());
        // ... and materializing it (through a shared reference, as
        // `Arc`-sharing engines do) restores bit-identity with a fresh
        // build.
        structural.ensure_arc_permutation(&g2);
        assert_eq!(structural, CscStructure::build(&g2));
    }

    #[test]
    fn patched_handles_node_growth_and_removal() {
        use crate::delta::{DeltaGraph, EdgeBatch};
        let g = barabasi_albert(100, 3, 41).unwrap();
        let csc = CscStructure::build(&g);
        let mut dg = DeltaGraph::new(g.clone()).unwrap();
        let mut batch = EdgeBatch::new();
        // Grow by 3: connect one new node, leave two isolated; tombstone
        // an existing node.
        batch
            .add_nodes(3)
            .insert(100, 7)
            .insert(12, 101)
            .remove_node(5);
        let out = dg.apply_batch(&batch).unwrap();
        let g2 = dg.snapshot();
        assert_eq!(g2.num_nodes(), 103);
        let patched = csc.patched(&g2, &out.delta).unwrap();
        assert_eq!(patched, CscStructure::build(&g2));
        // Isolated fresh ids and the tombstoned node are dangling.
        assert!(patched.dangling().contains(&101) || g2.out_degree(101) > 0);
        assert!(patched.dangling().contains(&102));
        assert!(patched.dangling().contains(&5));
        // Structural patch agrees too.
        let structural = csc.patched_structural(&g2, &out.delta).unwrap();
        structural.ensure_arc_permutation(&g2);
        assert_eq!(structural, CscStructure::build(&g2));
        // A stale (count-mismatched) growth claim is rejected.
        let mut wrong = out.delta.clone();
        wrong.nodes_after += 1;
        assert!(matches!(
            csc.patched(&g2, &wrong).unwrap_err(),
            crate::error::GraphError::Snapshot(_)
        ));
    }

    #[test]
    fn patched_creates_and_heals_dangling() {
        // 0 -> 1 only; deleting it makes 0 dangling, inserting 1 -> 0
        // heals 1.
        let mut b = GraphBuilder::new(Direction::Directed, 2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let csc = CscStructure::build(&g);
        assert_eq!(csc.dangling(), &[1]);

        let g2 = GraphBuilder::new(Direction::Directed, 2).build().unwrap();
        let delta = crate::delta::ArcDelta {
            inserted: vec![],
            deleted: vec![(0, 1)],
            deleted_weights: vec![1.0],
            ..Default::default()
        };
        let patched = csc.patched(&g2, &delta).unwrap();
        assert_eq!(patched, CscStructure::build(&g2));
        assert_eq!(patched.dangling(), &[0, 1]);
    }

    #[test]
    fn patched_rejects_inconsistent_deltas() {
        let g = sample();
        let csc = CscStructure::build(&g);
        // Arc-count mismatch.
        let err = csc
            .patched(
                &g,
                &crate::delta::ArcDelta {
                    inserted: vec![(3, 0)],
                    inserted_weights: vec![1.0],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::GraphError::Snapshot(_)));
        // Deleting an arc that does not exist.
        let mut b = GraphBuilder::new(Direction::Directed, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g2 = b.build().unwrap();
        let err = csc
            .patched(
                &g2,
                &crate::delta::ArcDelta {
                    deleted: vec![(3, 2)],
                    deleted_weights: vec![1.0],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::GraphError::Snapshot(_)));
    }

    #[test]
    fn patched_rejects_count_matching_but_wrong_delta() {
        // sample(): arcs 0->1, 0->2, 1->2. Swap 1->2 for 1->3: the new
        // graph gained (1, 3), but the delta claims (1, 0) was inserted —
        // counts match, content does not.
        let g = sample();
        let csc = CscStructure::build(&g);
        let mut b = GraphBuilder::new(Direction::Directed, 4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        let g2 = b.build().unwrap();
        let err = csc
            .patched(
                &g2,
                &crate::delta::ArcDelta {
                    inserted: vec![(1, 0)],
                    inserted_weights: vec![1.0],
                    deleted: vec![(1, 2)],
                    deleted_weights: vec![1.0],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::GraphError::Snapshot(_)));
        // The honest delta succeeds.
        let ok = csc
            .patched(
                &g2,
                &crate::delta::ArcDelta {
                    inserted: vec![(1, 3)],
                    inserted_weights: vec![1.0],
                    deleted: vec![(1, 2)],
                    deleted_weights: vec![1.0],
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(ok, CscStructure::build(&g2));
        // Out-of-range edits are rejected, not panicked on.
        let err = csc
            .patched(
                &g2,
                &crate::delta::ArcDelta {
                    inserted: vec![(1, 9)],
                    inserted_weights: vec![1.0],
                    deleted: vec![(1, 2)],
                    deleted_weights: vec![1.0],
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, crate::error::GraphError::Snapshot(_)));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = GraphBuilder::new(Direction::Directed, 0).build().unwrap();
        let t = CscStructure::build(&g);
        assert_eq!(t.num_nodes(), 0);
        assert!(t.arc_balanced_partition(4).is_empty());

        let g1 = GraphBuilder::new(Direction::Directed, 1).build().unwrap();
        let t1 = CscStructure::build(&g1);
        assert_eq!(t1.dangling(), &[0]);
        assert_eq!(t1.arc_balanced_partition(8), vec![0..1]);
    }

    #[test]
    fn with_layout_matches_build_over_permuted_graph() {
        use crate::permute::Layout;
        let g = barabasi_albert(250, 3, 23).unwrap();
        // Baseline: identity, no permutation attached.
        let (bg, bcsc) = CscStructure::with_layout(&g, Layout::Baseline).unwrap();
        assert_eq!(bg, g);
        assert!(bcsc.permutation().is_none());
        assert_eq!(bcsc, CscStructure::build(&g));
        for layout in [Layout::DegreeDescending, Layout::ReverseCuthillMcKee] {
            let (pg, csc) = CscStructure::with_layout(&g, layout).unwrap();
            let perm = csc.permutation().expect("layout attaches a permutation");
            // The CSC topology equals a fresh build over the internal graph.
            assert_eq!(csc.in_offsets(), CscStructure::build(&pg).in_offsets());
            assert_eq!(csc.in_sources(), CscStructure::build(&pg).in_sources());
            // In-neighbor sets map through the permutation.
            for v in g.nodes() {
                let mut expect: Vec<u32> = CscStructure::build(&g)
                    .in_neighbors(v)
                    .iter()
                    .map(|&s| perm.to_internal(s))
                    .collect();
                expect.sort_unstable();
                assert_eq!(csc.in_neighbors(perm.to_internal(v)), expect.as_slice());
            }
        }
    }

    #[test]
    fn narrow_index_present_and_droppable() {
        let g = sample();
        let t = CscStructure::build(&g);
        assert!(t.has_narrow_index(), "3 arcs narrow trivially");
        let narrow = t.narrow_in_offsets().unwrap();
        assert_eq!(narrow.len(), t.in_offsets().len());
        for (w, &n) in t.in_offsets().iter().zip(narrow) {
            assert_eq!(*w, n as usize);
        }
        let wide = t.without_narrow_index();
        assert!(!wide.has_narrow_index());
        assert!(wide.narrow_in_offsets().is_none());
    }

    #[test]
    fn patched_propagates_permutation_and_renarrow() {
        use crate::delta::{DeltaGraph, EdgeBatch};
        use crate::permute::Layout;
        let g = barabasi_albert(120, 3, 31).unwrap();
        let (pg, csc) = CscStructure::with_layout(&g, Layout::DegreeDescending).unwrap();
        let perm = csc.permutation().unwrap().clone();
        // Edit the *internal-order* graph, as the serving layer does.
        let mut dg = DeltaGraph::new(pg.clone()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.delete(0, pg.neighbors(0)[0]).insert(3, 117);
        let out = dg.apply_batch(&batch).unwrap();
        let g2 = dg.snapshot();
        let patched = csc.patched(&g2, &out.delta).unwrap();
        // The permutation rides along and the narrow index is recomputed.
        assert!(Arc::ptr_eq(patched.permutation().unwrap(), &perm));
        assert!(patched.has_narrow_index());
        assert_eq!(
            patched.narrow_in_offsets().unwrap().last().copied(),
            Some(g2.num_arcs() as u32)
        );
        // Even a wide-forced structure re-narrows on patch (bit-identity
        // with fresh builds is what the delta property tests assert).
        let wide = CscStructure::build(&pg).without_narrow_index();
        let repatched = wide.patched(&g2, &out.delta).unwrap();
        assert_eq!(repatched, CscStructure::build(&g2));
    }
}
