//! Cache-aware node orderings for the pull kernel.
//!
//! The pull-based PageRank kernel is gather-bound: for every destination it
//! reads `rank[src]` for each in-neighbor `src`, and on a power-law graph in
//! arbitrary node order those reads scatter across the whole rank vector,
//! wasting a cache line per touched score. A [`NodePermutation`] relabels the
//! nodes once, at [`CscStructure`] build time, so that the hot sources land
//! close together:
//!
//! * [`Layout::DegreeDescending`] — nodes sorted by total degree, hubs
//!   first. The handful of hubs that appear in almost every in-neighbor
//!   list share a few cache lines at the front of the rank vector, so the
//!   gather hits L1/L2 for the bulk of its reads.
//! * [`Layout::ReverseCuthillMcKee`] — the classic bandwidth-reducing
//!   ordering (BFS from a peripheral low-degree node, neighbors in
//!   ascending-degree order, sequence reversed). Sources of one
//!   destination's in-list end up numerically close, so consecutive gather
//!   reads fall in nearby cache lines.
//!
//! The permutation is an internal detail of the engine stack: external node
//! ids never change. Serving-layer callers translate at the boundary —
//! O(1) per score lookup, O(batch) per edge delta — via the forward/inverse
//! maps exposed here (see `ServingEngine` in `d2pr-core`).
//!
//! This module also hosts the **index-narrowing** rule
//! ([`narrow_offsets`]): CSC offsets fit `u32` whenever the arc count does,
//! roughly halving the index bytes the kernel streams per row. The typed
//! [`LayoutError::IndexOverflow`] keeps huge graphs on the wide (`usize`)
//! path instead of truncating.
//!
//! [`CscStructure`]: crate::transpose::CscStructure

use crate::csr::{CsrGraph, NodeId};
use crate::error::{GraphError, Result};
use std::fmt;

/// Node-ordering strategy applied when building a
/// [`CscStructure`](crate::transpose::CscStructure) via
/// [`with_layout`](crate::transpose::CscStructure::with_layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Keep the graph's native node order (no permutation).
    #[default]
    Baseline,
    /// Sort nodes by total degree, descending — hot hubs share cache lines
    /// at the front of the rank vector.
    DegreeDescending,
    /// Reverse Cuthill–McKee — bandwidth reduction, so each destination's
    /// in-neighbor ids cluster numerically.
    ReverseCuthillMcKee,
}

impl Layout {
    /// All layouts, in bench-axis order.
    pub const ALL: [Layout; 3] = [
        Layout::Baseline,
        Layout::DegreeDescending,
        Layout::ReverseCuthillMcKee,
    ];

    /// Short stable name used as a bench-axis key.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Baseline => "baseline",
            Layout::DegreeDescending => "degree",
            Layout::ReverseCuthillMcKee => "rcm",
        }
    }
}

/// Errors from the layout / index-narrowing subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The structure's arc count does not fit the narrow (`u32`) index
    /// type; callers must stay on the wide (`usize`) path.
    IndexOverflow {
        /// Number of arcs that overflowed the narrow index.
        arcs: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::IndexOverflow { arcs } => {
                write!(f, "{arcs} arcs exceed the u32 narrow-index space")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Narrow a CSC/CSR offsets array (`usize`, length `n + 1`, non-decreasing)
/// to `u32`.
///
/// The offsets index the arc array, so they fit exactly when the arc count
/// (the last offset) does.
///
/// # Errors
/// Returns [`LayoutError::IndexOverflow`] when the arc count exceeds
/// `u32::MAX` — the caller keeps using the wide offsets instead of
/// truncating.
pub fn narrow_offsets(offsets: &[usize]) -> std::result::Result<Vec<u32>, LayoutError> {
    let arcs = offsets.last().copied().unwrap_or(0);
    if arcs > u32::MAX as usize {
        return Err(LayoutError::IndexOverflow { arcs });
    }
    Ok(offsets.iter().map(|&o| o as u32).collect())
}

/// A bijective node relabeling: `forward[external] = internal` and
/// `inverse[internal] = external`.
///
/// "External" ids are the caller-visible ids of the original graph;
/// "internal" ids are the cache-optimized order the engine computes in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePermutation {
    forward: Vec<NodeId>,
    inverse: Vec<NodeId>,
}

impl NodePermutation {
    /// Build from an ordering: `order[i]` is the external node placed at
    /// internal position `i`. `order` must be a permutation of `0..n`.
    fn from_order(order: Vec<NodeId>) -> Self {
        let mut forward = vec![0 as NodeId; order.len()];
        for (i, &v) in order.iter().enumerate() {
            forward[v as usize] = i as NodeId;
        }
        Self {
            forward,
            inverse: order,
        }
    }

    /// Rebuild a permutation from its forward map (`forward[external] =
    /// internal`), validating bijectivity — the deserialization entry
    /// point for snapshots that persist the layout.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`] when an entry is `>= n` or a target
    /// position is hit twice (the map is not a bijection of `0..n`).
    pub fn from_forward(forward: Vec<NodeId>) -> Result<Self> {
        let n = forward.len();
        let mut inverse = vec![0 as NodeId; n];
        let mut seen = vec![false; n];
        for (ext, &int) in forward.iter().enumerate() {
            let slot = int as usize;
            if slot >= n || seen[slot] {
                return Err(GraphError::NodeOutOfRange {
                    node: int,
                    num_nodes: n as u32,
                });
            }
            seen[slot] = true;
            inverse[slot] = ext as NodeId;
        }
        Ok(Self { forward, inverse })
    }

    /// Compute the permutation for `layout` over `graph`. Returns `None`
    /// for [`Layout::Baseline`] (identity — callers skip all translation).
    pub fn for_layout(graph: &CsrGraph, layout: Layout) -> Option<Self> {
        match layout {
            Layout::Baseline => None,
            Layout::DegreeDescending => Some(Self::degree_descending(graph)),
            Layout::ReverseCuthillMcKee => Some(Self::reverse_cuthill_mckee(graph)),
        }
    }

    /// Nodes sorted by total degree (in + out), descending; ties break by
    /// ascending id so the ordering is deterministic.
    pub fn degree_descending(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let mut order: Vec<NodeId> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| {
            let deg = graph.out_degree(v) as u64 + graph.in_degree(v) as u64;
            (std::cmp::Reverse(deg), v)
        });
        Self::from_order(order)
    }

    /// Reverse Cuthill–McKee over the symmetrized adjacency (arcs taken as
    /// undirected): BFS from the lowest-degree unvisited node of each
    /// component, enqueuing neighbors in ascending-degree order, with the
    /// final sequence reversed.
    pub fn reverse_cuthill_mckee(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let (adj_off, adj) = symmetrized_adjacency(graph);
        let deg = |v: usize| adj_off[v + 1] - adj_off[v];

        let mut starts: Vec<NodeId> = (0..n as u32).collect();
        starts.sort_unstable_by_key(|&v| (deg(v as usize), v));

        let mut visited = vec![false; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut frontier: Vec<NodeId> = Vec::new();
        for &start in &starts {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            let mut head = order.len();
            order.push(start);
            while head < order.len() {
                let v = order[head] as usize;
                head += 1;
                frontier.clear();
                for &w in &adj[adj_off[v]..adj_off[v + 1]] {
                    if !visited[w as usize] {
                        visited[w as usize] = true;
                        frontier.push(w);
                    }
                }
                frontier.sort_unstable_by_key(|&w| (deg(w as usize), w));
                order.extend_from_slice(&frontier);
            }
        }
        order.reverse();
        Self::from_order(order)
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` for the zero-node permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The external → internal map.
    pub fn forward(&self) -> &[NodeId] {
        &self.forward
    }

    /// The internal → external map.
    pub fn inverse(&self) -> &[NodeId] {
        &self.inverse
    }

    /// Internal id of external node `v`. Ids beyond the permutation's
    /// range map to themselves — a permutation computed over `n` nodes
    /// identity-extends to any node set grown past `n` (new ids are
    /// appended on both sides, so external and internal coincide there).
    #[inline]
    pub fn to_internal(&self, v: NodeId) -> NodeId {
        self.forward.get(v as usize).copied().unwrap_or(v)
    }

    /// External id of internal node `v`. Identity-extends beyond the
    /// permutation's range, mirroring [`NodePermutation::to_internal`].
    #[inline]
    pub fn to_external(&self, v: NodeId) -> NodeId {
        self.inverse.get(v as usize).copied().unwrap_or(v)
    }

    /// Relabel `graph` into internal order: node `v` becomes
    /// `to_internal(v)`, with each adjacency re-sorted ascending (weights
    /// follow their arcs).
    ///
    /// # Errors
    /// Returns [`GraphError::Snapshot`] when the permutation does not cover
    /// `graph`'s node count.
    pub fn permute_graph(&self, graph: &CsrGraph) -> Result<CsrGraph> {
        let n = graph.num_nodes();
        if self.len() != n {
            return Err(GraphError::Snapshot(format!(
                "permutation covers {} nodes but the graph has {n}",
                self.len()
            )));
        }
        let (offsets, targets, weights) = graph.parts();
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0usize);
        let mut new_targets: Vec<NodeId> = Vec::with_capacity(graph.num_arcs());
        let mut new_weights: Option<Vec<f64>> =
            weights.map(|_| Vec::with_capacity(graph.num_arcs()));
        let mut row: Vec<(NodeId, f64)> = Vec::new();
        for i in 0..n {
            let v = self.inverse[i] as usize;
            row.clear();
            for k in offsets[v]..offsets[v + 1] {
                let w = weights.map_or(1.0, |w| w[k]);
                row.push((self.forward[targets[k] as usize], w));
            }
            row.sort_unstable_by_key(|&(t, _)| t);
            for &(t, w) in &row {
                new_targets.push(t);
                if let Some(nw) = new_weights.as_mut() {
                    nw.push(w);
                }
            }
            new_offsets.push(new_targets.len());
        }
        CsrGraph::from_csr(graph.direction(), new_offsets, new_targets, new_weights)
    }

    /// Reorder an external-order per-node value array into internal order:
    /// `out[to_internal(v)] = external[v]`. Values past the permutation's
    /// range keep their positions (identity suffix — grown node sets).
    ///
    /// # Panics
    /// Panics when `external` is shorter than the permutation.
    pub fn permute_values(&self, external: &[f64], out: &mut Vec<f64>) {
        assert!(
            external.len() >= self.len(),
            "value array must cover all permuted nodes"
        );
        out.clear();
        out.resize(external.len(), 0.0);
        for (v, &x) in external.iter().enumerate() {
            let i = self.forward.get(v).map_or(v, |&i| i as usize);
            out[i] = x;
        }
    }

    /// Reorder an internal-order per-node value array back into external
    /// order: `out[v] = internal[to_internal(v)]`. Values past the
    /// permutation's range keep their positions (identity suffix).
    ///
    /// # Panics
    /// Panics when `internal` is shorter than the permutation.
    pub fn unpermute_values(&self, internal: &[f64], out: &mut Vec<f64>) {
        assert!(
            internal.len() >= self.len(),
            "value array must cover all permuted nodes"
        );
        out.clear();
        out.extend((0..internal.len()).map(|v| {
            let i = self.forward.get(v).map_or(v, |&i| i as usize);
            internal[i]
        }));
    }
}

/// Symmetrized adjacency of `graph` (every arc contributes both directions),
/// as `(offsets, neighbors)`. Duplicate entries (an undirected graph already
/// stores both directions) are harmless to the BFS consumers here.
fn symmetrized_adjacency(graph: &CsrGraph) -> (Vec<usize>, Vec<NodeId>) {
    let n = graph.num_nodes();
    let (offsets, targets, _) = graph.parts();
    let mut adj_off = Vec::with_capacity(n + 1);
    adj_off.push(0usize);
    let mut acc = 0usize;
    for v in 0..n {
        acc += (offsets[v + 1] - offsets[v]) + graph.in_degree(v as NodeId) as usize;
        adj_off.push(acc);
    }
    let mut cursor: Vec<usize> = adj_off[..n].to_vec();
    let mut adj = vec![0 as NodeId; acc];
    for v in 0..n {
        for &t in &targets[offsets[v]..offsets[v + 1]] {
            adj[cursor[v]] = t;
            cursor[v] += 1;
            adj[cursor[t as usize]] = v as NodeId;
            cursor[t as usize] += 1;
        }
    }
    (adj_off, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::Direction;
    use crate::generators::barabasi_albert;

    fn assert_bijection(p: &NodePermutation) {
        let n = p.len();
        let mut seen = vec![false; n];
        for v in 0..n as u32 {
            let i = p.to_internal(v);
            assert!(!seen[i as usize], "internal id {i} hit twice");
            seen[i as usize] = true;
            assert_eq!(p.to_external(i), v, "inverse must undo forward");
        }
        assert!(seen.into_iter().all(|x| x));
    }

    #[test]
    fn from_forward_round_trips_and_rejects_non_bijections() {
        let g = barabasi_albert(120, 3, 5).unwrap();
        let p = NodePermutation::degree_descending(&g);
        let rebuilt = NodePermutation::from_forward(p.forward().to_vec()).unwrap();
        assert_eq!(p, rebuilt);
        // Out-of-range entry.
        assert!(NodePermutation::from_forward(vec![0, 3, 1]).is_err());
        // Duplicate target.
        assert!(NodePermutation::from_forward(vec![0, 1, 1]).is_err());
        // Empty is the trivial bijection.
        assert!(NodePermutation::from_forward(Vec::new()).is_ok());
    }

    #[test]
    fn degree_descending_orders_hubs_first() {
        let g = barabasi_albert(300, 3, 7).unwrap();
        let p = NodePermutation::degree_descending(&g);
        assert_bijection(&p);
        let deg = |v: u32| g.out_degree(v) as u64 + g.in_degree(v) as u64;
        for i in 1..g.num_nodes() as u32 {
            assert!(
                deg(p.to_external(i - 1)) >= deg(p.to_external(i)),
                "degree must be non-increasing in internal order"
            );
        }
    }

    #[test]
    fn rcm_is_a_bijection_and_reduces_bandwidth() {
        let g = barabasi_albert(400, 3, 13).unwrap();
        let p = NodePermutation::reverse_cuthill_mckee(&g);
        assert_bijection(&p);
        // RCM must not *increase* the mean arc bandwidth on a graph like
        // this (BA graphs in insertion order already have some locality, so
        // assert non-degradation rather than a fixed factor).
        let bandwidth = |id_of: &dyn Fn(u32) -> u32| -> f64 {
            let mut total = 0.0f64;
            for (u, v) in g.arcs() {
                total += (id_of(u) as f64 - id_of(v) as f64).abs();
            }
            total / g.num_arcs() as f64
        };
        let before = bandwidth(&|v| v);
        let after = bandwidth(&|v| p.to_internal(v));
        assert!(
            after <= before * 1.05,
            "rcm bandwidth {after:.1} vs native {before:.1}"
        );
    }

    #[test]
    fn rcm_covers_disconnected_components() {
        let mut b = GraphBuilder::new(Direction::Undirected, 7);
        b.add_edge(0, 1);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        // 2 and 6 are isolated.
        let g = b.build().unwrap();
        let p = NodePermutation::reverse_cuthill_mckee(&g);
        assert_bijection(&p);
    }

    #[test]
    fn baseline_layout_has_no_permutation() {
        let g = barabasi_albert(50, 2, 1).unwrap();
        assert!(NodePermutation::for_layout(&g, Layout::Baseline).is_none());
        assert!(NodePermutation::for_layout(&g, Layout::DegreeDescending).is_some());
        assert!(NodePermutation::for_layout(&g, Layout::ReverseCuthillMcKee).is_some());
    }

    #[test]
    fn permute_graph_is_an_isomorphism() {
        let g = barabasi_albert(200, 4, 5).unwrap();
        for layout in [Layout::DegreeDescending, Layout::ReverseCuthillMcKee] {
            let p = NodePermutation::for_layout(&g, layout).unwrap();
            let pg = p.permute_graph(&g).unwrap();
            assert_eq!(pg.num_nodes(), g.num_nodes());
            assert_eq!(pg.num_arcs(), g.num_arcs());
            // Every original arc exists under the relabeling and degrees map.
            for (u, v) in g.arcs() {
                assert!(pg.has_arc(p.to_internal(u), p.to_internal(v)));
            }
            for v in g.nodes() {
                assert_eq!(g.out_degree(v), pg.out_degree(p.to_internal(v)));
                assert_eq!(g.in_degree(v), pg.in_degree(p.to_internal(v)));
            }
        }
    }

    #[test]
    fn permute_graph_carries_weights() {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_weighted_edge(0, 1, 2.5);
        b.add_weighted_edge(0, 2, 0.5);
        b.add_weighted_edge(2, 1, 4.0);
        let g = b.build().unwrap();
        let p = NodePermutation::degree_descending(&g);
        let pg = p.permute_graph(&g).unwrap();
        for (u, v, w) in g.weighted_arcs() {
            let (pu, pv) = (p.to_internal(u), p.to_internal(v));
            let ns = pg.neighbors(pu);
            let ws = pg.neighbor_weights(pu).unwrap();
            let k = ns.iter().position(|&t| t == pv).unwrap();
            assert_eq!(ws[k], w, "weight must follow its arc");
        }
    }

    #[test]
    fn permute_graph_rejects_size_mismatch() {
        let g = barabasi_albert(20, 2, 3).unwrap();
        let g2 = barabasi_albert(21, 2, 3).unwrap();
        let p = NodePermutation::degree_descending(&g);
        assert!(matches!(p.permute_graph(&g2), Err(GraphError::Snapshot(_))));
    }

    #[test]
    fn value_round_trip() {
        let g = barabasi_albert(64, 3, 9).unwrap();
        let p = NodePermutation::reverse_cuthill_mckee(&g);
        let external: Vec<f64> = (0..64).map(|v| v as f64 * 0.25).collect();
        let mut internal = Vec::new();
        p.permute_values(&external, &mut internal);
        for v in 0..64u32 {
            assert_eq!(internal[p.to_internal(v) as usize], external[v as usize]);
        }
        let mut back = Vec::new();
        p.unpermute_values(&internal, &mut back);
        assert_eq!(back, external);
    }

    #[test]
    fn narrow_offsets_accepts_boundary_and_rejects_overflow() {
        // At the threshold: an arc count of exactly u32::MAX still narrows.
        let at = vec![0usize, u32::MAX as usize];
        let narrowed = narrow_offsets(&at).unwrap();
        assert_eq!(narrowed, vec![0u32, u32::MAX]);
        // One past it: the typed overflow error, not a silent truncation.
        let over = vec![0usize, u32::MAX as usize + 1];
        let err = narrow_offsets(&over).unwrap_err();
        assert_eq!(
            err,
            LayoutError::IndexOverflow {
                arcs: u32::MAX as usize + 1
            }
        );
        assert!(err.to_string().contains("narrow-index"));
        // Empty and zero-arc arrays are fine.
        assert_eq!(narrow_offsets(&[]).unwrap(), Vec::<u32>::new());
        assert_eq!(narrow_offsets(&[0]).unwrap(), vec![0u32]);
    }

    #[test]
    fn layout_names_are_stable_bench_keys() {
        assert_eq!(Layout::Baseline.name(), "baseline");
        assert_eq!(Layout::DegreeDescending.name(), "degree");
        assert_eq!(Layout::ReverseCuthillMcKee.name(), "rcm");
        assert_eq!(Layout::default(), Layout::Baseline);
        assert_eq!(Layout::ALL.len(), 3);
    }

    #[test]
    fn empty_graph_permutations() {
        let g = GraphBuilder::new(Direction::Directed, 0).build().unwrap();
        let p = NodePermutation::degree_descending(&g);
        assert!(p.is_empty());
        let pg = p.permute_graph(&g).unwrap();
        assert_eq!(pg.num_nodes(), 0);
        let r = NodePermutation::reverse_cuthill_mckee(&g);
        assert_eq!(r.len(), 0);
    }
}
