//! Breadth-first and depth-first traversal.
//!
//! Used by [`crate::components`] and by tests/examples that need
//! reachability or distance information (e.g. checking that generated worlds
//! have a giant component before running random walks on them).

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Order in which nodes are visited from a source, breadth-first. Nodes not
/// reachable from `source` are absent.
pub fn bfs_order(g: &CsrGraph, source: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &t in g.neighbors(v) {
            if !seen[t as usize] {
                seen[t as usize] = true;
                queue.push_back(t);
            }
        }
    }
    order
}

/// Hop distance from `source` to every node (`u32::MAX` when unreachable).
pub fn bfs_distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &t in g.neighbors(v) {
            if dist[t as usize] == u32::MAX {
                dist[t as usize] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// Depth-first preorder from a source (iterative, so deep graphs cannot blow
/// the call stack).
pub fn dfs_order(g: &CsrGraph, source: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v as usize] {
            continue;
        }
        seen[v as usize] = true;
        order.push(v);
        // Push in reverse so the smallest neighbor is visited first,
        // giving a deterministic order matching recursive DFS.
        for &t in g.neighbors(v).iter().rev() {
            if !seen[t as usize] {
                stack.push(t);
            }
        }
    }
    order
}

/// Number of nodes reachable from `source` (including itself).
pub fn reachable_count(g: &CsrGraph, source: NodeId) -> usize {
    bfs_order(g, source).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::Direction;

    fn path4() -> CsrGraph {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn bfs_visits_in_level_order() {
        assert_eq!(bfs_order(&path4(), 1), vec![1, 0, 2, 3]);
    }

    #[test]
    fn bfs_distances_on_path() {
        assert_eq!(bfs_distances(&path4(), 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_nodes_marked() {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(reachable_count(&g, 0), 2);
    }

    #[test]
    fn dfs_preorder_deterministic() {
        // triangle + tail: 0-1, 0-2, 1-2, 2-3
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dfs_handles_deep_path_without_recursion() {
        let n = 100_000;
        let mut b = GraphBuilder::new(Direction::Directed, n);
        for v in 0..(n as u32 - 1) {
            b.add_edge(v, v + 1);
        }
        let g = b.build().unwrap();
        assert_eq!(dfs_order(&g, 0).len(), n);
    }

    #[test]
    fn singleton_traversals() {
        let g = GraphBuilder::new(Direction::Undirected, 1).build().unwrap();
        assert_eq!(bfs_order(&g, 0), vec![0]);
        assert_eq!(dfs_order(&g, 0), vec![0]);
        assert_eq!(bfs_distances(&g, 0), vec![0]);
    }
}
