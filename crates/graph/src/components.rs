//! Connected components.
//!
//! For undirected graphs these are the ordinary components; for directed
//! graphs the same routine yields *weakly* connected components by scanning
//! in- and out-neighbors (the paper's graphs are all undirected projections,
//! but the directed D2PR variant in §3.2.2 still needs a sanity check that
//! random walks can reach most of the graph).

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Component labelling of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `labels[v]` is the component id of node `v` (dense, `0..count`).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Id of the largest component (ties broken by lower id).
    pub fn giant_id(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
    }

    /// Size of the largest component.
    pub fn giant_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of all nodes inside the largest component.
    pub fn giant_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.giant_size() as f64 / self.labels.len() as f64
    }

    /// Nodes belonging to component `id`.
    pub fn members(&self, id: u32) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(v, &l)| (l == id).then_some(v as NodeId))
            .collect()
    }
}

/// Weakly connected components (connected components for undirected graphs).
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();

    // For directed graphs we need reverse adjacency for weak connectivity.
    let reverse: Option<Vec<Vec<NodeId>>> = if g.is_directed() {
        let mut rev = vec![Vec::new(); n];
        for (u, v) in g.arcs() {
            rev[v as usize].push(u);
        }
        Some(rev)
    } else {
        None
    };

    let mut next_label = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let mut size = 0usize;
        labels[start as usize] = next_label;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &t in g.neighbors(v) {
                if labels[t as usize] == u32::MAX {
                    labels[t as usize] = next_label;
                    queue.push_back(t);
                }
            }
            if let Some(rev) = &reverse {
                for &t in &rev[v as usize] {
                    if labels[t as usize] == u32::MAX {
                        labels[t as usize] = next_label;
                        queue.push_back(t);
                    }
                }
            }
        }
        sizes.push(size);
        next_label += 1;
    }
    Components {
        labels,
        count: next_label as usize,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::csr::Direction;

    #[test]
    fn two_components_undirected() {
        let mut b = GraphBuilder::new(Direction::Undirected, 5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.sizes, vec![3, 2]);
        assert_eq!(c.giant_id(), Some(0));
        assert_eq!(c.giant_size(), 3);
        assert!((c.giant_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(c.members(1), vec![3, 4]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = GraphBuilder::new(Direction::Undirected, 3).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes, vec![1, 1, 1]);
    }

    #[test]
    fn directed_weak_connectivity() {
        // 0 -> 1 <- 2 : weakly one component even though no node reaches all.
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.giant_fraction(), 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(Direction::Undirected, 0).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.giant_size(), 0);
        assert_eq!(c.giant_fraction(), 0.0);
        assert_eq!(c.giant_id(), None);
    }

    #[test]
    fn giant_tie_breaks_to_lower_id() {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.sizes, vec![2, 2]);
        assert_eq!(c.giant_id(), Some(0));
    }
}
