//! Classic random-graph generators.
//!
//! These are used for unit/property tests, benchmark inputs, and the
//! quickstart example. The paper's actual data graphs come from the richer
//! affiliation model in `d2pr-datagen`; the generators here provide neutral
//! topologies (Erdős–Rényi), heavy-tailed degree sequences (Barabási–Albert,
//! configuration model, Zipf bipartite) and clustered small worlds
//! (Watts–Strogatz).
//!
//! All generators are deterministic given a seed.

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// G(n, m): `m` distinct undirected edges chosen uniformly at random.
pub fn erdos_renyi_nm(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(Direction::Undirected, n);
    if n < 2 {
        return b.build();
    }
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// G(n, p): every unordered pair independently becomes an edge with
/// probability `p`. Uses geometric skipping, so sparse graphs cost O(E).
pub fn erdos_renyi_np(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(Direction::Undirected, n);
    if !(0.0..=1.0).contains(&p) || p == 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Iterate pair index space [0, n*(n-1)/2) with geometric jumps.
    let total = (n * (n - 1) / 2) as u64;
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (r.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let (u, v) = pair_from_index(idx, n as u64);
        b.add_edge(u as NodeId, v as NodeId);
        idx += 1;
    }
    b.build()
}

/// Invert the row-major upper-triangle pair index.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u contributes (n - 1 - u) pairs. Find u by walking rows; for the
    // graph sizes used in tests this linear scan is dominated by edge cost.
    let mut u = 0u64;
    let mut remaining = idx;
    loop {
        let row = n - 1 - u;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
        u += 1;
    }
}

/// Barabási–Albert preferential attachment: start from a clique of
/// `m_attach` nodes, then each new node attaches to `m_attach` existing
/// nodes chosen proportionally to their current degree.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m0 = m_attach.max(1);
    let mut b = GraphBuilder::new(Direction::Undirected, n);
    if n <= m0 {
        // Too small for attachment: return a clique on n nodes.
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Repeated-endpoint list: each arc endpoint appears once, so uniform
    // sampling from it is degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::new();
    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in m0 as u32..n as u32 {
        // `chosen` is a small sorted Vec, not a HashSet: HashSet iteration
        // order is randomized per process, which would leak into the
        // `endpoints` array and break cross-process determinism.
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m0);
        let mut guard = 0;
        while chosen.len() < m0 && guard < 100 * m0 {
            guard += 1;
            let pick = if endpoints.is_empty() {
                rng.gen_range(0..new)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if pick != new && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        chosen.sort_unstable();
        for &t in &chosen {
            b.add_edge(new, t);
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(Direction::Undirected, n);
    if n < 3 || k == 0 {
        return b.build();
    }
    let k = k.min((n - 1) / 2);
    for u in 0..n as u64 {
        for j in 1..=k as u64 {
            let v = (u + j) % n as u64;
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint uniformly (avoiding self-loops;
                // duplicate edges merge in the builder).
                let mut w = rng.gen_range(0..n as u64);
                let mut guard = 0;
                while w == u && guard < 64 {
                    w = rng.gen_range(0..n as u64);
                    guard += 1;
                }
                if w != u {
                    b.add_edge(u as NodeId, w as NodeId);
                }
            } else {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Configuration model: realize (approximately) a prescribed degree
/// sequence by randomly pairing half-edges. Self-loops and duplicate pairs
/// are dropped, so realized degrees can be slightly below the target.
pub fn configuration_model(degrees: &[u32], seed: u64) -> Result<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = degrees.len();
    let mut stubs: Vec<NodeId> = Vec::new();
    for (v, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(v as NodeId);
        }
    }
    // Fisher-Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    let mut b =
        GraphBuilder::new(Direction::Undirected, n).duplicate_policy(DuplicatePolicy::MergeMax);
    let mut it = stubs.chunks_exact(2);
    for pair in &mut it {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.build()
}

/// Sample `count` values from a (truncated) Zipf distribution over
/// `1..=max_value` with exponent `s`, via inverse-CDF on precomputed weights.
pub fn zipf_samples(count: usize, max_value: u32, s: f64, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_value = max_value.max(1);
    let mut cdf = Vec::with_capacity(max_value as usize);
    let mut acc = 0.0;
    for k in 1..=max_value {
        acc += f64::from(k).powf(-s);
        cdf.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let u = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u);
            (idx as u32 + 1).min(max_value)
        })
        .collect()
}

/// Random bipartite affiliation with Zipf-distributed left degrees and
/// uniform container choice. Returns the membership pairs; feed them to
/// [`crate::bipartite::BipartiteGraph::from_memberships`].
pub fn zipf_bipartite_memberships(
    num_left: usize,
    num_right: usize,
    max_left_degree: u32,
    zipf_s: f64,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_b1b1);
    let degs = zipf_samples(num_left, max_left_degree, zipf_s, seed);
    let mut pairs = Vec::new();
    if num_right == 0 {
        return pairs;
    }
    for (l, &d) in degs.iter().enumerate() {
        for _ in 0..d {
            pairs.push((l as NodeId, rng.gen_range(0..num_right as u32)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn er_nm_has_exact_edge_count() {
        let g = erdos_renyi_nm(50, 100, 7).unwrap();
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn er_nm_caps_at_complete_graph() {
        let g = erdos_renyi_nm(5, 1000, 7).unwrap();
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn er_np_zero_and_one() {
        assert_eq!(erdos_renyi_np(10, 0.0, 1).unwrap().num_edges(), 0);
        assert_eq!(erdos_renyi_np(10, 1.0, 1).unwrap().num_edges(), 45);
    }

    #[test]
    fn er_np_density_close_to_p() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi_np(n, p, 42).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn er_is_deterministic() {
        let a = erdos_renyi_nm(30, 60, 9).unwrap();
        let b = erdos_renyi_nm(30, 60, 9).unwrap();
        assert_eq!(a, b);
        let c = erdos_renyi_nm(30, 60, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn pair_from_index_inverts() {
        let n = 6u64;
        let mut idx = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(idx, n), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn ba_is_connected_and_heavy_tailed() {
        let g = barabasi_albert(300, 3, 11).unwrap();
        assert_eq!(g.num_nodes(), 300);
        let c = crate::components::connected_components(&g);
        assert_eq!(c.count, 1, "BA graphs are connected by construction");
        let s = degree_stats(&g);
        assert!(
            s.max_degree >= 3 * s.avg_degree as u32,
            "hub should greatly exceed the mean"
        );
    }

    #[test]
    fn ba_small_n_gives_clique() {
        let g = barabasi_albert(3, 5, 1).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn ws_no_rewiring_is_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 5).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn ws_full_rewiring_changes_structure() {
        let lattice = watts_strogatz(50, 2, 0.0, 5).unwrap();
        let random = watts_strogatz(50, 2, 1.0, 5).unwrap();
        assert_ne!(lattice, random);
        // Edge count can shrink slightly from merged duplicates but stays close.
        assert!(random.num_edges() > 80);
    }

    #[test]
    fn configuration_model_approximates_degrees() {
        let target = vec![3u32; 100];
        let g = configuration_model(&target, 13).unwrap();
        let s = degree_stats(&g);
        assert!(s.avg_degree > 2.5, "avg {}", s.avg_degree);
        assert!(s.max_degree <= 3);
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let xs = zipf_samples(10_000, 100, 1.5, 3);
        assert!(xs.iter().all(|&x| (1..=100).contains(&x)));
        let ones = xs.iter().filter(|&&x| x == 1).count();
        let hundreds = xs.iter().filter(|&&x| x == 100).count();
        assert!(
            ones > 10 * (hundreds + 1),
            "Zipf should heavily favour small values"
        );
    }

    #[test]
    fn zipf_bipartite_membership_ranges() {
        let ms = zipf_bipartite_memberships(100, 20, 10, 1.2, 77);
        assert!(!ms.is_empty());
        assert!(ms.iter().all(|&(l, r)| l < 100 && r < 20));
    }

    #[test]
    fn generators_handle_degenerate_sizes() {
        assert_eq!(erdos_renyi_nm(0, 10, 1).unwrap().num_nodes(), 0);
        assert_eq!(erdos_renyi_np(1, 0.5, 1).unwrap().num_edges(), 0);
        assert_eq!(watts_strogatz(2, 1, 0.5, 1).unwrap().num_edges(), 0);
        assert_eq!(configuration_model(&[], 1).unwrap().num_nodes(), 0);
        assert!(zipf_bipartite_memberships(5, 0, 3, 1.0, 1).is_empty());
    }
}
