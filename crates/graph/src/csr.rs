//! Compressed sparse row (CSR) graph storage.
//!
//! [`CsrGraph`] is the immutable workhorse of the whole library. Nodes are
//! dense `u32` ids in `0..num_nodes()`. The out-adjacency of every node is a
//! contiguous slice of a single `targets` array, addressed through an
//! `offsets` array of length `num_nodes() + 1` — the classic CSR layout,
//! chosen because the degree de-coupled transition construction repeatedly
//! scans whole neighborhoods and benefits from the cache-friendly contiguous
//! layout (see DESIGN.md).
//!
//! Undirected graphs are stored as symmetric directed graphs (every edge
//! appears as two arcs); [`CsrGraph::num_edges`] accounts for that.

use crate::error::{GraphError, Result};

/// Node identifier. Dense, `0..n`.
pub type NodeId = u32;

/// Whether a graph's edges are directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Every stored arc is an independent directed edge.
    Directed,
    /// Arcs come in symmetric pairs; degree and edge counts reflect that.
    Undirected,
}

/// An immutable graph in compressed sparse row form.
///
/// Construct via [`crate::builder::GraphBuilder`], the generators in
/// [`crate::generators`], or a bipartite [`crate::projection`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    direction: Direction,
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for node `v`.
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    /// Parallel to `targets` when present.
    weights: Option<Vec<f64>>,
    /// In-degree per node (number of arcs pointing at the node). For
    /// undirected graphs this equals the out-degree.
    in_degrees: Vec<u32>,
}

impl CsrGraph {
    /// Build directly from CSR arrays. Intended for internal use and tests;
    /// most callers should use [`crate::builder::GraphBuilder`].
    ///
    /// # Errors
    /// Returns an error when the arrays are inconsistent (offset length,
    /// monotonicity, target range, weight length/validity).
    pub fn from_csr(
        direction: Direction,
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Option<Vec<f64>>,
    ) -> Result<Self> {
        if offsets.is_empty() {
            return Err(GraphError::Snapshot(
                "offsets array must have length n+1 >= 1".into(),
            ));
        }
        let n = offsets.len() - 1;
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes(n));
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") != targets.len() {
            return Err(GraphError::Snapshot(
                "offsets must start at 0 and end at targets.len()".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Snapshot(
                "offsets must be non-decreasing".into(),
            ));
        }
        if let Some(&bad) = targets.iter().find(|&&t| (t as usize) >= n) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                num_nodes: n as u32,
            });
        }
        if let Some(w) = &weights {
            if w.len() != targets.len() {
                return Err(GraphError::Snapshot("weights must parallel targets".into()));
            }
            if let Some(&bad) = w.iter().find(|x| !x.is_finite() || **x < 0.0) {
                return Err(GraphError::InvalidWeight(bad));
            }
        }
        let mut in_degrees = vec![0u32; n];
        for &t in &targets {
            in_degrees[t as usize] += 1;
        }
        Ok(Self {
            direction,
            offsets,
            targets,
            weights,
            in_degrees,
        })
    }

    /// Whether this graph is directed or undirected.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// `true` when the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// `true` when the graph stores per-edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (directed adjacency entries). For an undirected
    /// graph every edge contributes two arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Number of logical edges: arcs for a directed graph, arcs/2 for an
    /// undirected graph.
    #[inline]
    pub fn num_edges(&self) -> usize {
        match self.direction {
            Direction::Directed => self.num_arcs(),
            Direction::Undirected => self.num_arcs() / 2,
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(|v| v as NodeId)
    }

    /// Out-neighbors of `v` as a contiguous slice.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = self.range(v);
        &self.targets[s..e]
    }

    /// Edge weights parallel to [`Self::neighbors`], or `None` for an
    /// unweighted graph.
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> Option<&[f64]> {
        let (s, e) = self.range(v);
        self.weights.as_ref().map(|w| &w[s..e])
    }

    /// Out-degree of `v` (number of out-arcs). For undirected graphs this is
    /// the ordinary degree `deg(v)` of the paper.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> u32 {
        let (s, e) = self.range(v);
        (e - s) as u32
    }

    /// In-degree of `v` (number of arcs pointing at `v`).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> u32 {
        self.in_degrees[v as usize]
    }

    /// Degree used by the paper's kernels: `deg(v)` for undirected graphs and
    /// `outdeg(v)` for directed graphs (paper §3.2.1 vs §3.2.2).
    #[inline]
    pub fn kernel_degree(&self, v: NodeId) -> u32 {
        self.out_degree(v)
    }

    /// Total out-weight `Θ(v) = Σ_h w(v→h)` (paper §3.2.3). For an
    /// unweighted graph every arc counts 1, so `Θ(v) = outdeg(v)`.
    pub fn out_weight(&self, v: NodeId) -> f64 {
        match self.neighbor_weights(v) {
            Some(w) => w.iter().sum(),
            None => f64::from(self.out_degree(v)),
        }
    }

    /// Iterate all arcs as `(source, target)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Iterate all arcs with weights (weight = 1.0 for unweighted graphs).
    pub fn weighted_arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes().flat_map(move |v| {
            let ns = self.neighbors(v);
            let ws = self.neighbor_weights(v);
            (0..ns.len()).map(move |i| {
                let w = ws.map_or(1.0, |w| w[i]);
                (v, ns[i], w)
            })
        })
    }

    /// `true` when an arc `u -> v` exists. `O(log deg(u))` when the adjacency
    /// is sorted (builder output always is), `O(deg(u))` otherwise.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        let ns = self.neighbors(u);
        if ns.windows(2).all(|w| w[0] <= w[1]) {
            ns.binary_search(&v).is_ok()
        } else {
            ns.contains(&v)
        }
    }

    /// Weight of arc `u -> v`, or `None` when the arc is absent. Unweighted
    /// graphs report 1.0 for every present arc. `O(log deg(u))` on sorted
    /// adjacency (builder output always is).
    pub fn arc_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let ns = self.neighbors(u);
        let k = if ns.windows(2).all(|w| w[0] <= w[1]) {
            ns.binary_search(&v).ok()?
        } else {
            ns.iter().position(|&t| t == v)?
        };
        Some(self.neighbor_weights(u).map_or(1.0, |ws| ws[k]))
    }

    /// Nodes with no out-arcs ("dangling" nodes in PageRank terms).
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Sum of all arc weights (arc count for unweighted graphs).
    pub fn total_arc_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.num_arcs() as f64,
        }
    }

    /// Relabel the graph under a node permutation (see
    /// [`crate::permute::NodePermutation::permute_graph`]): node `v`
    /// becomes `perm.to_internal(v)`, adjacency re-sorted, weights
    /// following their arcs.
    ///
    /// # Errors
    /// Returns [`GraphError::Snapshot`] when the permutation does not cover
    /// this graph's node count.
    pub fn permuted(&self, perm: &crate::permute::NodePermutation) -> Result<CsrGraph> {
        perm.permute_graph(self)
    }

    /// Strip the weights, yielding the purely structural graph.
    pub fn to_unweighted(&self) -> CsrGraph {
        CsrGraph {
            direction: self.direction,
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            weights: None,
            in_degrees: self.in_degrees.clone(),
        }
    }

    /// Raw CSR parts `(offsets, targets, weights)`, consumed. Used by the
    /// snapshot writer.
    pub fn into_parts(self) -> (Direction, Vec<usize>, Vec<NodeId>, Option<Vec<f64>>) {
        (self.direction, self.offsets, self.targets, self.weights)
    }

    /// Borrowed CSR parts.
    pub fn parts(&self) -> (&[usize], &[NodeId], Option<&[f64]>) {
        (&self.offsets, &self.targets, self.weights.as_deref())
    }

    #[inline]
    fn range(&self, v: NodeId) -> (usize, usize) {
        let v = v as usize;
        (self.offsets[v], self.offsets[v + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2 stored undirected.
    fn path3() -> CsrGraph {
        // arcs: 0->1, 1->0, 1->2, 2->1
        CsrGraph::from_csr(
            Direction::Undirected,
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            None,
        )
        .expect("valid csr")
    }

    #[test]
    fn basic_counts() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_directed());
        assert!(!g.is_weighted());
    }

    #[test]
    fn neighbors_and_degrees() {
        let g = path3();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.kernel_degree(1), 2);
    }

    #[test]
    fn directed_counts_differ() {
        let g = CsrGraph::from_csr(Direction::Directed, vec![0, 2, 2, 2], vec![1, 2], None)
            .expect("valid");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(2), 1);
        assert_eq!(g.dangling_nodes(), vec![1, 2]);
    }

    #[test]
    fn out_weight_defaults_to_degree() {
        let g = path3();
        assert_eq!(g.out_weight(1), 2.0);
    }

    #[test]
    fn out_weight_sums_weights() {
        let g = CsrGraph::from_csr(
            Direction::Directed,
            vec![0, 2, 2],
            vec![1, 1],
            Some(vec![0.5, 2.0]),
        )
        .expect("valid");
        assert!((g.out_weight(0) - 2.5).abs() < 1e-12);
        assert_eq!(g.out_weight(1), 0.0);
        assert!((g.total_arc_weight() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn has_arc_sorted_adjacency() {
        let g = path3();
        assert!(g.has_arc(1, 0));
        assert!(g.has_arc(1, 2));
        assert!(!g.has_arc(0, 2));
    }

    #[test]
    fn arcs_iterator_round_trips() {
        let g = path3();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        let warcs: Vec<_> = g.weighted_arcs().collect();
        assert_eq!(warcs[0], (0, 1, 1.0));
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(CsrGraph::from_csr(Direction::Directed, vec![], vec![], None).is_err());
        assert!(CsrGraph::from_csr(Direction::Directed, vec![0, 2], vec![0], None).is_err());
        assert!(
            CsrGraph::from_csr(Direction::Directed, vec![0, 2, 1, 3], vec![0, 0, 0], None).is_err()
        );
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = CsrGraph::from_csr(Direction::Directed, vec![0, 1], vec![5], None).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 1
            }
        );
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(
            CsrGraph::from_csr(Direction::Directed, vec![0, 1], vec![0], Some(vec![])).is_err()
        );
        assert!(CsrGraph::from_csr(
            Direction::Directed,
            vec![0, 1],
            vec![0],
            Some(vec![f64::NAN])
        )
        .is_err());
        assert!(
            CsrGraph::from_csr(Direction::Directed, vec![0, 1], vec![0], Some(vec![-1.0])).is_err()
        );
    }

    #[test]
    fn to_unweighted_strips_weights() {
        let g = CsrGraph::from_csr(Direction::Directed, vec![0, 1], vec![0], Some(vec![3.0]))
            .expect("valid");
        let u = g.to_unweighted();
        assert!(!u.is_weighted());
        assert_eq!(u.num_arcs(), 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraph::from_csr(Direction::Directed, vec![0], vec![], None).expect("valid");
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.nodes().count(), 0);
    }
}
