//! Incremental graph updates: a delta overlay over an immutable [`CsrGraph`].
//!
//! [`CsrGraph`] is deliberately immutable — every solver in the workspace
//! leans on its frozen layout. A serving system, however, receives edge
//! insertions, deletions, weight changes, and node churn continuously and
//! cannot afford a full builder-path rebuild (edge soup, counting sort,
//! per-node sort, dedup) on every change. [`DeltaGraph`] closes the gap with
//! the classic append/tombstone design:
//!
//! * a **base** CSR snapshot (immutable, shared with every reader);
//! * an **overlay** of pending arc insertions (with weights), deletions
//!   (tombstones), weight overrides for live base arcs, and a count of
//!   appended nodes, kept as ordered maps so membership tests and per-source
//!   merges stay logarithmic/linear;
//! * [`DeltaGraph::apply_batch`] — apply a batch of edits, reporting the
//!   *effective* arc-level delta (no-ops removed, undirected edges
//!   mirrored, pre-batch weights recorded) so downstream caches
//!   ([`CscStructure`]) can be patched instead of rebuilt;
//! * **compaction** — once the overlay exceeds a configurable fraction of
//!   the base arc count, the overlay is folded into a fresh base CSR by a
//!   per-source merge (no builder round-trip), keeping amortized cost per
//!   mutated arc constant. See `DESIGN.md` for the threshold rationale.
//!
//! # Weight reconciliation
//!
//! On a weighted base, **re-inserting a present arc replaces its weight**
//! ([`EdgeBatch::insert_weighted`] / [`EdgeBatch::set_weight`] are the same
//! operation): the overlay records the override and the batch outcome
//! reports it in [`ArcDelta::reweighted`] with both the pre-batch and the
//! new weight, so solvers can reconstruct the pre-batch operator exactly.
//! Unweighted bases accept only weight-1 edits (anything else fails typed
//! with [`GraphError::WeightMismatch`]); weighted bases accept plain
//! [`EdgeBatch::insert`] as weight-1 inserts.
//!
//! # Node churn
//!
//! [`EdgeBatch::add_nodes`] appends `k` fresh ids to the tail of the id
//! space (they start isolated — dangling); [`EdgeBatch::remove_node`]
//! **tombstones** a node: every incident arc (in and out) is dropped, but
//! the id itself is retained so node ids stay dense and stable. A removed
//! node is indistinguishable from an isolated node at this layer; the
//! serving layer zeroes its teleport mass and evicts it from ranked
//! indexes. Re-adding arcs at a tombstoned id resurrects it.
//!
//! The logical graph is always `(base ∖ deletes) ∪ inserts` with overlay
//! weights taking precedence; [`DeltaGraph::snapshot`] materializes it as a
//! plain [`CsrGraph`] for the solver stack.
//!
//! [`CscStructure`]: crate::transpose::CscStructure

use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::{GraphError, Result};
use std::collections::{BTreeMap, BTreeSet};

/// A batch of logical edge and node edits to apply in one
/// [`DeltaGraph::apply_batch`] call. For undirected graphs each edge stands
/// for its two mirrored arcs.
///
/// Within one batch the phases apply in a fixed order: node additions,
/// then insertions (so inserts may reference freshly added ids), then
/// deletions (so a batch that inserts and deletes the same edge nets to
/// "absent"), then node removals (which drop every arc still incident to
/// the removed ids). Self-loops are dropped, mirroring
/// [`crate::builder::SelfLoopPolicy::Drop`], the policy every graph in this
/// workspace is built under.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeBatch {
    /// Edges to insert (re-inserting a present edge replaces its weight).
    pub inserts: Vec<(NodeId, NodeId)>,
    /// Per-insert weights, parallel to `inserts` when present. `None`
    /// means every insert carries weight 1 (the structural batch).
    pub weights: Option<Vec<f64>>,
    /// Edges to delete (ignored when already absent).
    pub deletes: Vec<(NodeId, NodeId)>,
    /// Fresh node ids to append to the tail of the id space before the
    /// edge edits apply.
    pub new_nodes: u32,
    /// Nodes to tombstone after the edge edits apply: every incident arc
    /// is dropped; the id stays allocated (isolated).
    pub removed_nodes: Vec<NodeId>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an edge insertion with weight 1 (a weight *replace* to 1.0
    /// when the edge is already present on a weighted base).
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.inserts.push((u, v));
        if let Some(w) = self.weights.as_mut() {
            w.push(1.0);
        }
        self
    }

    /// Queue a weighted edge insertion. Reconciliation: when the edge is
    /// already present, its weight is **replaced** by `w` (reported as a
    /// reweight, not a structural flip). Requires a weighted base unless
    /// `w == 1.0`.
    pub fn insert_weighted(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut Self {
        let ws = self
            .weights
            .get_or_insert_with(|| vec![1.0; self.inserts.len()]);
        ws.push(w);
        self.inserts.push((u, v));
        self
    }

    /// Set the weight of edge `u — v` to `w`, inserting the edge when
    /// absent. This is exactly [`EdgeBatch::insert_weighted`] — named for
    /// call sites whose intent is re-weighting an existing edge.
    pub fn set_weight(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut Self {
        self.insert_weighted(u, v, w)
    }

    /// Queue an edge deletion.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.deletes.push((u, v));
        self
    }

    /// Append `k` fresh node ids (they take the next ids past the current
    /// node count, in order, and start isolated).
    pub fn add_nodes(&mut self, k: u32) -> &mut Self {
        self.new_nodes += k;
        self
    }

    /// Tombstone node `v`: drop every arc incident to it (the id stays
    /// allocated; serving layers zero its teleport mass).
    pub fn remove_node(&mut self, v: NodeId) -> &mut Self {
        self.removed_nodes.push(v);
        self
    }

    /// Weight of the `k`-th queued insert (1.0 for structural batches).
    pub fn insert_weight(&self, k: usize) -> f64 {
        self.weights.as_ref().map_or(1.0, |w| w[k])
    }

    /// Translate every endpoint through a node permutation (external →
    /// internal ids), preserving edit order. Serving layers that run their
    /// [`DeltaGraph`] in a cache-aware internal order (see
    /// [`crate::permute::NodePermutation`]) translate each incoming batch
    /// once — O(batch) — at the boundary.
    ///
    /// Ids at or beyond the permutation's build-time range map to
    /// themselves (identity-extension): a grown graph's fresh tail ids are
    /// appended identity-suffixed to the layout, so they need no
    /// translation, and genuinely out-of-range ids surface from the
    /// receiving [`DeltaGraph::apply_batch`] with the id the caller
    /// actually supplied.
    pub fn permuted(&self, perm: &crate::permute::NodePermutation) -> EdgeBatch {
        let map = |v: NodeId| perm.forward().get(v as usize).copied().unwrap_or(v);
        EdgeBatch {
            inserts: self
                .inserts
                .iter()
                .map(|&(u, v)| (map(u), map(v)))
                .collect(),
            weights: self.weights.clone(),
            deletes: self
                .deletes
                .iter()
                .map(|&(u, v)| (map(u), map(v)))
                .collect(),
            new_nodes: self.new_nodes,
            removed_nodes: self.removed_nodes.iter().map(|&v| map(v)).collect(),
        }
    }

    /// Number of queued edit records (edge edits plus node ops).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.new_nodes as usize + self.removed_nodes.len()
    }

    /// `true` when no edits are queued.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty()
            && self.deletes.is_empty()
            && self.new_nodes == 0
            && self.removed_nodes.is_empty()
    }
}

/// The *effective* change produced by one batch: exactly the arcs whose
/// presence flipped or whose weight changed, with undirected edges expanded
/// to both mirrored arcs and all no-ops (re-inserting a present arc at its
/// current weight, deleting an absent one, insert-then-delete within the
/// batch) removed — plus the node-count change and the tombstoned ids.
///
/// All arc lists are sorted by `(source, target)` and mutually disjoint.
/// Deleted arcs carry their **pre-batch** weight and reweighted arcs carry
/// `(old, new)`, so downstream solvers can reconstruct the pre-batch
/// operator (`Θ_old`, per-column `T_old`) exactly. This is the currency of
/// the incremental maintenance path:
/// [`CscStructure::patched`](crate::transpose::CscStructure::patched)
/// consumes it to update a transpose without a full rebuild.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArcDelta {
    /// Arcs that became present.
    pub inserted: Vec<(NodeId, NodeId)>,
    /// Post-batch weight of each inserted arc (parallel to `inserted`;
    /// all 1.0 on unweighted bases).
    pub inserted_weights: Vec<f64>,
    /// Arcs that became absent.
    pub deleted: Vec<(NodeId, NodeId)>,
    /// Pre-batch weight of each deleted arc (parallel to `deleted`).
    pub deleted_weights: Vec<f64>,
    /// Arcs present before and after the batch whose weight changed:
    /// `(source, target, old_weight, new_weight)`. Structurally invisible
    /// (the transpose is unchanged) but operator-visible.
    pub reweighted: Vec<(NodeId, NodeId, f64, f64)>,
    /// Node count before the batch.
    pub nodes_before: u32,
    /// Node count after the batch (`>= nodes_before`; removal tombstones,
    /// it never shrinks the id space).
    pub nodes_after: u32,
    /// Nodes tombstoned by this batch, sorted and deduplicated (their
    /// dropped arcs appear in `deleted` as ordinary deletions).
    pub removed_nodes: Vec<NodeId>,
}

impl ArcDelta {
    /// Total number of changed arcs (flips plus reweights).
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len() + self.reweighted.len()
    }

    /// `true` when the batch changed nothing at all (no arc flips, no
    /// reweights, no node churn).
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.deleted.is_empty()
            && self.reweighted.is_empty()
            && self.added_nodes() == 0
            && self.removed_nodes.is_empty()
    }

    /// Number of nodes the batch appended (ids
    /// `nodes_before..nodes_after`).
    pub fn added_nodes(&self) -> u32 {
        self.nodes_after - self.nodes_before
    }

    /// The **touched-node frontier**: every node whose in- or out-arc set
    /// or incident weights the batch changed (endpoints of flipped and
    /// reweighted arcs), plus freshly added and tombstoned ids, sorted and
    /// deduplicated. This is the seed set of residual-localized
    /// re-solvers: the warm-start residual of a rank vector is exactly
    /// zero (up to the previous solve's tolerance) outside the
    /// neighborhood of these nodes.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .inserted
            .iter()
            .chain(&self.deleted)
            .flat_map(|&(s, t)| [s, t])
            .chain(self.reweighted.iter().flat_map(|&(s, t, _, _)| [s, t]))
            .chain(self.nodes_before..self.nodes_after)
            .chain(self.removed_nodes.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Net out-degree change per source of a flipped arc, sorted by node id
    /// (zero-net sources are retained: their neighbor *set* still changed).
    /// Downstream consumers use this to reconstruct pre-batch dangling
    /// status and — on unweighted graphs — pre-batch degree tables.
    pub fn source_degree_changes(&self) -> Vec<(NodeId, i64)> {
        let mut net: Vec<(NodeId, i64)> = Vec::with_capacity(self.len());
        for &(s, _) in &self.inserted {
            net.push((s, 1));
        }
        for &(s, _) in &self.deleted {
            net.push((s, -1));
        }
        net.sort_unstable_by_key(|&(s, _)| s);
        let mut out: Vec<(NodeId, i64)> = Vec::new();
        for (s, d) in net {
            match out.last_mut() {
                Some((last, acc)) if *last == s => *acc += d,
                _ => out.push((s, d)),
            }
        }
        out
    }

    /// Net total-out-weight (`Θ`) change per source whose out-arcs the
    /// batch touched, sorted by node id — the weighted generalization of
    /// [`ArcDelta::source_degree_changes`] (on unweighted bases the two
    /// agree numerically). Zero-net sources are retained: their neighbor
    /// set or per-arc weights still changed, so every transition
    /// probability in their column changed. `Θ_old(v) = Θ_new(v) − net`.
    pub fn source_theta_changes(&self) -> Vec<(NodeId, f64)> {
        let mut net: Vec<(NodeId, f64)> = Vec::with_capacity(self.len());
        for (&(s, _), &w) in self.inserted.iter().zip(&self.inserted_weights) {
            net.push((s, w));
        }
        for (&(s, _), &w) in self.deleted.iter().zip(&self.deleted_weights) {
            net.push((s, -w));
        }
        for &(s, _, old, new) in &self.reweighted {
            net.push((s, new - old));
        }
        net.sort_unstable_by_key(|&(s, _)| s);
        let mut out: Vec<(NodeId, f64)> = Vec::new();
        for (s, d) in net {
            match out.last_mut() {
                Some((last, acc)) if *last == s => *acc += d,
                _ => out.push((s, d)),
            }
        }
        out
    }
}

/// What one [`DeltaGraph::apply_batch`] call did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// Effective arc-level change relative to the pre-batch logical graph.
    pub delta: ArcDelta,
    /// Whether the overlay crossed the threshold and was compacted into a
    /// fresh base CSR at the end of the batch.
    pub compacted: bool,
}

/// Default overlay-size fraction of the base arc count that triggers
/// compaction (see `DESIGN.md` for the amortization argument).
pub const DEFAULT_COMPACTION_FRACTION: f64 = 1.0 / 16.0;

/// Default floor on the compaction threshold, so tiny graphs don't compact
/// on every batch.
pub const DEFAULT_COMPACTION_MIN_ARCS: usize = 256;

/// An evolving graph: an immutable CSR base plus an append/tombstone
/// overlay of arc edits (weighted or structural), weight overrides, and
/// node growth, with automatic compaction.
///
/// # Examples
/// ```
/// use d2pr_graph::builder::GraphBuilder;
/// use d2pr_graph::csr::Direction;
/// use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
///
/// let mut b = GraphBuilder::new(Direction::Undirected, 4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let mut dg = DeltaGraph::new(b.build().unwrap()).unwrap();
///
/// let mut batch = EdgeBatch::new();
/// batch.insert(2, 3).delete(0, 1);
/// let outcome = dg.apply_batch(&batch).unwrap();
/// assert_eq!(outcome.delta.inserted, vec![(2, 3), (3, 2)]);
/// assert_eq!(outcome.delta.deleted, vec![(0, 1), (1, 0)]);
///
/// let g = dg.snapshot();
/// assert!(g.has_arc(2, 3) && g.has_arc(3, 2));
/// assert!(!g.has_arc(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: CsrGraph,
    /// Arcs present in the logical graph but not live in `base`, with
    /// their logical weight (1.0 on unweighted bases). Disjoint from
    /// `deletes`; never contains a live `base` arc.
    inserts: BTreeMap<(NodeId, NodeId), f64>,
    /// Tombstoned arcs of `base` (absent from the logical graph).
    deletes: BTreeSet<(NodeId, NodeId)>,
    /// Live `base` arcs whose logical weight differs from the stored base
    /// weight (weighted bases only). Disjoint from `deletes`.
    reweights: BTreeMap<(NodeId, NodeId), f64>,
    /// Nodes appended beyond the base's id space (isolated until arcs
    /// reference them).
    grown: usize,
    compaction_fraction: f64,
    compaction_min_arcs: usize,
}

impl DeltaGraph {
    /// Wrap a base snapshot (weighted or unweighted).
    ///
    /// # Errors
    /// Infallible today; the `Result` is kept for API stability (earlier
    /// revisions rejected weighted bases here).
    pub fn new(base: CsrGraph) -> Result<Self> {
        Ok(Self {
            base,
            inserts: BTreeMap::new(),
            deletes: BTreeSet::new(),
            reweights: BTreeMap::new(),
            grown: 0,
            compaction_fraction: DEFAULT_COMPACTION_FRACTION,
            compaction_min_arcs: DEFAULT_COMPACTION_MIN_ARCS,
        })
    }

    /// Override the compaction threshold: the overlay is folded into the
    /// base once it holds more than `max(min_arcs, fraction · base_arcs)`
    /// entries. A `fraction` of 0 compacts after every non-empty batch
    /// (with `min_arcs` 0); `f64::INFINITY` disables auto-compaction.
    pub fn with_compaction_threshold(mut self, fraction: f64, min_arcs: usize) -> Self {
        assert!(
            fraction >= 0.0 && !fraction.is_nan(),
            "compaction fraction must be non-negative"
        );
        self.compaction_fraction = fraction;
        self.compaction_min_arcs = min_arcs;
        self
    }

    /// The current base snapshot (excludes the overlay).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Whether arcs are directed (inherited from the base).
    pub fn direction(&self) -> Direction {
        self.base.direction()
    }

    /// Whether the logical graph carries weights (inherited from the base).
    pub fn is_weighted(&self) -> bool {
        self.base.is_weighted()
    }

    /// Number of nodes in the logical graph (the base's node count plus
    /// any appended via [`EdgeBatch::add_nodes`]).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.grown
    }

    /// Number of arcs in the logical graph (base − tombstones + inserts).
    pub fn num_arcs(&self) -> usize {
        self.base.num_arcs() + self.inserts.len() - self.deletes.len()
    }

    /// Number of logical edges (arcs, halved for undirected graphs).
    pub fn num_edges(&self) -> usize {
        match self.base.direction() {
            Direction::Directed => self.num_arcs(),
            Direction::Undirected => self.num_arcs() / 2,
        }
    }

    /// Pending overlay entries (inserts + tombstones + weight overrides +
    /// appended nodes).
    pub fn overlay_len(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.reweights.len() + self.grown
    }

    /// `true` when the overlay is empty (base == logical graph).
    pub fn is_compacted(&self) -> bool {
        self.inserts.is_empty()
            && self.deletes.is_empty()
            && self.reweights.is_empty()
            && self.grown == 0
    }

    /// Overlay size above which [`DeltaGraph::apply_batch`] compacts.
    pub fn compaction_threshold(&self) -> usize {
        let frac = self.compaction_fraction * self.base.num_arcs() as f64;
        // Saturate: an infinite/huge fraction means "never".
        let frac = if frac >= usize::MAX as f64 {
            usize::MAX
        } else {
            frac as usize
        };
        frac.max(self.compaction_min_arcs)
    }

    /// `true` when arc `u -> v` exists in the logical graph.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        if self.inserts.contains_key(&(u, v)) {
            return true;
        }
        self.base_has_arc(u, v) && !self.deletes.contains(&(u, v))
    }

    /// Weight of arc `u -> v` in the logical graph (`None` when absent;
    /// 1.0 for every present arc of an unweighted base).
    pub fn arc_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if let Some(&w) = self.inserts.get(&(u, v)) {
            return Some(w);
        }
        if self.deletes.contains(&(u, v)) || !self.base_has_arc(u, v) {
            return None;
        }
        Some(
            self.reweights
                .get(&(u, v))
                .copied()
                .unwrap_or_else(|| self.base_arc_weight(u, v)),
        )
    }

    /// `base.has_arc`, tolerating sources past the base's id space (grown
    /// nodes have no base adjacency).
    fn base_has_arc(&self, u: NodeId, v: NodeId) -> bool {
        (u as usize) < self.base.num_nodes() && self.base.has_arc(u, v)
    }

    /// Weight the base stores for arc `u -> v` (caller guarantees the arc
    /// exists in the base).
    fn base_arc_weight(&self, u: NodeId, v: NodeId) -> f64 {
        self.base
            .arc_weight(u, v)
            .expect("arc must exist in the base")
    }

    /// Iterate the logical graph's arcs as `(source, target)`, sorted.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let n = self.num_nodes() as u32;
        (0..n).flat_map(move |v| self.merged_arcs(v).map(move |(t, _)| (v, t)))
    }

    /// Sorted out-neighbors of `v` in the logical graph (base merged with
    /// the overlay), with logical weights.
    fn merged_arcs(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let in_base = (v as usize) < self.base.num_nodes();
        let base_ns: &[NodeId] = if in_base { self.base.neighbors(v) } else { &[] };
        let base_ws: Option<&[f64]> = if in_base {
            self.base.neighbor_weights(v)
        } else {
            None
        };
        let base = base_ns
            .iter()
            .enumerate()
            .filter(move |&(_, &t)| !self.deletes.contains(&(v, t)))
            .map(move |(k, &t)| {
                let w = self
                    .reweights
                    .get(&(v, t))
                    .copied()
                    .unwrap_or_else(|| base_ws.map_or(1.0, |ws| ws[k]));
                (t, w)
            });
        let ins = self
            .inserts
            .range((v, 0)..=(v, NodeId::MAX))
            .map(|(&(_, t), &w)| (t, w));
        MergeSorted::new(base, ins)
    }

    /// Apply a batch of edits: node additions, then insertions (which
    /// replace weights of already-present arcs), then deletions, then node
    /// removals; undirected edges edit both mirrored arcs; self-loops and
    /// no-ops (inserting a present edge at its current weight, deleting an
    /// absent one) are skipped. When the overlay crosses
    /// [`DeltaGraph::compaction_threshold`] after the batch, it is folded
    /// into a fresh base CSR.
    ///
    /// The batch is validated before any state changes: on error the graph
    /// is untouched.
    ///
    /// # Errors
    /// - [`GraphError::NodeOutOfRange`] when an edit references a node
    ///   outside `0..num_nodes() + batch.new_nodes`.
    /// - [`GraphError::InvalidWeight`] when a batch weight is not finite
    ///   and non-negative.
    /// - [`GraphError::WeightMismatch`] when a non-unit weight targets an
    ///   unweighted base.
    /// - [`GraphError::Snapshot`] when `batch.weights` does not parallel
    ///   `batch.inserts`.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<BatchOutcome> {
        let n_before = self.num_nodes() as u32;
        let n_after = (n_before as usize).checked_add(batch.new_nodes as usize);
        let n_after = match n_after {
            Some(n) if n <= u32::MAX as usize => n as u32,
            _ => return Err(GraphError::TooManyNodes(usize::MAX)),
        };
        if let Some(w) = &batch.weights {
            if w.len() != batch.inserts.len() {
                return Err(GraphError::Snapshot(
                    "batch weights must parallel inserts".into(),
                ));
            }
            if let Some(&bad) = w.iter().find(|x| !x.is_finite() || **x < 0.0) {
                return Err(GraphError::InvalidWeight(bad));
            }
            if !self.base.is_weighted() && w.iter().any(|&x| x != 1.0) {
                return Err(GraphError::WeightMismatch {
                    graph_weighted: false,
                });
            }
        }
        for &(u, v) in batch.inserts.iter().chain(&batch.deletes) {
            if u >= n_after || v >= n_after {
                return Err(GraphError::NodeOutOfRange {
                    node: if u >= n_after { u } else { v },
                    num_nodes: n_after,
                });
            }
        }
        if let Some(&bad) = batch.removed_nodes.iter().find(|&&v| v >= n_after) {
            return Err(GraphError::NodeOutOfRange {
                node: bad,
                num_nodes: n_after,
            });
        }

        self.grown += batch.new_nodes as usize;

        let mirrored = self.base.direction() == Direction::Undirected;
        let mut eff_ins: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
        let mut eff_del: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
        let mut eff_rew: BTreeMap<(NodeId, NodeId), (f64, f64)> = BTreeMap::new();

        for (k, &(u, v)) in batch.inserts.iter().enumerate() {
            if u == v {
                continue;
            }
            let w = batch.insert_weight(k);
            self.insert_arc(u, v, w, &mut eff_ins, &mut eff_del, &mut eff_rew);
            if mirrored {
                self.insert_arc(v, u, w, &mut eff_ins, &mut eff_del, &mut eff_rew);
            }
        }
        for &(u, v) in &batch.deletes {
            if u == v {
                continue;
            }
            self.delete_arc(u, v, &mut eff_ins, &mut eff_del, &mut eff_rew);
            if mirrored {
                self.delete_arc(v, u, &mut eff_ins, &mut eff_del, &mut eff_rew);
            }
        }

        let mut removed: Vec<NodeId> = batch.removed_nodes.clone();
        removed.sort_unstable();
        removed.dedup();
        if !removed.is_empty() {
            let removed_set: BTreeSet<NodeId> = removed.iter().copied().collect();
            let mut incident: Vec<(NodeId, NodeId)> = Vec::new();
            if mirrored {
                // Mirrored storage: the out-arcs of a removed node name
                // every incident edge; deleting both directions covers it
                // without a full scan.
                for &v in &removed {
                    incident.extend(self.merged_arcs(v).map(|(t, _)| (v, t)));
                }
                let both: Vec<(NodeId, NodeId)> = incident
                    .iter()
                    .flat_map(|&(v, t)| [(v, t), (t, v)])
                    .collect();
                incident = both;
            } else {
                // Directed: in-arcs of removed nodes require a sweep over
                // the logical adjacency — O(V + E) once per batch that
                // removes nodes (removal is rare relative to edge churn).
                let n = self.num_nodes() as u32;
                for s in 0..n {
                    let s_removed = removed_set.contains(&s);
                    for (t, _) in self.merged_arcs(s) {
                        if s_removed || removed_set.contains(&t) {
                            incident.push((s, t));
                        }
                    }
                }
            }
            for (s, t) in incident {
                self.delete_arc(s, t, &mut eff_ins, &mut eff_del, &mut eff_rew);
            }
        }

        let compacted = self.overlay_len() > self.compaction_threshold();
        if compacted {
            self.compact();
        }
        Ok(BatchOutcome {
            delta: ArcDelta {
                inserted: eff_ins.keys().copied().collect(),
                inserted_weights: eff_ins.values().copied().collect(),
                deleted: eff_del.keys().copied().collect(),
                deleted_weights: eff_del.values().copied().collect(),
                reweighted: eff_rew
                    .iter()
                    .map(|(&(u, v), &(old, new))| (u, v, old, new))
                    .collect(),
                nodes_before: n_before,
                nodes_after: n_after,
                removed_nodes: removed,
            },
            compacted,
        })
    }

    /// Make arc `(u, v)` present with weight `w` (replacing the weight when
    /// already present); record the flip or reweight — with batch-internal
    /// cancellation — in the effective-delta maps. Deleted arcs carry
    /// pre-batch weights in `eff_del`, so re-inserting one reconstructs the
    /// correct net effect (a reweight, or nothing).
    fn insert_arc(
        &mut self,
        u: NodeId,
        v: NodeId,
        w: f64,
        eff_ins: &mut BTreeMap<(NodeId, NodeId), f64>,
        eff_del: &mut BTreeMap<(NodeId, NodeId), f64>,
        eff_rew: &mut BTreeMap<(NodeId, NodeId), (f64, f64)>,
    ) {
        let arc = (u, v);
        let weighted = self.base.is_weighted();
        let live_base = !self.deletes.contains(&arc) && self.base_has_arc(u, v);
        let present_weight = if let Some(&cw) = self.inserts.get(&arc) {
            Some(cw)
        } else if live_base {
            Some(
                self.reweights
                    .get(&arc)
                    .copied()
                    .unwrap_or_else(|| self.base_arc_weight(u, v)),
            )
        } else {
            None
        };

        match present_weight {
            Some(cur) => {
                // Reconciliation: replace the weight (no structural flip).
                if !weighted || w == cur {
                    return;
                }
                if let Some(iw) = self.inserts.get_mut(&arc) {
                    *iw = w;
                } else {
                    let bw = self.base_arc_weight(u, v);
                    if w == bw {
                        self.reweights.remove(&arc);
                    } else {
                        self.reweights.insert(arc, w);
                    }
                }
                if let Some(iw) = eff_ins.get_mut(&arc) {
                    // Inserted earlier this batch: still a plain insert,
                    // now at the newer weight.
                    *iw = w;
                } else {
                    let old = eff_rew.get(&arc).map(|&(o, _)| o).unwrap_or(cur);
                    if old == w {
                        eff_rew.remove(&arc);
                    } else {
                        eff_rew.insert(arc, (old, w));
                    }
                }
            }
            None => {
                if self.deletes.remove(&arc) {
                    // Un-tombstone a base arc, pinning its weight to `w`.
                    if weighted {
                        let bw = self.base_arc_weight(u, v);
                        if w == bw {
                            self.reweights.remove(&arc);
                        } else {
                            self.reweights.insert(arc, w);
                        }
                    }
                } else {
                    self.inserts.insert(arc, w);
                }
                if let Some(old) = eff_del.remove(&arc) {
                    // Deleted earlier this batch: present before and
                    // after — net effect is a reweight (or nothing).
                    if weighted && old != w {
                        eff_rew.insert(arc, (old, w));
                    }
                } else {
                    eff_ins.insert(arc, w);
                }
            }
        }
    }

    /// Make arc `(u, v)` absent; record the flip (with its pre-batch
    /// weight) as in [`DeltaGraph::insert_arc`].
    fn delete_arc(
        &mut self,
        u: NodeId,
        v: NodeId,
        eff_ins: &mut BTreeMap<(NodeId, NodeId), f64>,
        eff_del: &mut BTreeMap<(NodeId, NodeId), f64>,
        eff_rew: &mut BTreeMap<(NodeId, NodeId), (f64, f64)>,
    ) {
        let arc = (u, v);
        if let Some(cw) = self.inserts.remove(&arc) {
            // Drop an overlay arc.
            if eff_ins.remove(&arc).is_none() {
                // Present pre-batch (an earlier batch's insert); pre-batch
                // weight is the reweight's `old` if this batch changed it.
                let old = eff_rew.remove(&arc).map(|(o, _)| o).unwrap_or(cw);
                eff_del.insert(arc, old);
            }
        } else if self.base_has_arc(u, v) && self.deletes.insert(arc) {
            // Tombstone a live base arc; its weight override (if any)
            // leaves with it.
            let cur = self
                .reweights
                .remove(&arc)
                .unwrap_or_else(|| self.base_arc_weight(u, v));
            let old = eff_rew.remove(&arc).map(|(o, _)| o).unwrap_or(cur);
            if eff_ins.remove(&arc).is_none() {
                eff_del.insert(arc, old);
            }
        }
        // Otherwise: already absent — no-op.
    }

    /// Materialize the logical graph as a plain [`CsrGraph`].
    ///
    /// One per-source merge of the (sorted) base adjacency with the
    /// (sorted) overlay — `O(V + E + Δ)`, with sequential copies for every
    /// untouched neighborhood. No builder round-trip: no edge soup, no
    /// counting sort, no per-node re-sort.
    pub fn snapshot(&self) -> CsrGraph {
        if self.is_compacted() {
            return self.base.clone();
        }
        let n = self.num_nodes();
        let weighted = self.base.is_weighted();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets: Vec<NodeId> = Vec::with_capacity(self.num_arcs());
        let mut weights: Vec<f64> = if weighted {
            Vec::with_capacity(self.num_arcs())
        } else {
            Vec::new()
        };
        for v in 0..n as u32 {
            for (t, w) in self.merged_arcs(v) {
                targets.push(t);
                if weighted {
                    weights.push(w);
                }
            }
            offsets.push(targets.len());
        }
        CsrGraph::from_csr(
            self.base.direction(),
            offsets,
            targets,
            weighted.then_some(weights),
        )
        .expect("delta merge preserves CSR invariants")
    }

    /// Fold the overlay into a fresh base snapshot.
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        self.base = self.snapshot();
        self.inserts.clear();
        self.deletes.clear();
        self.reweights.clear();
        self.grown = 0;
    }

    /// Consume the delta graph, returning the compacted CSR.
    pub fn into_snapshot(mut self) -> CsrGraph {
        self.compact();
        self.base
    }
}

/// Merge two ascending `(target, weight)` streams into one ascending
/// stream, ordered by target. The two streams are disjoint by the overlay
/// invariant (an insert never shadows a live base arc), so equality needs
/// no special casing — but it is handled anyway (both sides advance, the
/// base side wins) to stay robust.
struct MergeSorted<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A: Iterator, B: Iterator> MergeSorted<A, B> {
    fn new(a: A, b: B) -> Self {
        Self {
            a: a.peekable(),
            b: b.peekable(),
        }
    }
}

impl<A, B> Iterator for MergeSorted<A, B>
where
    A: Iterator<Item = (NodeId, f64)>,
    B: Iterator<Item = (NodeId, f64)>,
{
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<(NodeId, f64)> {
        match (self.a.peek().copied(), self.b.peek().copied()) {
            (Some((x, _)), Some((y, _))) => {
                if x <= y {
                    if x == y {
                        self.b.next();
                    }
                    self.a.next()
                } else {
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> CsrGraph {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    /// Directed weighted triangle-ish graph used by the weighted tests.
    fn weighted3() -> CsrGraph {
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_weighted_edge(0, 1, 2.0);
        b.add_weighted_edge(0, 2, 0.5);
        b.add_weighted_edge(1, 2, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn accepts_weighted_base() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        assert!(dg.is_weighted());
        assert_eq!(dg.arc_weight(0, 1), Some(2.0));
        assert_eq!(dg.arc_weight(1, 0), None);
        // A structural insert on a weighted base carries weight 1.
        let mut batch = EdgeBatch::new();
        batch.insert(2, 0);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.inserted, vec![(2, 0)]);
        assert_eq!(out.delta.inserted_weights, vec![1.0]);
        assert_eq!(dg.arc_weight(2, 0), Some(1.0));
    }

    #[test]
    fn reinsert_replaces_weight() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.set_weight(0, 1, 5.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.inserted.is_empty() && out.delta.deleted.is_empty());
        assert_eq!(out.delta.reweighted, vec![(0, 1, 2.0, 5.0)]);
        assert_eq!(dg.arc_weight(0, 1), Some(5.0));
        assert_eq!(dg.num_arcs(), 3, "reweight is structurally invisible");
        // Θ change: node 0 went from 2.5 to 5.5.
        assert_eq!(out.delta.source_theta_changes(), vec![(0, 3.0)]);
        assert!(out.delta.source_degree_changes().is_empty());
        // Re-weighting back to the base weight cancels the override.
        let mut batch = EdgeBatch::new();
        batch.set_weight(0, 1, 2.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.reweighted, vec![(0, 1, 5.0, 2.0)]);
        assert!(dg.is_compacted() || dg.overlay_len() == 0);
        assert_eq!(dg.snapshot(), weighted3());
    }

    #[test]
    fn reweight_at_current_weight_is_a_noop() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.set_weight(0, 1, 2.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.is_empty());
        // Reweight then reweight back within one batch cancels too.
        let mut batch = EdgeBatch::new();
        batch.set_weight(0, 1, 9.0).set_weight(0, 1, 2.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.is_empty());
    }

    #[test]
    fn delete_reports_prebatch_weight() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        // Reweight in one batch, delete in the next: the delete reports
        // the overlay weight (the pre-batch logical weight).
        let mut batch = EdgeBatch::new();
        batch.set_weight(0, 1, 7.0);
        dg.apply_batch(&batch).unwrap();
        let mut batch = EdgeBatch::new();
        batch.delete(0, 1);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.deleted, vec![(0, 1)]);
        assert_eq!(out.delta.deleted_weights, vec![7.0]);
        // Reweight then delete within one batch: still the pre-batch weight.
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.set_weight(0, 1, 7.0).delete(0, 1);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.deleted_weights, vec![2.0]);
        assert!(out.delta.reweighted.is_empty());
    }

    #[test]
    fn delete_then_reinsert_nets_to_reweight() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        // Deletes run after inserts, so stage across two batches: delete,
        // then re-insert at a new weight — per batch each is atomic, so
        // exercise the in-batch path via remove_node + insert ordering
        // instead: delete and reinsert across batches nets structurally.
        let mut batch = EdgeBatch::new();
        batch.delete(0, 1);
        dg.apply_batch(&batch).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert_weighted(0, 1, 3.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.inserted, vec![(0, 1)]);
        assert_eq!(out.delta.inserted_weights, vec![3.0]);
        assert_eq!(dg.arc_weight(0, 1), Some(3.0));
        // The un-tombstoned base arc carries the new weight in snapshots.
        let snap = dg.snapshot();
        assert_eq!(snap.arc_weight(0, 1), Some(3.0));
    }

    #[test]
    fn weighted_edit_on_unweighted_base_fails_typed() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert_weighted(0, 3, 2.5);
        assert_eq!(
            dg.apply_batch(&batch).unwrap_err(),
            GraphError::WeightMismatch {
                graph_weighted: false
            }
        );
        assert!(dg.is_compacted(), "rejected batch must not apply");
        // Weight-1 entries through the weighted API are fine.
        let mut batch = EdgeBatch::new();
        batch.insert_weighted(0, 3, 1.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.inserted, vec![(0, 3), (3, 0)]);
    }

    #[test]
    fn invalid_weights_rejected_atomically() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert_weighted(2, 0, f64::NAN);
        assert!(matches!(
            dg.apply_batch(&batch).unwrap_err(),
            GraphError::InvalidWeight(_)
        ));
        let mut batch = EdgeBatch::new();
        batch.insert_weighted(2, 0, -1.0);
        assert!(matches!(
            dg.apply_batch(&batch).unwrap_err(),
            GraphError::InvalidWeight(_)
        ));
        // Mis-parallel weights are malformed.
        let batch = EdgeBatch {
            inserts: vec![(2, 0)],
            weights: Some(vec![]),
            ..EdgeBatch::default()
        };
        assert!(matches!(
            dg.apply_batch(&batch).unwrap_err(),
            GraphError::Snapshot(_)
        ));
        assert!(dg.is_compacted());
    }

    #[test]
    fn add_nodes_grows_id_space() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.add_nodes(2).insert(3, 5); // 5 is a fresh id
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(dg.num_nodes(), 6);
        assert_eq!(out.delta.nodes_before, 4);
        assert_eq!(out.delta.nodes_after, 6);
        assert_eq!(out.delta.added_nodes(), 2);
        assert_eq!(out.delta.inserted, vec![(3, 5), (5, 3)]);
        // New isolated node 4 and connected node 5 both appear in the
        // frontier.
        assert!(out.delta.touched_nodes().contains(&4));
        assert!(out.delta.touched_nodes().contains(&5));
        let snap = dg.snapshot();
        assert_eq!(snap.num_nodes(), 6);
        assert!(snap.has_arc(3, 5) && snap.has_arc(5, 3));
        assert_eq!(snap.out_degree(4), 0);
    }

    #[test]
    fn remove_node_drops_incident_arcs() {
        // Undirected: node 1 sits on edges (0,1) and (1,2).
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.remove_node(1);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.removed_nodes, vec![1]);
        assert_eq!(out.delta.deleted, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert_eq!(dg.num_nodes(), 4, "removal tombstones, never shrinks");
        assert!(!dg.has_arc(0, 1) && !dg.has_arc(1, 2));
        assert!(dg.has_arc(2, 3));

        // Directed: in-arcs go too.
        let mut b = GraphBuilder::new(Direction::Directed, 3);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        b.add_edge(1, 2);
        let mut dg = DeltaGraph::new(b.build().unwrap()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.remove_node(1);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.deleted, vec![(0, 1), (1, 2), (2, 1)]);
        assert_eq!(dg.num_arcs(), 0);
    }

    #[test]
    fn remove_node_in_same_batch_as_insert_cancels() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).remove_node(3);
        let out = dg.apply_batch(&batch).unwrap();
        // The insert is swallowed by the removal; node 3's base edge (2,3)
        // is the only real deletion.
        assert!(out.delta.inserted.is_empty());
        assert_eq!(out.delta.deleted, vec![(2, 3), (3, 2)]);
        assert!(!dg.has_arc(0, 3));
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(1, 2);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.inserted, vec![(0, 3), (3, 0)]);
        assert_eq!(out.delta.inserted_weights, vec![1.0, 1.0]);
        assert_eq!(out.delta.deleted, vec![(1, 2), (2, 1)]);
        assert_eq!(out.delta.deleted_weights, vec![1.0, 1.0]);
        assert!(!out.compacted);
        assert!(dg.has_arc(0, 3) && dg.has_arc(3, 0));
        assert!(!dg.has_arc(1, 2) && !dg.has_arc(2, 1));
        assert_eq!(dg.num_arcs(), 6);
        assert_eq!(dg.num_edges(), 3);

        // Undo: the logical graph returns to the base.
        let mut undo = EdgeBatch::new();
        undo.insert(1, 2).delete(0, 3);
        let out = dg.apply_batch(&undo).unwrap();
        assert_eq!(out.delta.len(), 4);
        assert!(dg.is_compacted() || dg.overlay_len() == 0);
        assert_eq!(dg.snapshot(), path4());
    }

    #[test]
    fn noop_edits_report_empty_delta() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1); // already present
        batch.delete(0, 2); // never present
        batch.insert(2, 2); // self-loop: dropped
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.is_empty());
        assert!(dg.is_compacted());
        assert_eq!(dg.snapshot(), path4());
    }

    #[test]
    fn insert_then_delete_in_one_batch_cancels() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(0, 3);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.is_empty());
        assert!(!dg.has_arc(0, 3));
        // ... and deleting then re-inserting a base edge also cancels.
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).delete(0, 1);
        // inserts run first: insert is a no-op, delete tombstones.
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.deleted, vec![(0, 1), (1, 0)]);
        assert!(!dg.has_arc(0, 1));
    }

    #[test]
    fn out_of_range_is_rejected_atomically() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).insert(0, 9);
        let err = dg.apply_batch(&batch).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            }
        );
        // Nothing from the batch applied.
        assert!(!dg.has_arc(0, 3));
        assert!(dg.is_compacted());
        // Removals are range-checked too (against the grown id space).
        let mut batch = EdgeBatch::new();
        batch.add_nodes(1).remove_node(9);
        let err = dg.apply_batch(&batch).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 9,
                num_nodes: 5
            }
        );
        assert_eq!(dg.num_nodes(), 4);
    }

    #[test]
    fn compaction_triggers_on_threshold() {
        let g = GraphBuilder::new(Direction::Directed, 50).build().unwrap();
        let mut dg = DeltaGraph::new(g)
            .unwrap()
            .with_compaction_threshold(0.0, 4);
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).insert(1, 2).insert(2, 3);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(!out.compacted, "3 <= threshold 4");
        assert_eq!(dg.overlay_len(), 3);
        let mut batch = EdgeBatch::new();
        batch.insert(3, 4).insert(4, 5);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.compacted, "5 > threshold 4");
        assert!(dg.is_compacted());
        assert_eq!(dg.base().num_arcs(), 5);
        assert_eq!(dg.num_arcs(), 5);
    }

    #[test]
    fn compaction_folds_growth_and_weights() {
        let mut dg = DeltaGraph::new(weighted3())
            .unwrap()
            .with_compaction_threshold(0.0, 0);
        let mut batch = EdgeBatch::new();
        batch.add_nodes(1).insert_weighted(2, 3, 4.0);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.compacted);
        assert!(dg.is_compacted());
        assert_eq!(dg.base().num_nodes(), 4);
        assert_eq!(dg.base().arc_weight(2, 3), Some(4.0));
        assert_eq!(dg.num_nodes(), 4);
    }

    #[test]
    fn snapshot_matches_direct_build() {
        let mut b = GraphBuilder::new(Direction::Directed, 6);
        b.add_edge(0, 1);
        b.add_edge(0, 4);
        b.add_edge(2, 3);
        b.add_edge(5, 0);
        let mut dg = DeltaGraph::new(b.build().unwrap()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2).insert(4, 5).delete(0, 4).delete(2, 3);
        dg.apply_batch(&batch).unwrap();

        let mut direct = GraphBuilder::new(Direction::Directed, 6);
        for (u, v) in [(0, 1), (5, 0), (0, 2), (4, 5)] {
            direct.add_edge(u, v);
        }
        assert_eq!(dg.snapshot(), direct.build().unwrap());

        let arcs: Vec<_> = dg.arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (4, 5), (5, 0)]);
    }

    #[test]
    fn weighted_snapshot_matches_direct_build() {
        let mut dg = DeltaGraph::new(weighted3()).unwrap();
        let mut batch = EdgeBatch::new();
        batch
            .insert_weighted(2, 0, 3.0)
            .set_weight(0, 1, 6.0)
            .delete(0, 2);
        dg.apply_batch(&batch).unwrap();

        let mut direct = GraphBuilder::new(Direction::Directed, 3);
        direct.add_weighted_edge(0, 1, 6.0);
        direct.add_weighted_edge(1, 2, 1.0);
        direct.add_weighted_edge(2, 0, 3.0);
        assert_eq!(dg.snapshot(), direct.build().unwrap());
    }

    #[test]
    fn touched_nodes_and_degree_changes() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(1, 2);
        let out = dg.apply_batch(&batch).unwrap();
        // Undirected: arcs (0,3),(3,0) inserted, (1,2),(2,1) deleted.
        assert_eq!(out.delta.touched_nodes(), vec![0, 1, 2, 3]);
        // Every endpoint is a source of one mirrored arc: 0 and 3 gained an
        // out-arc, 1 and 2 lost one.
        assert_eq!(
            out.delta.source_degree_changes(),
            vec![(0, 1), (1, -1), (2, -1), (3, 1)]
        );
        // On an unweighted base the Θ changes agree numerically.
        assert_eq!(
            out.delta.source_theta_changes(),
            vec![(0, 1.0), (1, -1.0), (2, -1.0), (3, 1.0)]
        );
        // A swap at one source nets to zero but stays reported.
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2).delete(0, 1);
        let out = dg.apply_batch(&batch).unwrap();
        let changes = out.delta.source_degree_changes();
        assert!(changes.contains(&(0, 0)));
        assert!(out.delta.touched_nodes().contains(&0));
        assert!(out
            .delta
            .source_theta_changes()
            .iter()
            .any(|&(s, d)| s == 0 && d == 0.0));
        // Empty delta: empty frontier.
        assert!(ArcDelta::default().touched_nodes().is_empty());
        assert!(ArcDelta::default().source_degree_changes().is_empty());
        assert!(ArcDelta::default().source_theta_changes().is_empty());
        assert!(ArcDelta::default().is_empty());
    }

    #[test]
    fn edge_batch_translates_through_permutation() {
        use crate::permute::NodePermutation;
        let g = path4();
        let p = NodePermutation::degree_descending(&g);
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(1, 2).insert(0, 9); // 9 is out of range
        batch.add_nodes(1).remove_node(2);
        let t = batch.permuted(&p);
        assert_eq!(t.inserts[0], (p.to_internal(0), p.to_internal(3)));
        assert_eq!(t.deletes[0], (p.to_internal(1), p.to_internal(2)));
        // Beyond-range ids identity-extend so apply_batch names the
        // caller's id (and grown tail ids pass through untranslated).
        assert_eq!(t.inserts[1], (p.to_internal(0), 9));
        assert_eq!(t.new_nodes, 1);
        assert_eq!(t.removed_nodes, vec![p.to_internal(2)]);
        let mut dg = DeltaGraph::new(p.permute_graph(&g).unwrap()).unwrap();
        assert_eq!(
            dg.apply_batch(&t).unwrap_err(),
            GraphError::NodeOutOfRange {
                node: 9,
                num_nodes: 5
            }
        );
    }

    #[test]
    fn into_snapshot_compacts() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2);
        dg.apply_batch(&batch).unwrap();
        let g = dg.into_snapshot();
        assert!(g.has_arc(0, 2) && g.has_arc(2, 0));
        assert_eq!(g.num_edges(), 4);
    }
}
