//! Incremental graph updates: a delta overlay over an immutable [`CsrGraph`].
//!
//! [`CsrGraph`] is deliberately immutable — every solver in the workspace
//! leans on its frozen layout. A serving system, however, receives edge
//! insertions and deletions continuously and cannot afford a full
//! builder-path rebuild (edge soup, counting sort, per-node sort, dedup)
//! on every change. [`DeltaGraph`] closes the gap with the classic
//! append/tombstone design:
//!
//! * a **base** CSR snapshot (immutable, shared with every reader);
//! * an **overlay** of pending arc insertions and deletions (tombstones),
//!   kept as ordered sets so membership tests and per-source merges stay
//!   logarithmic/linear;
//! * [`DeltaGraph::apply_batch`] — apply a batch of edge edits, reporting
//!   the *effective* arc-level delta (no-ops removed, undirected edges
//!   mirrored) so downstream caches ([`CscStructure`]) can be patched
//!   instead of rebuilt;
//! * **compaction** — once the overlay exceeds a configurable fraction of
//!   the base arc count, the overlay is folded into a fresh base CSR by a
//!   per-source merge (no builder round-trip), keeping amortized cost per
//!   mutated arc constant. See `DESIGN.md` for the threshold rationale.
//!
//! The logical graph is always `(base ∖ deletes) ∪ inserts`;
//! [`DeltaGraph::snapshot`] materializes it as a plain [`CsrGraph`] for the
//! solver stack.
//!
//! [`CscStructure`]: crate::transpose::CscStructure

use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::{GraphError, Result};
use std::collections::BTreeSet;

/// A batch of logical edge edits to apply in one [`DeltaGraph::apply_batch`]
/// call. For undirected graphs each edge stands for its two mirrored arcs.
///
/// Within one batch, all insertions apply before all deletions (so a batch
/// that inserts and deletes the same edge nets to "absent"). Self-loops are
/// dropped, mirroring [`crate::builder::SelfLoopPolicy::Drop`], the policy
/// every graph in this workspace is built under.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    /// Edges to insert (ignored when already present).
    pub inserts: Vec<(NodeId, NodeId)>,
    /// Edges to delete (ignored when already absent).
    pub deletes: Vec<(NodeId, NodeId)>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an edge insertion.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.inserts.push((u, v));
        self
    }

    /// Queue an edge deletion.
    pub fn delete(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.deletes.push((u, v));
        self
    }

    /// Translate every endpoint through a node permutation (external →
    /// internal ids), preserving edit order. Serving layers that run their
    /// [`DeltaGraph`] in a cache-aware internal order (see
    /// [`crate::permute::NodePermutation`]) translate each incoming batch
    /// once — O(batch) — at the boundary.
    ///
    /// Out-of-range endpoints are passed through untranslated so the
    /// receiving [`DeltaGraph::apply_batch`] reports them with the id the
    /// caller actually supplied (external ids cover `0..n`, exactly the
    /// permutation's domain, so any in-range id translates).
    pub fn permuted(&self, perm: &crate::permute::NodePermutation) -> EdgeBatch {
        let map = |v: NodeId| perm.forward().get(v as usize).copied().unwrap_or(v);
        EdgeBatch {
            inserts: self
                .inserts
                .iter()
                .map(|&(u, v)| (map(u), map(v)))
                .collect(),
            deletes: self
                .deletes
                .iter()
                .map(|&(u, v)| (map(u), map(v)))
                .collect(),
        }
    }

    /// Number of queued edit records.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// `true` when no edits are queued.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// The *effective* arc-level change produced by one batch: exactly the arcs
/// whose presence flipped, with undirected edges expanded to both mirrored
/// arcs and all no-ops (re-inserting a present arc, deleting an absent one,
/// insert-then-delete within the batch) removed.
///
/// Both lists are sorted by `(source, target)` and disjoint. This is the
/// currency of the incremental maintenance path:
/// [`CscStructure::patched`](crate::transpose::CscStructure::patched)
/// consumes it to update a transpose without a full rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArcDelta {
    /// Arcs that became present.
    pub inserted: Vec<(NodeId, NodeId)>,
    /// Arcs that became absent.
    pub deleted: Vec<(NodeId, NodeId)>,
}

impl ArcDelta {
    /// Total number of flipped arcs.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// `true` when the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// The **touched-node frontier**: every node whose in- or out-arc set
    /// the batch changed (sources and targets of flipped arcs), sorted and
    /// deduplicated. This is the seed set of residual-localized re-solvers:
    /// the warm-start residual of a rank vector is exactly zero (up to the
    /// previous solve's tolerance) outside the neighborhood of these nodes.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .inserted
            .iter()
            .chain(&self.deleted)
            .flat_map(|&(s, t)| [s, t])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Net out-degree change per source of a flipped arc, sorted by node id
    /// (zero-net sources are retained: their neighbor *set* still changed).
    /// Downstream consumers use this to find nodes whose degree table (`Θ`)
    /// entries — and therefore every transition probability pointing at
    /// them — changed, and to reconstruct pre-batch dangling status.
    pub fn source_degree_changes(&self) -> Vec<(NodeId, i64)> {
        let mut net: Vec<(NodeId, i64)> = Vec::with_capacity(self.len());
        for &(s, _) in &self.inserted {
            net.push((s, 1));
        }
        for &(s, _) in &self.deleted {
            net.push((s, -1));
        }
        net.sort_unstable_by_key(|&(s, _)| s);
        let mut out: Vec<(NodeId, i64)> = Vec::new();
        for (s, d) in net {
            match out.last_mut() {
                Some((last, acc)) if *last == s => *acc += d,
                _ => out.push((s, d)),
            }
        }
        out
    }
}

/// What one [`DeltaGraph::apply_batch`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Effective arc-level change relative to the pre-batch logical graph.
    pub delta: ArcDelta,
    /// Whether the overlay crossed the threshold and was compacted into a
    /// fresh base CSR at the end of the batch.
    pub compacted: bool,
}

/// Default overlay-size fraction of the base arc count that triggers
/// compaction (see `DESIGN.md` for the amortization argument).
pub const DEFAULT_COMPACTION_FRACTION: f64 = 1.0 / 16.0;

/// Default floor on the compaction threshold, so tiny graphs don't compact
/// on every batch.
pub const DEFAULT_COMPACTION_MIN_ARCS: usize = 256;

/// An evolving graph: an immutable CSR base plus an append/tombstone
/// overlay of arc edits, with automatic compaction.
///
/// Only unweighted graphs are supported (every solver workload this serves
/// is structural; weighted deltas would need per-arc weight reconciliation
/// rules that nothing downstream consumes yet).
///
/// # Examples
/// ```
/// use d2pr_graph::builder::GraphBuilder;
/// use d2pr_graph::csr::Direction;
/// use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
///
/// let mut b = GraphBuilder::new(Direction::Undirected, 4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let mut dg = DeltaGraph::new(b.build().unwrap()).unwrap();
///
/// let mut batch = EdgeBatch::new();
/// batch.insert(2, 3).delete(0, 1);
/// let outcome = dg.apply_batch(&batch).unwrap();
/// assert_eq!(outcome.delta.inserted, vec![(2, 3), (3, 2)]);
/// assert_eq!(outcome.delta.deleted, vec![(0, 1), (1, 0)]);
///
/// let g = dg.snapshot();
/// assert!(g.has_arc(2, 3) && g.has_arc(3, 2));
/// assert!(!g.has_arc(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: CsrGraph,
    /// Arcs present in the logical graph but not in `base`. Disjoint from
    /// `deletes`; never contains an arc of `base`.
    inserts: BTreeSet<(NodeId, NodeId)>,
    /// Tombstoned arcs of `base` (absent from the logical graph).
    deletes: BTreeSet<(NodeId, NodeId)>,
    compaction_fraction: f64,
    compaction_min_arcs: usize,
}

impl DeltaGraph {
    /// Wrap a base snapshot.
    ///
    /// # Errors
    /// Returns [`GraphError::WeightMismatch`] for weighted graphs.
    pub fn new(base: CsrGraph) -> Result<Self> {
        if base.is_weighted() {
            return Err(GraphError::WeightMismatch {
                graph_weighted: true,
            });
        }
        Ok(Self {
            base,
            inserts: BTreeSet::new(),
            deletes: BTreeSet::new(),
            compaction_fraction: DEFAULT_COMPACTION_FRACTION,
            compaction_min_arcs: DEFAULT_COMPACTION_MIN_ARCS,
        })
    }

    /// Override the compaction threshold: the overlay is folded into the
    /// base once it holds more than `max(min_arcs, fraction · base_arcs)`
    /// entries. A `fraction` of 0 compacts after every non-empty batch
    /// (with `min_arcs` 0); `f64::INFINITY` disables auto-compaction.
    pub fn with_compaction_threshold(mut self, fraction: f64, min_arcs: usize) -> Self {
        assert!(
            fraction >= 0.0 && !fraction.is_nan(),
            "compaction fraction must be non-negative"
        );
        self.compaction_fraction = fraction;
        self.compaction_min_arcs = min_arcs;
        self
    }

    /// The current base snapshot (excludes the overlay).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Whether arcs are directed (inherited from the base).
    pub fn direction(&self) -> Direction {
        self.base.direction()
    }

    /// Number of nodes (fixed at construction: deltas edit edges only).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Number of arcs in the logical graph (base − tombstones + inserts).
    pub fn num_arcs(&self) -> usize {
        self.base.num_arcs() + self.inserts.len() - self.deletes.len()
    }

    /// Number of logical edges (arcs, halved for undirected graphs).
    pub fn num_edges(&self) -> usize {
        match self.base.direction() {
            Direction::Directed => self.num_arcs(),
            Direction::Undirected => self.num_arcs() / 2,
        }
    }

    /// Pending overlay entries (inserts + tombstones).
    pub fn overlay_len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// `true` when the overlay is empty (base == logical graph).
    pub fn is_compacted(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Overlay size above which [`DeltaGraph::apply_batch`] compacts.
    pub fn compaction_threshold(&self) -> usize {
        let frac = self.compaction_fraction * self.base.num_arcs() as f64;
        // Saturate: an infinite/huge fraction means "never".
        let frac = if frac >= usize::MAX as f64 {
            usize::MAX
        } else {
            frac as usize
        };
        frac.max(self.compaction_min_arcs)
    }

    /// `true` when arc `u -> v` exists in the logical graph.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        if self.inserts.contains(&(u, v)) {
            return true;
        }
        self.base.has_arc(u, v) && !self.deletes.contains(&(u, v))
    }

    /// Iterate the logical graph's arcs as `(source, target)`, sorted.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let n = self.num_nodes() as u32;
        (0..n).flat_map(move |v| self.merged_neighbors(v).map(move |t| (v, t)))
    }

    /// Sorted out-neighbors of `v` in the logical graph (base merged with
    /// the overlay).
    fn merged_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let base = self
            .base
            .neighbors(v)
            .iter()
            .copied()
            .filter(move |&t| !self.deletes.contains(&(v, t)));
        let ins = self
            .inserts
            .range((v, 0)..=(v, NodeId::MAX))
            .map(|&(_, t)| t);
        MergeSorted::new(base, ins)
    }

    /// Apply a batch of edge edits. Insertions apply before deletions;
    /// undirected edges edit both mirrored arcs; self-loops and no-ops
    /// (inserting a present edge, deleting an absent one) are skipped.
    /// When the overlay crosses [`DeltaGraph::compaction_threshold`] after
    /// the batch, it is folded into a fresh base CSR.
    ///
    /// The batch is validated before any state changes: on error the graph
    /// is untouched.
    ///
    /// # Errors
    /// Returns [`GraphError::NodeOutOfRange`] when an edit references a
    /// node outside `0..num_nodes()` (the node set is fixed; deltas edit
    /// edges only).
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<BatchOutcome> {
        let n = self.num_nodes() as u32;
        for &(u, v) in batch.inserts.iter().chain(&batch.deletes) {
            if u >= n || v >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: if u >= n { u } else { v },
                    num_nodes: n,
                });
            }
        }
        let mirrored = self.base.direction() == Direction::Undirected;
        let mut eff_ins: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut eff_del: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();

        for &(u, v) in &batch.inserts {
            if u == v {
                continue;
            }
            self.insert_arc(u, v, &mut eff_ins, &mut eff_del);
            if mirrored {
                self.insert_arc(v, u, &mut eff_ins, &mut eff_del);
            }
        }
        for &(u, v) in &batch.deletes {
            if u == v {
                continue;
            }
            self.delete_arc(u, v, &mut eff_ins, &mut eff_del);
            if mirrored {
                self.delete_arc(v, u, &mut eff_ins, &mut eff_del);
            }
        }

        let compacted = self.overlay_len() > self.compaction_threshold();
        if compacted {
            self.compact();
        }
        Ok(BatchOutcome {
            delta: ArcDelta {
                inserted: eff_ins.into_iter().collect(),
                deleted: eff_del.into_iter().collect(),
            },
            compacted,
        })
    }

    /// Make arc `(u, v)` present; record the flip (with batch-internal
    /// delete/insert cancellation) in the effective-delta sets.
    fn insert_arc(
        &mut self,
        u: NodeId,
        v: NodeId,
        eff_ins: &mut BTreeSet<(NodeId, NodeId)>,
        eff_del: &mut BTreeSet<(NodeId, NodeId)>,
    ) {
        let arc = (u, v);
        let flipped = if self.deletes.remove(&arc) {
            true // un-tombstone a base arc
        } else if self.base.has_arc(u, v) {
            false // already present in base
        } else {
            self.inserts.insert(arc) // newly present unless already inserted
        };
        if flipped && !eff_del.remove(&arc) {
            eff_ins.insert(arc);
        }
    }

    /// Make arc `(u, v)` absent; record the flip as in
    /// [`DeltaGraph::insert_arc`].
    fn delete_arc(
        &mut self,
        u: NodeId,
        v: NodeId,
        eff_ins: &mut BTreeSet<(NodeId, NodeId)>,
        eff_del: &mut BTreeSet<(NodeId, NodeId)>,
    ) {
        let arc = (u, v);
        let flipped = if self.inserts.remove(&arc) {
            true // drop a pending insert
        } else if self.base.has_arc(u, v) {
            self.deletes.insert(arc) // tombstone unless already tombstoned
        } else {
            false // never present
        };
        if flipped && !eff_ins.remove(&arc) {
            eff_del.insert(arc);
        }
    }

    /// Materialize the logical graph as a plain [`CsrGraph`].
    ///
    /// One per-source merge of the (sorted) base adjacency with the
    /// (sorted) overlay — `O(V + E + Δ)`, with sequential copies for every
    /// untouched neighborhood. No builder round-trip: no edge soup, no
    /// counting sort, no per-node re-sort.
    pub fn snapshot(&self) -> CsrGraph {
        if self.is_compacted() {
            return self.base.clone();
        }
        let n = self.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets: Vec<NodeId> = Vec::with_capacity(self.num_arcs());
        for v in 0..n as u32 {
            targets.extend(self.merged_neighbors(v));
            offsets.push(targets.len());
        }
        CsrGraph::from_csr(self.base.direction(), offsets, targets, None)
            .expect("delta merge preserves CSR invariants")
    }

    /// Fold the overlay into a fresh base snapshot.
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        self.base = self.snapshot();
        self.inserts.clear();
        self.deletes.clear();
    }

    /// Consume the delta graph, returning the compacted CSR.
    pub fn into_snapshot(mut self) -> CsrGraph {
        self.compact();
        self.base
    }
}

/// Merge two ascending iterators into one ascending iterator. The two
/// streams are disjoint by the overlay invariant (an insert never shadows a
/// live base arc), so equality needs no special casing — but it is handled
/// anyway (both sides advance) to stay robust.
struct MergeSorted<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A: Iterator, B: Iterator> MergeSorted<A, B> {
    fn new(a: A, b: B) -> Self {
        Self {
            a: a.peekable(),
            b: b.peekable(),
        }
    }
}

impl<T: Ord + Copy, A: Iterator<Item = T>, B: Iterator<Item = T>> Iterator for MergeSorted<A, B> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match (self.a.peek().copied(), self.b.peek().copied()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    if x == y {
                        self.b.next();
                    }
                    self.a.next()
                } else {
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path4() -> CsrGraph {
        let mut b = GraphBuilder::new(Direction::Undirected, 4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn rejects_weighted_base() {
        let mut b = GraphBuilder::new(Direction::Directed, 2);
        b.add_weighted_edge(0, 1, 2.0);
        let g = b.build().unwrap();
        assert!(matches!(
            DeltaGraph::new(g),
            Err(GraphError::WeightMismatch { .. })
        ));
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(1, 2);
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.inserted, vec![(0, 3), (3, 0)]);
        assert_eq!(out.delta.deleted, vec![(1, 2), (2, 1)]);
        assert!(!out.compacted);
        assert!(dg.has_arc(0, 3) && dg.has_arc(3, 0));
        assert!(!dg.has_arc(1, 2) && !dg.has_arc(2, 1));
        assert_eq!(dg.num_arcs(), 6);
        assert_eq!(dg.num_edges(), 3);

        // Undo: the logical graph returns to the base.
        let mut undo = EdgeBatch::new();
        undo.insert(1, 2).delete(0, 3);
        let out = dg.apply_batch(&undo).unwrap();
        assert_eq!(out.delta.len(), 4);
        assert!(dg.is_compacted() || dg.overlay_len() == 0);
        assert_eq!(dg.snapshot(), path4());
    }

    #[test]
    fn noop_edits_report_empty_delta() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1); // already present
        batch.delete(0, 2); // never present
        batch.insert(2, 2); // self-loop: dropped
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.is_empty());
        assert!(dg.is_compacted());
        assert_eq!(dg.snapshot(), path4());
    }

    #[test]
    fn insert_then_delete_in_one_batch_cancels() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(0, 3);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.delta.is_empty());
        assert!(!dg.has_arc(0, 3));
        // ... and deleting then re-inserting a base edge also cancels.
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).delete(0, 1);
        // inserts run first: insert is a no-op, delete tombstones.
        let out = dg.apply_batch(&batch).unwrap();
        assert_eq!(out.delta.deleted, vec![(0, 1), (1, 0)]);
        assert!(!dg.has_arc(0, 1));
    }

    #[test]
    fn out_of_range_is_rejected_atomically() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).insert(0, 9);
        let err = dg.apply_batch(&batch).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            }
        );
        // Nothing from the batch applied.
        assert!(!dg.has_arc(0, 3));
        assert!(dg.is_compacted());
    }

    #[test]
    fn compaction_triggers_on_threshold() {
        let g = GraphBuilder::new(Direction::Directed, 50).build().unwrap();
        let mut dg = DeltaGraph::new(g)
            .unwrap()
            .with_compaction_threshold(0.0, 4);
        let mut batch = EdgeBatch::new();
        batch.insert(0, 1).insert(1, 2).insert(2, 3);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(!out.compacted, "3 <= threshold 4");
        assert_eq!(dg.overlay_len(), 3);
        let mut batch = EdgeBatch::new();
        batch.insert(3, 4).insert(4, 5);
        let out = dg.apply_batch(&batch).unwrap();
        assert!(out.compacted, "5 > threshold 4");
        assert!(dg.is_compacted());
        assert_eq!(dg.base().num_arcs(), 5);
        assert_eq!(dg.num_arcs(), 5);
    }

    #[test]
    fn snapshot_matches_direct_build() {
        let mut b = GraphBuilder::new(Direction::Directed, 6);
        b.add_edge(0, 1);
        b.add_edge(0, 4);
        b.add_edge(2, 3);
        b.add_edge(5, 0);
        let mut dg = DeltaGraph::new(b.build().unwrap()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2).insert(4, 5).delete(0, 4).delete(2, 3);
        dg.apply_batch(&batch).unwrap();

        let mut direct = GraphBuilder::new(Direction::Directed, 6);
        for (u, v) in [(0, 1), (5, 0), (0, 2), (4, 5)] {
            direct.add_edge(u, v);
        }
        assert_eq!(dg.snapshot(), direct.build().unwrap());

        let arcs: Vec<_> = dg.arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (4, 5), (5, 0)]);
    }

    #[test]
    fn touched_nodes_and_degree_changes() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(1, 2);
        let out = dg.apply_batch(&batch).unwrap();
        // Undirected: arcs (0,3),(3,0) inserted, (1,2),(2,1) deleted.
        assert_eq!(out.delta.touched_nodes(), vec![0, 1, 2, 3]);
        // Every endpoint is a source of one mirrored arc: 0 and 3 gained an
        // out-arc, 1 and 2 lost one.
        assert_eq!(
            out.delta.source_degree_changes(),
            vec![(0, 1), (1, -1), (2, -1), (3, 1)]
        );
        // A swap at one source nets to zero but stays reported.
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2).delete(0, 1);
        let out = dg.apply_batch(&batch).unwrap();
        let changes = out.delta.source_degree_changes();
        assert!(changes.contains(&(0, 0)));
        assert!(out.delta.touched_nodes().contains(&0));
        // Empty delta: empty frontier.
        assert!(ArcDelta::default().touched_nodes().is_empty());
        assert!(ArcDelta::default().source_degree_changes().is_empty());
    }

    #[test]
    fn edge_batch_translates_through_permutation() {
        use crate::permute::NodePermutation;
        let g = path4();
        let p = NodePermutation::degree_descending(&g);
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3).delete(1, 2).insert(0, 9); // 9 is out of range
        let t = batch.permuted(&p);
        assert_eq!(t.inserts[0], (p.to_internal(0), p.to_internal(3)));
        assert_eq!(t.deletes[0], (p.to_internal(1), p.to_internal(2)));
        // Out-of-range ids pass through so apply_batch names the caller's id.
        assert_eq!(t.inserts[1], (p.to_internal(0), 9));
        let mut dg = DeltaGraph::new(p.permute_graph(&g).unwrap()).unwrap();
        assert_eq!(
            dg.apply_batch(&t).unwrap_err(),
            GraphError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            }
        );
    }

    #[test]
    fn into_snapshot_compacts() {
        let mut dg = DeltaGraph::new(path4()).unwrap();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 2);
        dg.apply_batch(&batch).unwrap();
        let g = dg.into_snapshot();
        assert!(g.has_arc(0, 2) && g.has_arc(2, 0));
        assert_eq!(g.num_edges(), 4);
    }
}
