//! Co-occurrence projections of bipartite graphs.
//!
//! Every data graph in the paper's evaluation (Table 3) is a projection:
//! "movie nodes are connected by an edge if they share common contributors",
//! "actor-actor graph based on whether two actors played in the same movie",
//! and so on. [`project_left`] builds exactly that graph: an undirected
//! weighted [`CsrGraph`] over the left side, where the weight of edge
//! `{a, b}` is the number of shared right-side neighbors (e.g. "# of common
//! movies" — the edge-weight semantics of the paper's Figures 9–11).

use crate::bipartite::BipartiteGraph;
use crate::csr::{CsrGraph, Direction, NodeId};
use crate::error::Result;

/// Tuning for a projection pass.
#[derive(Debug, Clone, Copy)]
pub struct ProjectionConfig {
    /// Keep an edge only when at least this many right-side neighbors are
    /// shared. `1` (default) reproduces the paper's graphs.
    pub min_shared: u32,
    /// Skip containers with more than this many members when forming pairs.
    /// A single huge container contributes O(k²) pairs; real pipelines cap
    /// this (`None` = no cap, the default).
    pub max_container_size: Option<u32>,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        Self {
            min_shared: 1,
            max_container_size: None,
        }
    }
}

/// Project the bipartite graph onto its left side (entities), connecting two
/// entities iff they co-occur in at least `config.min_shared` containers.
/// The resulting graph is undirected and weighted by co-occurrence count.
pub fn project_left(b: &BipartiteGraph, config: ProjectionConfig) -> Result<CsrGraph> {
    // Enumerate unordered co-occurrence pairs (u < v), then run-length encode
    // counts after a sort. This is allocation-heavier than a hash map but has
    // predictable O(P log P) behaviour and no hashing cost on the hot path.
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for r in 0..b.num_right() as u32 {
        let members = b.members_of(r);
        if let Some(cap) = config.max_container_size {
            if members.len() as u32 > cap {
                continue;
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                // members are sorted, so members[i] < members[j] always holds
                pairs.push((members[i], members[j]));
            }
        }
    }
    pairs.sort_unstable();

    let mut offsets_builder =
        crate::builder::GraphBuilder::new(Direction::Undirected, b.num_left());
    let mut idx = 0;
    while idx < pairs.len() {
        let (u, v) = pairs[idx];
        let mut count = 1u32;
        while idx + (count as usize) < pairs.len() && pairs[idx + count as usize] == (u, v) {
            count += 1;
        }
        if count >= config.min_shared {
            offsets_builder.add_weighted_edge(u, v, f64::from(count));
        }
        idx += count as usize;
    }
    offsets_builder.build()
}

/// Project onto the right side (containers) — e.g. the movie–movie graph
/// from the actor×movie affiliation. Equivalent to projecting the transpose.
pub fn project_right(b: &BipartiteGraph, config: ProjectionConfig) -> Result<CsrGraph> {
    project_left(&b.transpose(), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// actors {0,1,2,3} x movies {0,1,2}:
    ///   movie 0: {0,1}, movie 1: {0,1,2}, movie 2: {3}
    fn affiliation() -> BipartiteGraph {
        BipartiteGraph::from_memberships(4, 3, &[(0, 0), (1, 0), (0, 1), (1, 1), (2, 1), (3, 2)])
            .unwrap()
    }

    #[test]
    fn left_projection_counts_shared_containers() {
        let g = project_left(&affiliation(), ProjectionConfig::default()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        // 0-1 share movies {0,1} => weight 2; 0-2 and 1-2 share movie 1.
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor_weights(0).unwrap(), &[2.0, 1.0]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        // actor 3 is isolated (only member of movie 2)
        assert!(g.neighbors(3).is_empty());
        assert!(!g.is_directed());
    }

    #[test]
    fn right_projection_is_transpose_projection() {
        let g = project_right(&affiliation(), ProjectionConfig::default()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        // movies 0 and 1 share actors {0,1} => weight 2; movie 2 isolated.
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbor_weights(0).unwrap(), &[2.0]);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn min_shared_threshold_prunes() {
        let cfg = ProjectionConfig {
            min_shared: 2,
            ..Default::default()
        };
        let g = project_left(&affiliation(), cfg).unwrap();
        // only the 0-1 pair shares >= 2 movies
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn container_cap_skips_big_containers() {
        let cfg = ProjectionConfig {
            min_shared: 1,
            max_container_size: Some(2),
        };
        let g = project_left(&affiliation(), cfg).unwrap();
        // movie 1 (3 members) is skipped; only movie 0 contributes the 0-1 edge
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbor_weights(0).unwrap(), &[1.0]);
    }

    #[test]
    fn empty_bipartite_projects_to_empty() {
        let b = BipartiteGraph::from_memberships(3, 2, &[]).unwrap();
        let g = project_left(&b, ProjectionConfig::default()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn projection_weights_are_symmetric() {
        let g = project_left(&affiliation(), ProjectionConfig::default()).unwrap();
        for (u, v, w) in g.weighted_arcs() {
            let ns = g.neighbors(v);
            let pos = ns.binary_search(&u).expect("mirror arc exists");
            let w2 = g.neighbor_weights(v).unwrap()[pos];
            assert_eq!(w, w2);
        }
    }
}
