//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a node id that is outside the declared node range.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes the graph was declared with.
        num_nodes: u32,
    },
    /// The graph was declared with more nodes than the `u32` id space holds.
    TooManyNodes(usize),
    /// A weighted API was called on an unweighted graph (or vice versa).
    WeightMismatch {
        /// Whether the graph carries weights.
        graph_weighted: bool,
    },
    /// An edge weight was not a finite, non-negative number.
    InvalidWeight(f64),
    /// Parsing an edge-list document failed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary snapshot was malformed or truncated.
    Snapshot(String),
    /// An I/O error occurred while reading or writing a graph.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceed the u32 node id space")
            }
            GraphError::WeightMismatch { graph_weighted } => {
                if *graph_weighted {
                    write!(
                        f,
                        "graph is weighted but an unweighted operation was requested"
                    )
                } else {
                    write!(
                        f,
                        "graph is unweighted but a weighted operation was requested"
                    )
                }
            }
            GraphError::InvalidWeight(w) => {
                write!(f, "edge weight {w} is not finite and non-negative")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_out_of_range() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            num_nodes: 3,
        };
        assert_eq!(e.to_string(), "node id 7 out of range (graph has 3 nodes)");
    }

    #[test]
    fn display_weight_mismatch_both_directions() {
        let w = GraphError::WeightMismatch {
            graph_weighted: true,
        };
        assert!(w.to_string().contains("graph is weighted"));
        let u = GraphError::WeightMismatch {
            graph_weighted: false,
        };
        assert!(u.to_string().contains("graph is unweighted"));
    }

    #[test]
    fn display_parse_error_mentions_line() {
        let e = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::TooManyNodes(9), GraphError::TooManyNodes(9));
        assert_ne!(GraphError::TooManyNodes(9), GraphError::TooManyNodes(8));
    }
}
