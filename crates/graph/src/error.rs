//! Error type shared by the graph substrate.

use std::fmt;

/// Location context of a malformed binary file: *which* file went bad,
/// *where*, and *how*. Carried by [`GraphError::Corrupt`] (and reused by
/// the `d2pr-store` crate's log/snapshot decoders) so corruption reports
/// are typed fields a caller can match on, not prose.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptFile {
    /// The file the bytes came from, when known (`None` for in-memory
    /// buffers).
    pub path: Option<String>,
    /// Byte offset at which decoding failed.
    pub offset: u64,
    /// What went wrong at that offset.
    pub kind: CorruptKind,
}

impl CorruptFile {
    /// A corruption record with no file context (in-memory decode).
    pub fn at(offset: u64, kind: CorruptKind) -> Self {
        Self {
            path: None,
            offset,
            kind,
        }
    }

    /// Attach the source file's path (kept if already set).
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        if self.path.is_none() {
            self.path = Some(path.into());
        }
        self
    }
}

impl fmt::Display for CorruptFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            Some(p) => write!(f, "{p}: byte {}: {}", self.offset, self.kind),
            None => write!(f, "byte {}: {}", self.offset, self.kind),
        }
    }
}

/// The specific defect found at [`CorruptFile::offset`].
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptKind {
    /// The data ended before a complete field/section.
    Truncated {
        /// Bytes the decoder needed at the offset.
        needed: u64,
        /// Bytes actually available there.
        available: u64,
    },
    /// A magic number did not match.
    BadMagic {
        /// The value found.
        found: u32,
        /// The value required.
        expected: u32,
    },
    /// A format version this build does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// A checksum over the preceding bytes did not verify.
    Checksum {
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed from the bytes.
        computed: u32,
    },
    /// A structurally impossible value (described field by field).
    Malformed(String),
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::Truncated { needed, available } => {
                write!(f, "truncated (need {needed} bytes, {available} available)")
            }
            CorruptKind::BadMagic { found, expected } => {
                write!(f, "bad magic 0x{found:08x} (expected 0x{expected:08x})")
            }
            CorruptKind::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported version {found} (this build speaks {supported})"
                )
            }
            CorruptKind::Checksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch (stored 0x{stored:08x}, computed 0x{computed:08x})"
                )
            }
            CorruptKind::Malformed(what) => write!(f, "malformed: {what}"),
        }
    }
}

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a node id that is outside the declared node range.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes the graph was declared with.
        num_nodes: u32,
    },
    /// The graph was declared with more nodes than the `u32` id space holds.
    TooManyNodes(usize),
    /// A weighted API was called on an unweighted graph (or vice versa).
    WeightMismatch {
        /// Whether the graph carries weights.
        graph_weighted: bool,
    },
    /// An edge weight was not a finite, non-negative number.
    InvalidWeight(f64),
    /// Parsing an edge-list document failed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary snapshot was malformed or truncated.
    Snapshot(String),
    /// A binary file failed to decode, with file-path and byte-offset
    /// context (the typed successor of [`GraphError::Snapshot`]; all
    /// binary decoders in [`crate::io`] report through this).
    Corrupt(CorruptFile),
    /// An I/O error occurred while reading or writing a graph.
    Io(String),
    /// An I/O error on a named file (open/read/write/sync), with the path
    /// that failed.
    FileIo {
        /// The file being accessed.
        path: String,
        /// The operation that failed (`"open"`, `"read"`, ...).
        op: &'static str,
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceed the u32 node id space")
            }
            GraphError::WeightMismatch { graph_weighted } => {
                if *graph_weighted {
                    write!(
                        f,
                        "graph is weighted but an unweighted operation was requested"
                    )
                } else {
                    write!(
                        f,
                        "graph is unweighted but a weighted operation was requested"
                    )
                }
            }
            GraphError::InvalidWeight(w) => {
                write!(f, "edge weight {w} is not finite and non-negative")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            GraphError::Corrupt(c) => write!(f, "corrupt file: {c}"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::FileIo { path, op, message } => {
                write!(f, "i/o error: {op} {path}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

impl From<CorruptFile> for GraphError {
    fn from(c: CorruptFile) -> Self {
        GraphError::Corrupt(c)
    }
}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_out_of_range() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            num_nodes: 3,
        };
        assert_eq!(e.to_string(), "node id 7 out of range (graph has 3 nodes)");
    }

    #[test]
    fn display_weight_mismatch_both_directions() {
        let w = GraphError::WeightMismatch {
            graph_weighted: true,
        };
        assert!(w.to_string().contains("graph is weighted"));
        let u = GraphError::WeightMismatch {
            graph_weighted: false,
        };
        assert!(u.to_string().contains("graph is unweighted"));
    }

    #[test]
    fn display_parse_error_mentions_line() {
        let e = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }

    #[test]
    fn corrupt_file_display_carries_path_offset_and_kind() {
        let c = CorruptFile::at(
            42,
            CorruptKind::Checksum {
                stored: 0xDEAD_BEEF,
                computed: 0x0BAD_F00D,
            },
        )
        .with_path("/tmp/wal-0.log");
        let e: GraphError = c.clone().into();
        let text = e.to_string();
        assert!(text.contains("/tmp/wal-0.log"));
        assert!(text.contains("byte 42"));
        assert!(text.contains("0xdeadbeef"));
        // with_path keeps an already-set path.
        assert_eq!(
            c.with_path("/elsewhere").path.as_deref(),
            Some("/tmp/wal-0.log")
        );
        let t = CorruptFile::at(
            0,
            CorruptKind::Truncated {
                needed: 8,
                available: 3,
            },
        );
        assert!(t.to_string().contains("need 8 bytes"));
    }

    #[test]
    fn file_io_display_names_path_and_op() {
        let e = GraphError::FileIo {
            path: "/data/snap.bin".into(),
            op: "fsync",
            message: "disk on fire".into(),
        };
        assert!(e.to_string().contains("fsync /data/snap.bin"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::TooManyNodes(9), GraphError::TooManyNodes(9));
        assert_ne!(GraphError::TooManyNodes(9), GraphError::TooManyNodes(8));
    }
}
