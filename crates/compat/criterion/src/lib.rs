//! Minimal, API-compatible stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored because the build environment has no registry access.
//!
//! Covers the surface the workspace's bench targets use: [`Criterion`],
//! [`Criterion::benchmark_group`], `sample_size` / `measurement_time`
//! builders, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (simpler than real criterion, same shape): after one
//! warm-up call, each benchmark closure is timed over `sample_size` samples
//! or until the group's `measurement_time` budget is spent, whichever comes
//! first; mean/min/max per-iteration times are printed to stdout. There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocations like real criterion).
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut b);
        self.criterion.report(&self.name, &id.id, &b.samples);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration, Duration)>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: Duration::from_secs(5),
            target_samples: 10,
        };
        f(&mut b);
        self.report("", &id.id, &b.samples);
        self
    }

    fn report(&mut self, group: &str, id: &str, samples: &[Duration]) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if samples.is_empty() {
            println!("{full:<60} no samples collected");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{full:<60} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            samples.len()
        );
        self.results.push((full, mean, *min));
    }

    /// Print the closing summary (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks run", self.results.len());
    }

    /// Mean time of the first recorded benchmark whose full id contains
    /// `substring` (shim extension, used by benches that post-process
    /// their own timings into machine-readable reports).
    pub fn mean_of(&self, substring: &str) -> Option<Duration> {
        self.results
            .iter()
            .find(|(id, _, _)| id.contains(substring))
            .map(|&(_, mean, _)| mean)
    }

    /// Minimum sample time of the first recorded benchmark whose full id
    /// contains `substring` (shim extension). More robust than the mean
    /// against scheduler stalls — the smoke benches report it so the CI
    /// perf gate is not at the mercy of one noisy sample.
    pub fn min_of(&self, substring: &str) -> Option<Duration> {
        self.results
            .iter()
            .find(|(id, _, _)| id.contains(substring))
            .map(|&(_, _, min)| min)
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3).measurement_time(Duration::from_millis(50));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].0.contains("demo/noop"));
        assert!(c.results[1].0.contains("demo/sum/4"));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("kernel", 2.5).id, "kernel/2.5");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
