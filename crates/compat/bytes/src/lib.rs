//! Minimal, API-compatible stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, vendored because the build environment has no registry access.
//!
//! Covers exactly the surface the graph snapshot codec uses: [`Bytes`],
//! [`BytesMut`], and the little-endian `get_*`/`put_*` halves of [`Buf`] /
//! [`BufMut`]. Cheap cloning/slicing is preserved via `Arc` sharing.

use std::ops::Range;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer (a shared `Arc<[u8]>` window).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the visible window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential little-endian reader over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Sequential little-endian writer into a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(258);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(0.125);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 258);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 0.125);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..2);
        assert_eq!(ss.to_vec(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.get_u32_le();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
