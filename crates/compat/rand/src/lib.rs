//! Minimal, API-compatible stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, vendored because the build environment has no registry access.
//!
//! Only the surface the workspace actually uses is provided:
//!
//! * [`Rng`] with `gen`, `gen_range` (integer and float ranges, exclusive and
//!   inclusive) and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a xoshiro256++ generator seeded via SplitMix64.
//!
//! The streams differ from the real `rand` crate's StdRng (which is ChaCha12),
//! so generated worlds are deterministic per seed but not bit-identical to
//! runs against the real crate. Everything in the workspace only relies on
//! determinism and statistical quality, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw bits via `rng.gen()`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive); `lo < hi` required.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (`hi` inclusive); `lo <= hi` required.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Widening-multiply range reduction (bias < 2^-64).
                let hi_bits = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi_bits as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let hi_bits = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi_bits as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its canonical distribution
    /// (`f64`/`f32`: uniform `[0,1)`; integers: uniform over all values).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = rng.gen_range(5u32..8);
            assert!((5..8).contains(&x));
            let y = rng.gen_range(0usize..=1);
            seen_lo |= y == 0;
            seen_hi |= y == 1;
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
        let z = rng.gen_range(-2.0f64..=2.0);
        assert!((-2.0..=2.0).contains(&z));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
