//! Minimal, API-compatible stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored because the
//! build environment has no registry access.
//!
//! Covered surface (exactly what the workspace's property tests use):
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `name(arg in strategy, ...)` test functions;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::prop_flat_map`];
//! * strategies: integer/float ranges (exclusive and inclusive), tuples up to
//!   arity 8, [`Just`], [`any`], and [`collection::vec`].
//!
//! Differences from real proptest: inputs are drawn from a fixed-seed PRNG
//! (so runs are deterministic) and failing cases are reported but **not
//! shrunk**. Rejections via `prop_assume!` simply skip the case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Error raised inside a property body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this case.
    Reject,
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

/// The PRNG handed to strategies.
pub type TestRunner = StdRng;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.gen::<f64>() < 0.5
    }
}

impl Arbitrary for f64 {
    /// Finite floats across a wide dynamic range (both signs, magnitudes
    /// from subnormal-adjacent to ~1e18) — not bitwise-arbitrary, but wide
    /// enough to exercise numeric code. NaN/inf are deliberately excluded,
    /// matching how the workspace's properties use `any::<f64>()`.
    fn arbitrary(runner: &mut TestRunner) -> Self {
        let mag = 10f64.powf(runner.gen_range(-18.0f64..18.0));
        let sign = if runner.gen::<f64>() < 0.5 { -1.0 } else { 1.0 };
        sign * mag
    }
}

/// The canonical strategy for `T` (`any::<u64>()` style).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Length bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

#[doc(hidden)]
pub fn __new_runner(seed: u64) -> TestRunner {
    StdRng::seed_from_u64(seed)
}

#[doc(hidden)]
pub fn __format_failure(name: &str, case: u32, inputs: &str, err: &TestCaseError) -> String {
    match err {
        TestCaseError::Reject => unreachable!("rejections are not failures"),
        TestCaseError::Fail(msg) => {
            format!("property '{name}' failed at case {case}\ninputs: {inputs}\n{msg}")
        }
    }
}

#[doc(hidden)]
pub fn __debug_inputs(parts: &[(&str, &dyn fmt::Debug)]) -> String {
    parts
        .iter()
        .map(|(n, v)| format!("{n} = {v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. See the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:tt in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Per-test deterministic seed derived from the test name.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            };
            let mut runner: $crate::TestRunner = $crate::__new_runner(seed);
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            // Allow rejections (prop_assume!) without spinning forever.
            let max_attempts = config.cases.saturating_mul(16).max(16);
            while ran < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut runner);)+
                let inputs = $crate::__debug_inputs(&[
                    $((stringify!($arg), &$arg as &dyn ::std::fmt::Debug),)+
                ]);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err(err) => {
                        panic!("{}", $crate::__format_failure(stringify!($name), ran, &inputs, &err));
                    }
                }
            }
            assert!(
                ran > 0,
                "property '{}' rejected every generated case ({} attempts)",
                stringify!($name),
                attempts
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in 0.5f64..=2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in collection::vec(0u32..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..4, 10u32..14).prop_map(|(a, b)| a + b),
            fixed in Just(7u8),
        ) {
            prop_assert!((10..18).contains(&pair));
            prop_assert_eq!(fixed, 7u8);
        }

        #[test]
        fn flat_map_dependent_values(
            (n, k) in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..10)),
        ) {
            prop_assert!((2..10).contains(&n));
            prop_assert!(k < 10);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
