//! Read-only recovery scan: latest checksum-valid snapshot + contiguous
//! log tail.
//!
//! The scan never mutates the data directory (the corruption battery
//! re-runs it against deliberately damaged inputs), never panics on bad
//! bytes, and fails only when *no* checksum-valid snapshot exists at all.
//! Its decisions:
//!
//! 1. **Snapshot choice** — try `snap-*.bin` newest-first; the first one
//!    that fully verifies wins, every rejected newer one is counted.
//!    `.tmp` leftovers of interrupted commits are ignored.
//! 2. **Tail assembly** — scan *every* `wal-*.log` to its checksum-valid
//!    prefix ([`crate::log::scan_log`]), pool the records newer than the
//!    chosen snapshot, and take the **contiguous** generation chain
//!    starting at `snapshot + 1`. Rotation keeps segment generation
//!    ranges disjoint, so when the newest snapshot is the one that was
//!    corrupted, the chain stitches across two segments (the retention
//!    rule in `durable` retires a segment only once no retained snapshot
//!    needs it).
//! 3. **Beyond a gap, nothing replays** — records past a hole in the
//!    chain describe batches whose predecessors were lost; applying them
//!    would rebuild a state that never existed. They are counted, not
//!    used, and never an error: recovery lands on the last reachable
//!    durable generation.

use crate::error::{Result, StoreError};
use crate::log::{parse_wal_name, scan_log, ScanStop};
use crate::snapshot::{load_snapshot, parse_snap_name, StoreSnapshot};
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::RecoveredParts;
use d2pr_core::transition::TransitionModel;
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::error::{CorruptFile, CorruptKind};
use d2pr_graph::permute::NodePermutation;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Everything a caller needs to revive serving from a data directory,
/// plus the scan's forensic counters.
#[derive(Debug)]
pub struct RecoveredState {
    /// Input for [`d2pr_core::serving::ServingEngine::recovered`].
    pub parts: RecoveredParts,
    /// The transition model persisted in the chosen snapshot.
    pub model: TransitionModel,
    /// The solver configuration persisted in the chosen snapshot.
    pub config: PageRankConfig,
    /// Generation of the chosen snapshot.
    pub snapshot_generation: u64,
    /// Newer snapshot files rejected by verification.
    pub corrupt_snapshots_skipped: usize,
    /// Log segments ending in an incomplete frame (crash mid-append).
    pub torn_log_tails: usize,
    /// Log segments ending in a checksum/decode failure.
    pub corrupt_log_tails: usize,
    /// Valid records already covered by the chosen snapshot.
    pub stale_records: usize,
    /// Valid records beyond a generation gap (not replayable).
    pub unreachable_records: usize,
}

impl RecoveredState {
    /// The generation serving will resume at after replay.
    pub fn durable_generation(&self) -> u64 {
        self.snapshot_generation + self.parts.tail.len() as u64
    }
}

/// Store files of one kind, as `(generation, path)` pairs sorted by
/// generation.
pub(crate) type GenFiles = Vec<(u64, PathBuf)>;

/// Inventory of the store files under `dir` (ignores foreign names and
/// `.tmp` leftovers).
pub(crate) fn list_store_files(dir: &Path) -> Result<(GenFiles, GenFiles)> {
    let entries = std::fs::read_dir(dir).map_err(|e| crate::error::io_err(dir, "read", &e))?;
    let mut snaps = Vec::new();
    let mut wals = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| crate::error::io_err(dir, "read", &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(generation) = parse_snap_name(name) {
            snaps.push((generation, entry.path()));
        } else if let Some(base) = parse_wal_name(name) {
            wals.push((base, entry.path()));
        }
    }
    snaps.sort_unstable_by_key(|&(generation, _)| generation);
    wals.sort_unstable_by_key(|&(base, _)| base);
    Ok((snaps, wals))
}

/// Scan `dir` and assemble the recoverable state (read-only; see the
/// module docs for the decision rules).
///
/// # Errors
/// [`StoreError::Io`] when the directory or a file cannot be read,
/// [`StoreError::NoDurableState`] when no snapshot verifies.
pub fn recover_dir(dir: &Path) -> Result<RecoveredState> {
    let (snaps, wals) = list_store_files(dir)?;

    // Newest verifying snapshot.
    let mut corrupt_snapshots_skipped = 0usize;
    let mut chosen: Option<StoreSnapshot> = None;
    for (_, path) in snaps.iter().rev() {
        match load_snapshot(path) {
            Ok(snap) => {
                chosen = Some(snap);
                break;
            }
            Err(StoreError::Corrupt(_)) => corrupt_snapshots_skipped += 1,
            Err(e) => return Err(e),
        }
    }
    let Some(snap) = chosen else {
        return Err(StoreError::NoDurableState {
            dir: dir.display().to_string(),
            corrupt_snapshots: corrupt_snapshots_skipped,
        });
    };

    // Pool every segment's valid records, newest snapshot onward.
    let mut torn_log_tails = 0usize;
    let mut corrupt_log_tails = 0usize;
    let mut stale_records = 0usize;
    let mut pool: BTreeMap<u64, EdgeBatch> = BTreeMap::new();
    for (_, path) in &wals {
        let scan = scan_log(path)?;
        match scan.stop {
            ScanStop::Clean => {}
            ScanStop::Torn { .. } => torn_log_tails += 1,
            ScanStop::Corrupt(_) => corrupt_log_tails += 1,
        }
        for record in scan.records {
            if record.generation <= snap.generation {
                stale_records += 1;
                continue;
            }
            let batch = record
                .to_batch()
                .map_err(|c| StoreError::Corrupt(c.with_path(path.display().to_string())))?;
            if pool.insert(record.generation, batch).is_some() {
                // Disjoint ranges make duplicates impossible in healthy
                // stores; count the shadowed copy rather than guessing.
                stale_records += 1;
            }
        }
    }

    // The contiguous chain from snapshot+1; everything past a gap is
    // unreachable.
    let mut tail = Vec::new();
    let mut next = snap.generation + 1;
    while let Some(batch) = pool.remove(&next) {
        tail.push(batch);
        next += 1;
    }
    let unreachable_records = pool.len();

    let perm = match snap.perm_forward {
        Some(fwd) => Some(Arc::new(NodePermutation::from_forward(fwd).map_err(
            |_| {
                StoreError::Corrupt(CorruptFile::at(
                    0,
                    CorruptKind::Malformed("snapshot permutation is not a bijection".into()),
                ))
            },
        )?)),
        None => None,
    };

    Ok(RecoveredState {
        parts: RecoveredParts {
            graph: snap.graph,
            perm,
            scores: snap.scores,
            generation: snap.generation,
            teleport: snap.teleport,
            tail,
            removed: snap.removed,
        },
        model: snap.model,
        config: snap.config,
        snapshot_generation: snap.generation,
        corrupt_snapshots_skipped,
        torn_log_tails,
        corrupt_log_tails,
        stale_records,
        unreachable_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;
    use crate::snapshot::write_snapshot;
    use d2pr_core::pagerank::PageRankConfig;
    use d2pr_core::transition::TransitionModel;
    use d2pr_graph::generators::barabasi_albert;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("d2pr-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn seed_snapshot(generation: u64) -> StoreSnapshot {
        let graph = barabasi_albert(40, 2, 3).unwrap();
        let n = graph.num_nodes();
        StoreSnapshot {
            graph,
            perm_forward: None,
            scores: vec![1.0 / n as f64; n],
            generation,
            teleport: None,
            model: TransitionModel::DegreeDecoupled { p: 0.5 },
            config: PageRankConfig::default(),
            removed: Vec::new(),
        }
    }

    fn record(generation: u64) -> crate::codec::LogRecord {
        let mut b = EdgeBatch::new();
        b.insert(0, generation as u32 % 39 + 1);
        crate::codec::LogRecord::from_batch(generation, &b)
    }

    #[test]
    fn empty_dir_reports_no_durable_state() {
        let dir = tmpdir("empty");
        match recover_dir(&dir).unwrap_err() {
            StoreError::NoDurableState {
                corrupt_snapshots, ..
            } => assert_eq!(corrupt_snapshots, 0),
            other => panic!("expected NoDurableState, got {other}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn falls_back_across_a_corrupt_latest_snapshot() {
        let dir = tmpdir("fallback");
        // snap-0 + wal-0 holding generations 1..=3, then snap-3 + wal-3
        // holding 4..=5 — the normal rotation layout.
        write_snapshot(&dir, &seed_snapshot(0), 0).unwrap();
        let mut w = LogWriter::create(&dir, 0, 0).unwrap();
        for g in 1..=3 {
            w.append(&record(g)).unwrap();
        }
        write_snapshot(&dir, &seed_snapshot(3), 0).unwrap();
        let mut w = LogWriter::create(&dir, 3, 0).unwrap();
        for g in 4..=5 {
            w.append(&record(g)).unwrap();
        }

        // Healthy: newest snapshot + its tail.
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshot_generation, 3);
        assert_eq!(state.durable_generation(), 5);
        assert_eq!(state.stale_records, 3);

        // Corrupt snap-3: fall back to snap-0, stitch the chain across
        // BOTH segments to the same durable generation.
        let snap3 = crate::snapshot::snap_path(&dir, 3);
        let mut bytes = std::fs::read(&snap3).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&snap3, &bytes).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshot_generation, 0);
        assert_eq!(state.corrupt_snapshots_skipped, 1);
        assert_eq!(state.parts.tail.len(), 5);
        assert_eq!(state.durable_generation(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_beyond_a_gap_never_replay() {
        let dir = tmpdir("gap");
        write_snapshot(&dir, &seed_snapshot(0), 0).unwrap();
        let mut w = LogWriter::create(&dir, 0, 0).unwrap();
        for g in 1..=2 {
            w.append(&record(g)).unwrap();
        }
        // A later segment whose predecessor records are missing.
        let mut w = LogWriter::create(&dir, 5, 0).unwrap();
        for g in 6..=7 {
            w.append(&record(g)).unwrap();
        }
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.durable_generation(), 2);
        assert_eq!(state.unreachable_records, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_are_counted_not_fatal() {
        let dir = tmpdir("torn");
        write_snapshot(&dir, &seed_snapshot(0), 0).unwrap();
        let path = {
            let mut w = LogWriter::create(&dir, 0, 0).unwrap();
            for g in 1..=3 {
                w.append(&record(g)).unwrap();
            }
            w.path().to_path_buf()
        };
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.durable_generation(), 2);
        assert_eq!(state.torn_log_tails, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
