//! [`DurableShardManager`]: per-shard log segments under one root
//! directory.
//!
//! Each shard persists into its own `shard-<i>/` subdirectory — an
//! independent log + snapshot lineage with its own generation counter,
//! exactly as the in-memory [`ShardManager`] keeps per-shard generations
//! independent. A group ingest appends to shard `k`'s log *before*
//! shard `k` publishes, shard by shard, so a crash anywhere inside
//! [`DurableShardManager::ingest_all`] leaves every shard individually
//! recoverable to its own last durable generation — which is a legal
//! manager state by the documented partial-not-atomic contract.
//!
//! [`ShardManager`]: d2pr_core::serving::ShardManager

use crate::durable::{DurableServingEngine, RecoveryReport, StoreOptions};
use crate::error::{io_err, Result, StoreError};
use d2pr_core::error::UpdateError;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::{RefreshOutcome, ScoreReader, ServingEngine};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::error::GraphError;
use d2pr_graph::transpose::CscStructure;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What happened to one shard during a group ingest.
#[derive(Debug)]
pub enum ShardIngest {
    /// The shard logged and published the batch.
    Applied(RefreshOutcome),
    /// The shard rejected the batch (validation) or failed to log or
    /// publish it; the group stopped here.
    Failed(StoreError),
    /// A lower-indexed shard failed first; this shard was not touched —
    /// neither its log nor its published state.
    Skipped,
}

/// Per-shard outcomes of one [`DurableShardManager::ingest_all`], in
/// shard order. At most one entry is [`ShardIngest::Failed`]; everything
/// after it is [`ShardIngest::Skipped`].
#[derive(Debug)]
pub struct IngestAllReport {
    /// One entry per shard, in shard order.
    pub outcomes: Vec<ShardIngest>,
}

impl IngestAllReport {
    /// Whether every shard applied the batch.
    pub fn is_complete(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, ShardIngest::Applied(_)))
    }

    /// Shards that applied the batch.
    pub fn applied(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, ShardIngest::Applied(_)))
            .count()
    }

    /// The failing shard's index and error, if the group stopped.
    pub fn first_failure(&self) -> Option<(usize, &StoreError)> {
        self.outcomes.iter().enumerate().find_map(|(i, o)| match o {
            ShardIngest::Failed(e) => Some((i, e)),
            _ => None,
        })
    }
}

fn shard_dir(root: &Path, index: usize) -> PathBuf {
    root.join(format!("shard-{index:04}"))
}

fn contract_err(msg: &str) -> StoreError {
    StoreError::Update(UpdateError::Graph(GraphError::Snapshot(msg.into())))
}

/// Many [`DurableServingEngine`]s under one root directory, mirroring
/// [`ShardManager`](d2pr_core::serving::ShardManager)'s two layouts
/// (independent graphs, or N personalization views over one graph) with
/// per-shard durability.
pub struct DurableShardManager {
    root: PathBuf,
    shards: Vec<DurableServingEngine>,
}

impl std::fmt::Debug for DurableShardManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableShardManager")
            .field("root", &self.root)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl DurableShardManager {
    /// One shard per graph (the multi-tenant layout), each persisting
    /// into `root/shard-<i>/`.
    ///
    /// # Errors
    /// [`StoreError::AlreadyInitialized`] when any shard directory holds
    /// state; otherwise as [`DurableServingEngine::create`].
    pub fn from_graphs(
        root: &Path,
        graphs: Vec<CsrGraph>,
        model: TransitionModel,
        config: PageRankConfig,
        threads_per_shard: usize,
        opts: StoreOptions,
    ) -> Result<Self> {
        if graphs.is_empty() {
            return Err(contract_err("DurableShardManager needs at least one shard"));
        }
        let engines = graphs
            .into_iter()
            .map(|g| ServingEngine::new(g, model, config, threads_per_shard))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Self::init(root, engines, model, config, opts)
    }

    /// One shard per personalization view over a single graph: one shared
    /// transpose build at construction, per-view teleport distributions
    /// (see [`ShardManager::personalized`] for the sharing semantics).
    ///
    /// # Errors
    /// As [`DurableShardManager::from_graphs`].
    ///
    /// [`ShardManager::personalized`]: d2pr_core::serving::ShardManager::personalized
    pub fn personalized(
        root: &Path,
        graph: &CsrGraph,
        teleports: &[Vec<f64>],
        model: TransitionModel,
        config: PageRankConfig,
        threads_per_shard: usize,
        opts: StoreOptions,
    ) -> Result<Self> {
        if teleports.is_empty() {
            return Err(contract_err(
                "DurableShardManager needs at least one personalization view",
            ));
        }
        let csc = Arc::new(CscStructure::build(graph));
        let engines = teleports
            .iter()
            .map(|t| {
                ServingEngine::with_parts(
                    graph.clone(),
                    Some(Arc::clone(&csc)),
                    Some(t),
                    model,
                    config,
                    threads_per_shard,
                )
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Self::init(root, engines, model, config, opts)
    }

    fn init(
        root: &Path,
        engines: Vec<ServingEngine>,
        model: TransitionModel,
        config: PageRankConfig,
        opts: StoreOptions,
    ) -> Result<Self> {
        std::fs::create_dir_all(root).map_err(|e| io_err(root, "create", &e))?;
        let shards = engines
            .into_iter()
            .enumerate()
            .map(|(i, inner)| {
                DurableServingEngine::init(&shard_dir(root, i), inner, model, config, i, opts)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            root: root.to_path_buf(),
            shards,
        })
    }

    /// Recover every shard under `root` and resume serving. Shard
    /// directories must form a contiguous `shard-0000..shard-<n-1>`
    /// range (rotation and retirement never remove one).
    ///
    /// Note on structure sharing: recovery rebuilds each shard's
    /// transpose independently, so a recovered personalized manager
    /// starts with per-shard structures; [`ingest_all`] still works and
    /// regains nothing-shared grouping costs only (one structural patch
    /// per shard per batch instead of one total).
    ///
    /// # Errors
    /// [`StoreError::NoDurableState`] on an empty root; otherwise as
    /// [`DurableServingEngine::open`] per shard.
    ///
    /// [`ingest_all`]: DurableShardManager::ingest_all
    pub fn open(
        root: &Path,
        threads_per_shard: usize,
        opts: StoreOptions,
    ) -> Result<(Self, Vec<RecoveryReport>)> {
        let mut indices = Vec::new();
        let entries = std::fs::read_dir(root).map_err(|e| io_err(root, "read", &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(root, "read", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(index) = name
                .strip_prefix("shard-")
                .and_then(|s| s.parse::<usize>().ok())
            {
                indices.push(index);
            }
        }
        indices.sort_unstable();
        if indices.is_empty() {
            return Err(StoreError::NoDurableState {
                dir: root.display().to_string(),
                corrupt_snapshots: 0,
            });
        }
        if indices.iter().enumerate().any(|(want, &got)| want != got) {
            return Err(contract_err(
                "shard directories are not a contiguous shard-0000.. range",
            ));
        }
        let mut shards = Vec::with_capacity(indices.len());
        let mut reports = Vec::with_capacity(indices.len());
        for index in indices {
            let (shard, report) = DurableServingEngine::open_shard(
                &shard_dir(root, index),
                threads_per_shard,
                index,
                opts,
            )?;
            shards.push(shard);
            reports.push(report);
        }
        Ok((
            Self {
                root: root.to_path_buf(),
                shards,
            },
            reports,
        ))
    }

    /// Number of shards hosted.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// The durable engine owning `key`.
    pub fn shard(&self, key: u64) -> &DurableServingEngine {
        &self.shards[self.shard_of(key)]
    }

    /// Mutable access to the durable engine owning `key`.
    pub fn shard_mut(&mut self, key: u64) -> &mut DurableServingEngine {
        let s = self.shard_of(key);
        &mut self.shards[s]
    }

    /// A read handle on the shard owning `key`.
    pub fn reader(&self, key: u64) -> ScoreReader {
        self.shard(key).reader()
    }

    /// Read handles on every shard, in shard order.
    pub fn readers(&self) -> Vec<ScoreReader> {
        self.shards
            .iter()
            .map(DurableServingEngine::reader)
            .collect()
    }

    /// The published score of `node` on the shard owning `key`.
    pub fn get(&self, key: u64, node: u32) -> Option<f64> {
        self.shard(key).engine().get(node)
    }

    /// Route one edge batch to the shard owning `key`, durably.
    ///
    /// # Errors
    /// As [`DurableServingEngine::ingest`].
    pub fn ingest(&mut self, key: u64, batch: &EdgeBatch) -> Result<RefreshOutcome> {
        self.shard_mut(key).ingest(batch)
    }

    /// Apply one edge batch to **every** shard, durably, preserving the
    /// in-memory manager's partial-not-atomic contract: shards proceed in
    /// order, each logging (durability point) then publishing; the group
    /// stops at the first failure and the report records what each shard
    /// did — [`ShardIngest::Applied`] shards keep their new durable
    /// generations, the [`ShardIngest::Failed`] shard and every
    /// [`ShardIngest::Skipped`] one keep their old ones. A crash instead
    /// of an error produces the same shapes, resolved by per-shard
    /// recovery.
    ///
    /// Transpose-structure sharing across shards is preserved exactly as
    /// in [`ShardManager::ingest_all`]: shards are grouped by mutual
    /// `Arc` identity of their pre-batch structure and each group pays
    /// one structural patch.
    ///
    /// [`ShardManager::ingest_all`]: d2pr_core::serving::ShardManager::ingest_all
    pub fn ingest_all(&mut self, batch: &EdgeBatch) -> IngestAllReport {
        let pre: Vec<Option<Arc<CscStructure>>> = self
            .shards
            .iter()
            .map(|s| s.shared_structure().ok())
            .collect();
        let mut groups: Vec<(Arc<CscStructure>, Arc<CscStructure>)> = Vec::new();
        let mut outcomes = Vec::with_capacity(self.shards.len());
        let mut failed = false;
        for (shard, pre) in self.shards.iter_mut().zip(&pre) {
            if failed {
                outcomes.push(ShardIngest::Skipped);
                continue;
            }
            let prepatched = pre.as_ref().and_then(|p| {
                groups
                    .iter()
                    .find(|(group_pre, _)| Arc::ptr_eq(group_pre, p))
                    .map(|(_, post)| Arc::clone(post))
            });
            let lead = prepatched.is_none();
            match shard.ingest_with(batch, prepatched) {
                Ok((outcome, structure)) => {
                    if lead {
                        if let Some(p) = pre {
                            groups.push((Arc::clone(p), structure));
                        }
                    }
                    outcomes.push(ShardIngest::Applied(outcome));
                }
                Err(e) => {
                    failed = true;
                    outcomes.push(ShardIngest::Failed(e));
                }
            }
        }
        IngestAllReport { outcomes }
    }

    /// Commit a snapshot (and rotate the log) on every shard. Returns
    /// each shard's snapshot generation.
    ///
    /// # Errors
    /// Fails on the first shard whose snapshot fails (earlier shards
    /// keep their fresh snapshots — each lineage is independent).
    pub fn snapshot_all(&mut self) -> Result<Vec<u64>> {
        self.shards
            .iter_mut()
            .map(DurableServingEngine::snapshot_now)
            .collect()
    }

    /// The root directory holding the per-shard stores.
    pub fn root(&self) -> &Path {
        &self.root
    }
}
