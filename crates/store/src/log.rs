//! The append-only write-ahead log: one segment file per snapshot epoch.
//!
//! A segment `wal-<base>.log` holds the records of generations
//! `base+1, base+2, …` in order, each framed and CRC-checked
//! ([`crate::codec`]). Segments are only ever *created* fresh — after a
//! crash, recovery replays the valid prefix of every segment and then
//! rotates to a new one at the recovered generation, so an appender
//! never writes after a torn tail.
//!
//! # Crash contract
//!
//! [`LogWriter::append`] is the durability point of an ingest: the frame
//! header, the record body, and the fsync are separate labeled steps
//! (`store.log.append.frame`, `store.log.append.body`,
//! `store.log.fsync` — see `d2pr_core::exec`), and a crash between any
//! two of them leaves either a clean end, a torn frame, or a complete
//! record that was fsynced but never served. [`scan_log`] maps each of
//! those to exactly one outcome: the longest checksum-valid record
//! prefix, plus a typed [`ScanStop`] describing why scanning stopped.
//! A torn or corrupt tail is **data loss of unacknowledged writes
//! only** — never an error, never a panic.

use crate::codec::{frame, read_frame, Frame, LogRecord};
use crate::crc::crc32;
use crate::error::{io_err, Result, StoreError};
use d2pr_core::exec::yield_point;
use d2pr_graph::error::{CorruptFile, CorruptKind};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// `"D2WL"` little-endian.
const WAL_MAGIC: u32 = u32::from_le_bytes(*b"D2WL");
const WAL_VERSION: u32 = 1;
/// magic + version + base generation + header crc.
pub(crate) const WAL_HEADER: usize = 4 + 4 + 8 + 4;

/// The segment file holding generations `base+1…` under `dir`.
pub(crate) fn wal_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("wal-{base:020}.log"))
}

/// Parse a segment file name back to its base generation.
pub(crate) fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

fn header_bytes(base: u64) -> [u8; WAL_HEADER] {
    let mut h = [0u8; WAL_HEADER];
    h[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&base.to_le_bytes());
    let crc = crc32(&h[0..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Single-writer appender on one fresh segment.
pub struct LogWriter {
    file: File,
    path: PathBuf,
    next: u64,
    /// Shard index carried as the yield points' `arg`.
    shard: usize,
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("path", &self.path)
            .field("next", &self.next)
            .finish()
    }
}

impl LogWriter {
    /// Create `wal-<base>.log` under `dir` (failing if it exists — a
    /// segment is never reopened for append) and write its header,
    /// fsynced. The first [`LogWriter::append`] must carry generation
    /// `base + 1`.
    ///
    /// # Errors
    /// [`StoreError::Io`] with the path and failing operation.
    pub fn create(dir: &Path, base: u64, shard: usize) -> Result<Self> {
        let path = wal_path(dir, base);
        let mut file = File::options()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(&path, "create", &e))?;
        file.write_all(&header_bytes(base))
            .map_err(|e| io_err(&path, "write", &e))?;
        file.sync_all().map_err(|e| io_err(&path, "fsync", &e))?;
        Ok(Self {
            file,
            path,
            next: base + 1,
            shard,
        })
    }

    /// The generation the next append must carry.
    pub fn next_generation(&self) -> u64 {
        self.next
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and fsync it — the write is durable when this
    /// returns. The frame header, the body, and the fsync are separate
    /// labeled crash points (see the module docs).
    ///
    /// # Errors
    /// [`StoreError::Io`] on any failing step; a record whose generation
    /// breaks the segment's contiguous chain is rejected as
    /// [`StoreError::GenerationGap`] before any byte is written.
    pub fn append(&mut self, record: &LogRecord) -> Result<()> {
        if record.generation != self.next {
            return Err(StoreError::GenerationGap {
                snapshot_generation: self.next.saturating_sub(1),
                missing: self.next,
            });
        }
        let payload = record.encode();
        let (header, body) = frame(&payload);
        yield_point("store.log.append.frame", self.shard);
        self.file
            .write_all(&header)
            .map_err(|e| io_err(&self.path, "write", &e))?;
        yield_point("store.log.append.body", self.shard);
        self.file
            .write_all(&body)
            .map_err(|e| io_err(&self.path, "write", &e))?;
        yield_point("store.log.fsync", self.shard);
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "fsync", &e))?;
        self.next += 1;
        Ok(())
    }
}

/// Why a [`scan_log`] stopped consuming records.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanStop {
    /// The segment ended exactly on a record boundary.
    Clean,
    /// The final frame (or the header, for a file shorter than one) was
    /// incomplete — the signature of a crash mid-append.
    Torn {
        /// Offset at which the incomplete frame starts.
        offset: u64,
        /// Bytes the frame needed beyond the file's end.
        missing: u64,
    },
    /// A complete frame or record failed verification; everything before
    /// `0.offset` is intact.
    Corrupt(CorruptFile),
}

/// The checksum-valid prefix of one segment.
#[derive(Debug)]
pub struct LogScan {
    /// The segment's base generation (records run `base+1…`).
    pub base: u64,
    /// Verified records, in append order (contiguous generations).
    pub records: Vec<LogRecord>,
    /// Bytes of the verified prefix (header included).
    pub valid_bytes: u64,
    /// Why scanning stopped.
    pub stop: ScanStop,
}

/// Scan a segment to its longest checksum-valid record prefix. Torn or
/// corrupt tails are reported in [`LogScan::stop`], never as errors; the
/// only error is an unreadable file.
///
/// # Errors
/// [`StoreError::Io`] when the file cannot be read at all.
pub fn scan_log(path: &Path) -> Result<LogScan> {
    let data = std::fs::read(path).map_err(|e| io_err(path, "read", &e))?;
    let name = path.display().to_string();
    let corrupt = |offset: u64, kind: CorruptKind| {
        ScanStop::Corrupt(CorruptFile::at(offset, kind).with_path(name.clone()))
    };

    // Header.
    if data.len() < WAL_HEADER {
        return Ok(LogScan {
            base: 0,
            records: Vec::new(),
            valid_bytes: 0,
            stop: ScanStop::Torn {
                offset: 0,
                missing: (WAL_HEADER - data.len()) as u64,
            },
        });
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    let base = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(data[16..20].try_into().expect("4 bytes"));
    let computed = crc32(&data[0..16]);
    let header_stop = if magic != WAL_MAGIC {
        Some(corrupt(
            0,
            CorruptKind::BadMagic {
                found: magic,
                expected: WAL_MAGIC,
            },
        ))
    } else if stored != computed {
        Some(corrupt(16, CorruptKind::Checksum { stored, computed }))
    } else if version != WAL_VERSION {
        Some(corrupt(
            4,
            CorruptKind::UnsupportedVersion {
                found: version,
                supported: WAL_VERSION,
            },
        ))
    } else {
        None
    };
    if let Some(stop) = header_stop {
        return Ok(LogScan {
            base: 0,
            records: Vec::new(),
            valid_bytes: 0,
            stop,
        });
    }

    // Frames.
    let mut records = Vec::new();
    let mut pos = WAL_HEADER;
    let mut next_gen = base + 1;
    let stop = loop {
        match read_frame(&data, pos, Some(&name)) {
            Frame::End => break ScanStop::Clean,
            Frame::Torn { missing } => {
                break ScanStop::Torn {
                    offset: pos as u64,
                    missing: missing as u64,
                }
            }
            Frame::Corrupt(c) => break ScanStop::Corrupt(c),
            Frame::Ok { payload, next } => {
                let rec = match LogRecord::decode(payload, pos as u64 + 8, Some(&name)) {
                    Ok(r) => r,
                    Err(c) => break ScanStop::Corrupt(c),
                };
                if rec.generation != next_gen {
                    break corrupt(
                        pos as u64 + 8,
                        CorruptKind::Malformed(format!(
                            "record generation {} breaks the segment chain (expected {})",
                            rec.generation, next_gen
                        )),
                    );
                }
                next_gen += 1;
                records.push(rec);
                pos = next;
            }
        }
    };
    Ok(LogScan {
        base,
        records,
        valid_bytes: pos as u64,
        stop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_graph::delta::EdgeBatch;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("d2pr-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(generation: u64) -> LogRecord {
        let mut b = EdgeBatch::new();
        b.insert(generation as u32, generation as u32 + 1);
        LogRecord::from_batch(generation, &b)
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmpdir("rt");
        let mut w = LogWriter::create(&dir, 10, 0).unwrap();
        for generation in 11..=14 {
            w.append(&rec(generation)).unwrap();
        }
        let scan = scan_log(&wal_path(&dir, 10)).unwrap();
        assert_eq!(scan.base, 10);
        assert_eq!(scan.stop, ScanStop::Clean);
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.generation)
                .collect::<Vec<_>>(),
            vec![11, 12, 13, 14]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_appends_are_rejected_before_writing() {
        let dir = tmpdir("ooo");
        let mut w = LogWriter::create(&dir, 0, 0).unwrap();
        w.append(&rec(1)).unwrap();
        assert!(matches!(
            w.append(&rec(5)),
            Err(StoreError::GenerationGap { missing: 2, .. })
        ));
        // The rejected append left no bytes behind.
        let scan = scan_log(&wal_path(&dir, 0)).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.stop, ScanStop::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_yields_valid_prefix() {
        let dir = tmpdir("torn");
        let path = {
            let mut w = LogWriter::create(&dir, 0, 0).unwrap();
            for generation in 1..=3 {
                w.append(&rec(generation)).unwrap();
            }
            w.path().to_path_buf()
        };
        let full = std::fs::read(&path).unwrap();
        // Cut anywhere inside the last record: the first two survive.
        let scan_full = scan_log(&path).unwrap();
        assert_eq!(scan_full.records.len(), 3);
        let second_end = {
            // Recompute: header + two frames.
            let r = rec(1).encode();
            WAL_HEADER + 2 * (8 + r.len())
        };
        for cut in second_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_log(&path).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert!(matches!(scan.stop, ScanStop::Torn { .. }));
            assert_eq!(scan.valid_bytes as usize, second_end);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_header_or_record_is_typed_not_fatal() {
        let dir = tmpdir("corrupt");
        let path = {
            let mut w = LogWriter::create(&dir, 0, 0).unwrap();
            w.append(&rec(1)).unwrap();
            w.append(&rec(2)).unwrap();
            w.path().to_path_buf()
        };
        let full = std::fs::read(&path).unwrap();

        // Magic flip: no records, typed stop.
        let mut bad = full.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        let scan = scan_log(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(scan.stop, ScanStop::Corrupt(_)));

        // Flip one payload byte of record 2: record 1 survives.
        let r1_end = WAL_HEADER + 8 + rec(1).encode().len();
        let mut bad = full.clone();
        bad[r1_end + 8 + 2] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        let scan = scan_log(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        match &scan.stop {
            ScanStop::Corrupt(c) => {
                assert!(c.path.as_deref().unwrap().contains("wal-"));
                assert!(matches!(c.kind, CorruptKind::Checksum { .. }));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(
            parse_wal_name(
                wal_path(Path::new("/d"), 1234)
                    .file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
            ),
            Some(1234)
        );
        assert_eq!(parse_wal_name("snap-0.bin"), None);
        assert_eq!(parse_wal_name("wal-x.log"), None);
    }
}
