//! Checksummed, atomically-committed snapshots of the full serving state.
//!
//! A snapshot `snap-<generation>.bin` is self-contained: the solver-order
//! graph (CSR arrays, embedded in the `d2pr-graph` binary format), the
//! layout permutation, the published rank vector of that generation, the
//! teleport distribution, and the transition model + solver config — so
//! recovery (and `repro recover`) needs nothing but the data directory.
//!
//! # Atomicity argument
//!
//! The bytes are written to `snap-<generation>.bin.tmp`, fsynced, then
//! renamed into place, and the directory is fsynced. POSIX `rename(2)` is
//! atomic with respect to crashes: a reader of the directory sees either
//! no `snap-<generation>.bin` or the complete one — never a partial file
//! under the final name. A crash before the rename leaves only a `.tmp`
//! (ignored and deleted by recovery); a crash after it leaves a complete,
//! CRC-verified snapshot. The whole-payload CRC additionally rejects any
//! file the rename story did not protect (media corruption, manual
//! tampering), falling back to the previous retained snapshot.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::{io_err, Result, StoreError};
use d2pr_core::exec::yield_point;
use d2pr_core::pagerank::{DanglingPolicy, PageRankConfig};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::error::{CorruptFile, CorruptKind};
use d2pr_graph::io::{from_snapshot_named, to_snapshot};
use std::io::Write;
use std::path::{Path, PathBuf};

/// `"D2SN"` little-endian.
const SNAP_MAGIC: u32 = u32::from_le_bytes(*b"D2SN");
/// Version 2 appends the tombstoned-node section; version-1 files (no
/// tombstones — they predate node removal) still decode.
const SNAP_VERSION: u32 = 2;
const SNAP_VERSION_MIN: u32 = 1;
/// magic + version + payload crc + payload length.
const SNAP_HEADER: usize = 4 + 4 + 4 + 8;

/// The snapshot file of `generation` under `dir`.
pub(crate) fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:020}.bin"))
}

/// Parse a snapshot file name back to its generation.
pub(crate) fn parse_snap_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// The complete durable serving state as of one published generation.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// The graph in **solver order** (already permuted when
    /// `perm_forward` is set).
    pub graph: CsrGraph,
    /// Forward map of the layout permutation (`forward[external] =
    /// internal`), when one is in effect.
    pub perm_forward: Option<Vec<u32>>,
    /// Published scores of `generation`, external node order.
    pub scores: Vec<f64>,
    /// The generation this snapshot captures.
    pub generation: u64,
    /// Teleport distribution in solver order, `None` = uniform.
    pub teleport: Option<Vec<f64>>,
    /// The served transition model.
    pub model: TransitionModel,
    /// The solver configuration.
    pub config: PageRankConfig,
    /// Tombstoned node ids (external order, sorted): their published
    /// scores are masked to zero and stay so until an arc revives them.
    /// The live node count is `graph.num_nodes() - removed.len()`.
    pub removed: Vec<u32>,
}

fn encode_model(e: &mut Enc, model: TransitionModel) {
    let (tag, p, beta) = match model {
        TransitionModel::Standard => (0u8, 0.0, 0.0),
        TransitionModel::DegreeDecoupled { p } => (1, p, 0.0),
        TransitionModel::Blended { p, beta } => (2, p, beta),
    };
    e.u8(tag);
    e.f64(p);
    e.f64(beta);
}

fn decode_model(d: &mut Dec<'_>) -> std::result::Result<TransitionModel, CorruptFile> {
    let at = d.offset();
    let tag = d.u8()?;
    let p = d.f64()?;
    let beta = d.f64()?;
    match tag {
        0 => Ok(TransitionModel::Standard),
        1 => Ok(TransitionModel::DegreeDecoupled { p }),
        2 => Ok(TransitionModel::Blended { p, beta }),
        other => Err(CorruptFile::at(
            at,
            CorruptKind::Malformed(format!("unknown transition-model tag {other}")),
        )),
    }
}

fn encode_config(e: &mut Enc, config: &PageRankConfig) {
    e.f64(config.alpha);
    e.f64(config.tolerance);
    e.u64(config.max_iterations as u64);
    e.u8(match config.dangling {
        DanglingPolicy::RedistributeTeleport => 0,
        DanglingPolicy::SelfLoop => 1,
        DanglingPolicy::Renormalize => 2,
    });
}

fn decode_config(d: &mut Dec<'_>) -> std::result::Result<PageRankConfig, CorruptFile> {
    let alpha = d.f64()?;
    let tolerance = d.f64()?;
    let max_iterations = d.u64()? as usize;
    let at = d.offset();
    let dangling = match d.u8()? {
        0 => DanglingPolicy::RedistributeTeleport,
        1 => DanglingPolicy::SelfLoop,
        2 => DanglingPolicy::Renormalize,
        other => {
            return Err(CorruptFile::at(
                at,
                CorruptKind::Malformed(format!("unknown dangling-policy tag {other}")),
            ))
        }
    };
    Ok(PageRankConfig {
        alpha,
        tolerance,
        max_iterations,
        dangling,
    })
}

impl StoreSnapshot {
    /// Encode the full file image (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        let graph_bytes = to_snapshot(&self.graph);
        let graph_bytes = graph_bytes.as_ref();
        e.u64(graph_bytes.len() as u64);
        e.bytes(graph_bytes);
        match &self.perm_forward {
            Some(fwd) => {
                e.u8(1);
                e.u64(fwd.len() as u64);
                for &v in fwd {
                    e.u32(v);
                }
            }
            None => e.u8(0),
        }
        e.u64(self.scores.len() as u64);
        for &s in &self.scores {
            e.f64(s);
        }
        e.u64(self.generation);
        match &self.teleport {
            Some(t) => {
                e.u8(1);
                e.u64(t.len() as u64);
                for &x in t {
                    e.f64(x);
                }
            }
            None => e.u8(0),
        }
        encode_model(&mut e, self.model);
        encode_config(&mut e, &self.config);
        e.u64(self.removed.len() as u64);
        for &v in &self.removed {
            e.u32(v);
        }
        let payload = e.into_vec();

        let mut file = Vec::with_capacity(SNAP_HEADER + payload.len());
        file.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        file.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file
    }

    /// Decode and fully verify a file image. Every defect — truncation,
    /// bad magic, checksum mismatch, inconsistent section lengths — is a
    /// typed [`CorruptFile`] naming `path` and the byte offset.
    pub fn decode(data: &[u8], path: &str) -> Result<Self> {
        let corrupt = |offset: u64, kind: CorruptKind| {
            StoreError::Corrupt(CorruptFile::at(offset, kind).with_path(path))
        };
        if data.len() < SNAP_HEADER {
            return Err(corrupt(
                0,
                CorruptKind::Truncated {
                    needed: SNAP_HEADER as u64,
                    available: data.len() as u64,
                },
            ));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        if magic != SNAP_MAGIC {
            return Err(corrupt(
                0,
                CorruptKind::BadMagic {
                    found: magic,
                    expected: SNAP_MAGIC,
                },
            ));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
        if !(SNAP_VERSION_MIN..=SNAP_VERSION).contains(&version) {
            return Err(corrupt(
                4,
                CorruptKind::UnsupportedVersion {
                    found: version,
                    supported: SNAP_VERSION,
                },
            ));
        }
        let stored = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
        let payload = match data[SNAP_HEADER..].get(..len as usize) {
            Some(p) if data.len() as u64 == SNAP_HEADER as u64 + len => p,
            _ => {
                return Err(corrupt(
                    12,
                    CorruptKind::Malformed(format!(
                        "declared payload of {len} bytes, file holds {}",
                        data.len() - SNAP_HEADER
                    )),
                ))
            }
        };
        let computed = crc32(payload);
        if computed != stored {
            return Err(corrupt(8, CorruptKind::Checksum { stored, computed }));
        }

        let mut d = Dec::new(payload, SNAP_HEADER as u64, Some(path));
        let graph_len = d.u64()? as usize;
        if graph_len > d.remaining() {
            return Err(StoreError::Corrupt(d.corrupt(CorruptKind::Truncated {
                needed: graph_len as u64,
                available: d.remaining() as u64,
            })));
        }
        let graph = from_snapshot_named(d.bytes(graph_len)?, path)?;
        let n = graph.num_nodes();
        let perm_forward = if d.u8()? != 0 {
            let len = d.u64()? as usize;
            if len != n {
                return Err(StoreError::Corrupt(d.corrupt(CorruptKind::Malformed(
                    format!("permutation covers {len} nodes, graph has {n}"),
                ))));
            }
            let mut fwd = Vec::with_capacity(len);
            for _ in 0..len {
                fwd.push(d.u32()?);
            }
            Some(fwd)
        } else {
            None
        };
        let scores_len = d.u64()? as usize;
        if scores_len != n {
            return Err(StoreError::Corrupt(d.corrupt(CorruptKind::Malformed(
                format!("score vector covers {scores_len} nodes, graph has {n}"),
            ))));
        }
        let mut scores = Vec::with_capacity(scores_len);
        for _ in 0..scores_len {
            scores.push(d.f64()?);
        }
        let generation = d.u64()?;
        let teleport = if d.u8()? != 0 {
            let len = d.u64()? as usize;
            if len != n {
                return Err(StoreError::Corrupt(d.corrupt(CorruptKind::Malformed(
                    format!("teleport covers {len} nodes, graph has {n}"),
                ))));
            }
            let mut t = Vec::with_capacity(len);
            for _ in 0..len {
                t.push(d.f64()?);
            }
            Some(t)
        } else {
            None
        };
        let model = decode_model(&mut d)?;
        let config = decode_config(&mut d)?;
        let removed = if version >= 2 {
            let len = d.u64()? as usize;
            if len.saturating_mul(4) > d.remaining() || len > n {
                return Err(StoreError::Corrupt(d.corrupt(CorruptKind::Malformed(
                    format!("{len} tombstoned nodes, graph has {n}"),
                ))));
            }
            let mut r = Vec::with_capacity(len);
            for _ in 0..len {
                r.push(d.u32()?);
            }
            r
        } else {
            Vec::new()
        };
        if d.remaining() != 0 {
            return Err(StoreError::Corrupt(d.corrupt(CorruptKind::Malformed(
                format!("{} trailing bytes after snapshot payload", d.remaining()),
            ))));
        }
        Ok(Self {
            graph,
            perm_forward,
            scores,
            generation,
            teleport,
            model,
            config,
            removed,
        })
    }
}

/// Commit a snapshot under `dir`: temp write, fsync, atomic rename,
/// directory fsync (each a labeled crash point). Returns the final path.
///
/// # Errors
/// [`StoreError::Io`] with the path and failing operation.
pub fn write_snapshot(dir: &Path, snap: &StoreSnapshot, shard: usize) -> Result<PathBuf> {
    let bytes = snap.encode();
    let path = snap_path(dir, snap.generation);
    let tmp = path.with_extension("bin.tmp");
    yield_point("store.snap.write", shard);
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
    f.write_all(&bytes).map_err(|e| io_err(&tmp, "write", &e))?;
    yield_point("store.snap.fsync", shard);
    f.sync_all().map_err(|e| io_err(&tmp, "fsync", &e))?;
    drop(f);
    yield_point("store.snap.rename", shard);
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", &e))?;
    yield_point("store.snap.dirsync", shard);
    sync_dir(dir)?;
    Ok(path)
}

/// Load and fully verify `path`.
///
/// # Errors
/// [`StoreError::Io`] if unreadable, [`StoreError::Corrupt`] on any
/// verification failure.
pub fn load_snapshot(path: &Path) -> Result<StoreSnapshot> {
    let data = std::fs::read(path).map_err(|e| io_err(path, "read", &e))?;
    StoreSnapshot::decode(&data, &path.display().to_string())
}

/// fsync a directory so a just-renamed or just-created name is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    let d = std::fs::File::open(dir).map_err(|e| io_err(dir, "open", &e))?;
    d.sync_all().map_err(|e| io_err(dir, "fsync", &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_graph::generators::barabasi_albert;
    use d2pr_graph::permute::NodePermutation;

    fn sample(with_perm: bool) -> StoreSnapshot {
        let graph = barabasi_albert(60, 3, 5).unwrap();
        let n = graph.num_nodes();
        let perm_forward = with_perm.then(|| {
            NodePermutation::degree_descending(&graph)
                .forward()
                .to_vec()
        });
        StoreSnapshot {
            graph,
            perm_forward,
            scores: (0..n).map(|i| 1.0 / (i + 1) as f64).collect(),
            generation: 7,
            teleport: with_perm.then(|| vec![1.0 / n as f64; n]),
            model: TransitionModel::Blended { p: 0.4, beta: 0.25 },
            config: PageRankConfig {
                alpha: 0.9,
                tolerance: 1e-10,
                max_iterations: 500,
                dangling: DanglingPolicy::SelfLoop,
            },
            removed: if with_perm { vec![3, 11] } else { vec![] },
        }
    }

    #[test]
    fn snapshot_round_trips_every_field() {
        for with_perm in [false, true] {
            let snap = sample(with_perm);
            let bytes = snap.encode();
            let back = StoreSnapshot::decode(&bytes, "snap-7.bin").unwrap();
            assert_eq!(back.graph, snap.graph);
            assert_eq!(back.perm_forward, snap.perm_forward);
            assert_eq!(back.scores, snap.scores);
            assert_eq!(back.generation, 7);
            assert_eq!(back.teleport, snap.teleport);
            assert_eq!(back.model, snap.model);
            assert_eq!(back.config.alpha, snap.config.alpha);
            assert_eq!(back.config.dangling, snap.config.dangling);
            assert_eq!(back.removed, snap.removed);
        }
    }

    #[test]
    fn version_one_snapshots_still_load() {
        // A v1 image is the v2 payload minus the tombstone section (the
        // trailing empty count), under a version-1 header.
        let snap = sample(false);
        assert!(snap.removed.is_empty());
        let bytes = snap.encode();
        let payload = &bytes[SNAP_HEADER..bytes.len() - 8];
        let mut v1 = Vec::with_capacity(SNAP_HEADER + payload.len());
        v1.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&crc32(payload).to_le_bytes());
        v1.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v1.extend_from_slice(payload);
        let back = StoreSnapshot::decode(&v1, "snap-v1.bin").unwrap();
        assert_eq!(back.generation, snap.generation);
        assert_eq!(back.scores, snap.scores);
        assert!(back.removed.is_empty());

        // And a from-the-future version is still typed as unsupported.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(StoreSnapshot::decode(&future, "s").is_err());
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample(true).encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match StoreSnapshot::decode(&bad, "s") {
                Err(StoreError::Corrupt(c)) => {
                    assert_eq!(c.path.as_deref(), Some("s"));
                }
                Err(other) => panic!("flip at {i}: non-corrupt error {other}"),
                Ok(_) => panic!("flip at {i} decoded cleanly"),
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample(false).encode();
        for cut in 0..bytes.len() {
            assert!(
                StoreSnapshot::decode(&bytes[..cut], "s").is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn atomic_commit_lands_and_verifies() {
        let dir = std::env::temp_dir().join(format!("d2pr-snap-commit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample(true);
        let path = write_snapshot(&dir, &snap, 0).unwrap();
        assert_eq!(path, snap_path(&dir, 7));
        assert!(!path.with_extension("bin.tmp").exists());
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.generation, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_names_round_trip() {
        assert_eq!(
            parse_snap_name(
                snap_path(Path::new("/d"), 99)
                    .file_name()
                    .unwrap()
                    .to_str()
                    .unwrap()
            ),
            Some(99)
        );
        assert_eq!(parse_snap_name("snap-1.bin.tmp"), None);
        assert_eq!(parse_snap_name("wal-1.log"), None);
    }
}
