//! # d2pr-store
//!
//! Durability for the D2PR serving layer: a write-ahead delta log,
//! periodic full-state snapshots, and crash recovery that resumes
//! serving at exactly the last durable generation.
//!
//! * [`codec`] — stable hand-rolled binary encoding of log records
//!   (little-endian, CRC-framed; no derive machinery, the byte layout
//!   *is* the compatibility contract);
//! * [`crc`] — CRC-32 (IEEE) over every frame and snapshot payload;
//! * [`log`] — append-only generation-stamped segments, fsync'd per
//!   record, scanned back to their longest checksum-valid prefix;
//! * [`snapshot`] — whole-state snapshots (CSR arrays, layout
//!   permutation, rank vector, teleport, solver config) committed by
//!   temp-file + atomic rename;
//! * [`recover`] — the read-only scan: newest verifying snapshot plus
//!   the contiguous log tail, tolerating torn tails, corrupt files, and
//!   generation gaps without panicking;
//! * [`durable`] — [`DurableServingEngine`], the serving engine whose
//!   every ingest is **durable before it is served**;
//! * [`shard`] — [`DurableShardManager`], per-shard log lineages under
//!   one root;
//! * [`error`] — typed [`StoreError`] (never a panic on bad bytes).
//!
//! Every I/O boundary is labeled with a
//! [`d2pr_core::exec::yield_point`], so the `d2pr-sim` harness can
//! crash the process between any two steps and assert the recovery
//! contract: the store always revives to a checksum-verified prefix of
//! what it acknowledged, never serves torn state, and never loses an
//! acknowledged generation.

#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod durable;
pub mod error;
pub mod log;
pub mod recover;
pub mod shard;
pub mod snapshot;

pub use crate::durable::{DurableServingEngine, RecoveryReport, StoreOptions};
pub use crate::error::{Result, StoreError};
pub use crate::recover::{recover_dir, RecoveredState};
pub use crate::shard::{DurableShardManager, IngestAllReport, ShardIngest};
