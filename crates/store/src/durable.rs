//! [`DurableServingEngine`]: the serving engine behind a write-ahead log.
//!
//! # Durable before served
//!
//! [`DurableServingEngine::ingest`] runs validate → append+fsync →
//! publish. The batch is validated against everything the serving layer
//! would reject *before* any byte is written (so a logged record always
//! replays cleanly), appended and fsynced, and only then handed to
//! [`ServingEngine::ingest`]. A crash between the fsync and the publish
//! therefore loses nothing: recovery replays the record and resumes at
//! the durable generation, which may be exactly one ahead of the last
//! generation a reader ever observed. The inverse can never happen — no
//! served generation can be lost, because none is published before its
//! record is on disk.
//!
//! # Snapshots, rotation, retention
//!
//! [`DurableServingEngine::snapshot_now`] (also triggered every
//! [`StoreOptions::snapshot_every`] ingests) commits a full-state
//! snapshot at the current generation, rotates the log to a fresh
//! segment based at that generation, and retires files no retained
//! snapshot needs: with [`StoreOptions::retain_snapshots`] ≥ 2 (the
//! default), a corrupted *latest* snapshot still recovers — the scan
//! falls back one snapshot and stitches the generation chain across the
//! two retained segments ([`crate::recover`]).

use crate::codec::LogRecord;
use crate::error::{io_err, Result, StoreError};
use crate::log::{wal_path, LogWriter};
use crate::recover::{list_store_files, recover_dir};
use crate::snapshot::{sync_dir, write_snapshot, StoreSnapshot};
use d2pr_core::exec::yield_point;
use d2pr_core::pagerank::PageRankConfig;
use d2pr_core::serving::{RecoveryOutcome, RefreshOutcome, ScoreReader, ServingEngine};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::csr::CsrGraph;
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::permute::Layout;
use d2pr_graph::transpose::CscStructure;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Durability knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Commit a snapshot (and rotate the log) every N ingests; `0` means
    /// only on explicit [`DurableServingEngine::snapshot_now`] calls.
    pub snapshot_every: u64,
    /// Snapshots kept on disk (≥ 1). Keeping 2 lets recovery survive a
    /// corrupted latest snapshot; log segments are retired only once no
    /// retained snapshot could need their records.
    pub retain_snapshots: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            snapshot_every: 0,
            retain_snapshots: 2,
        }
    }
}

/// How one [`DurableServingEngine::open`] recovered, for operators'
/// eyes (`repro recover` prints it).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Generation of the snapshot recovery started from.
    pub snapshot_generation: u64,
    /// Generation serving resumed at.
    pub recovered_generation: u64,
    /// The warm re-solve's diagnostics (replay counts, mode,
    /// convergence).
    pub outcome: RecoveryOutcome,
    /// Newer snapshot files rejected by verification.
    pub corrupt_snapshots_skipped: usize,
    /// Log segments that ended torn (crash mid-append).
    pub torn_log_tails: usize,
    /// Log segments that ended in a checksum/decode failure.
    pub corrupt_log_tails: usize,
    /// Valid records already covered by the snapshot.
    pub stale_records: usize,
    /// Valid records beyond a generation gap (counted, never replayed).
    pub unreachable_records: usize,
}

/// A [`ServingEngine`] whose every ingest is durable before it is
/// served, with periodic snapshots and crash recovery.
///
/// ```no_run
/// use d2pr_core::pagerank::PageRankConfig;
/// use d2pr_core::transition::TransitionModel;
/// use d2pr_graph::delta::EdgeBatch;
/// use d2pr_graph::generators::barabasi_albert;
/// use d2pr_store::durable::{DurableServingEngine, StoreOptions};
///
/// let dir = std::path::Path::new("/var/lib/d2pr/main");
/// let g = barabasi_albert(10_000, 5, 7).unwrap();
/// let mut serving = DurableServingEngine::create(
///     dir,
///     g,
///     TransitionModel::DegreeDecoupled { p: 0.5 },
///     PageRankConfig::default(),
///     4,
///     StoreOptions { snapshot_every: 64, ..Default::default() },
/// )
/// .unwrap();
/// let reader = serving.reader();
/// let mut batch = EdgeBatch::new();
/// batch.insert(0, 9_999);
/// serving.ingest(&batch).unwrap(); // fsync'd before readers see it
///
/// // After a crash: recover to the last durable generation.
/// drop(serving);
/// let (revived, report) =
///     DurableServingEngine::open(dir, 4, StoreOptions::default()).unwrap();
/// assert_eq!(revived.generation(), report.recovered_generation);
/// # let _ = reader;
/// ```
pub struct DurableServingEngine {
    inner: ServingEngine,
    wal: LogWriter,
    dir: PathBuf,
    opts: StoreOptions,
    model: TransitionModel,
    config: PageRankConfig,
    /// Shard index: yield-point `arg` and log-file namespace selector
    /// (each shard of a [`crate::shard::DurableShardManager`] owns a
    /// subdirectory).
    shard: usize,
    ingests_since_snapshot: u64,
}

impl std::fmt::Debug for DurableServingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableServingEngine")
            .field("dir", &self.dir)
            .field("generation", &self.inner.generation())
            .finish()
    }
}

impl DurableServingEngine {
    /// Initialize a fresh store under `dir` (created if missing, refused
    /// if it already holds durable state): cold-solve `graph`, commit the
    /// generation-0 snapshot, open the first log segment.
    ///
    /// # Errors
    /// [`StoreError::AlreadyInitialized`] on a non-empty store;
    /// otherwise any serving-construction or I/O failure.
    pub fn create(
        dir: &Path,
        graph: CsrGraph,
        model: TransitionModel,
        config: PageRankConfig,
        threads: usize,
        opts: StoreOptions,
    ) -> Result<Self> {
        Self::create_with(
            dir,
            graph,
            Layout::Baseline,
            None,
            model,
            config,
            threads,
            opts,
        )
    }

    /// [`DurableServingEngine::create`] with a cache-aware [`Layout`]
    /// and/or a personalized teleport distribution (external node order,
    /// as [`ServingEngine::with_layout`] takes it).
    ///
    /// # Errors
    /// As [`DurableServingEngine::create`].
    #[allow(clippy::too_many_arguments)]
    pub fn create_with(
        dir: &Path,
        graph: CsrGraph,
        layout: Layout,
        teleport: Option<&[f64]>,
        model: TransitionModel,
        config: PageRankConfig,
        threads: usize,
        opts: StoreOptions,
    ) -> Result<Self> {
        let inner = ServingEngine::with_layout(graph, layout, teleport, model, config, threads)?;
        Self::init(dir, inner, model, config, 0, opts)
    }

    /// Wrap an already-built engine (the shard layer's entry point):
    /// commit its current state as the initial snapshot and open the log.
    pub(crate) fn init(
        dir: &Path,
        inner: ServingEngine,
        model: TransitionModel,
        config: PageRankConfig,
        shard: usize,
        opts: StoreOptions,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create", &e))?;
        let (snaps, wals) = list_store_files(dir)?;
        if !snaps.is_empty() || !wals.is_empty() {
            return Err(StoreError::AlreadyInitialized {
                dir: dir.display().to_string(),
            });
        }
        let opts = StoreOptions {
            retain_snapshots: opts.retain_snapshots.max(1),
            ..opts
        };
        let this = Self {
            wal: LogWriter::create(dir, inner.generation(), shard)?,
            inner,
            dir: dir.to_path_buf(),
            opts,
            model,
            config,
            shard,
            ingests_since_snapshot: 0,
        };
        write_snapshot(&this.dir, &this.capture(), shard)?;
        sync_dir(&this.dir)?;
        Ok(this)
    }

    /// Recover a store from `dir` and resume serving at the last durable
    /// generation. Leftover `.tmp` files are deleted, the log rotates to
    /// a fresh segment (an appender never writes after a torn tail), and
    /// when anything was replayed a fresh snapshot is committed so the
    /// next crash replays nothing.
    ///
    /// # Errors
    /// As [`crate::recover::recover_dir`], plus engine-revival failures.
    pub fn open(dir: &Path, threads: usize, opts: StoreOptions) -> Result<(Self, RecoveryReport)> {
        Self::open_shard(dir, threads, 0, opts)
    }

    pub(crate) fn open_shard(
        dir: &Path,
        threads: usize,
        shard: usize,
        opts: StoreOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let state = recover_dir(dir)?;
        let opts = StoreOptions {
            retain_snapshots: opts.retain_snapshots.max(1),
            ..opts
        };
        // Interrupted snapshot commits never made it to a final name.
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, "read", &e))? {
            let entry = entry.map_err(|e| io_err(dir, "read", &e))?;
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                std::fs::remove_file(entry.path())
                    .map_err(|e| io_err(&entry.path(), "remove", &e))?;
            }
        }
        let (inner, outcome) =
            ServingEngine::recovered(state.parts, state.model, state.config, threads)?;
        let report = RecoveryReport {
            snapshot_generation: state.snapshot_generation,
            recovered_generation: outcome.generation,
            outcome,
            corrupt_snapshots_skipped: state.corrupt_snapshots_skipped,
            torn_log_tails: state.torn_log_tails,
            corrupt_log_tails: state.corrupt_log_tails,
            stale_records: state.stale_records,
            unreachable_records: state.unreachable_records,
        };
        // Rotate: the recovered generation's segment is recreated fresh.
        // Anything it held is either replayed (≤ recovered generation) or
        // unacknowledged bytes past the valid prefix — discardable by the
        // crash contract.
        let base = report.recovered_generation;
        let stale = wal_path(dir, base);
        match std::fs::remove_file(&stale) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&stale, "remove", &e)),
        }
        let this = Self {
            wal: LogWriter::create(dir, base, shard)?,
            inner,
            dir: dir.to_path_buf(),
            opts,
            model: state.model,
            config: state.config,
            shard,
            ingests_since_snapshot: 0,
        };
        sync_dir(&this.dir)?;
        if report.outcome.replayed_batches > 0 {
            // Compact: the replayed tail becomes part of a fresh snapshot
            // so repeated crash/recover cycles never re-pay it.
            write_snapshot(&this.dir, &this.capture(), shard)?;
            this.retire()?;
        }
        Ok((this, report))
    }

    /// The full durable state as of the current published generation.
    fn capture(&self) -> StoreSnapshot {
        let mut scores = Vec::new();
        let generation = self.inner.reader().snapshot_into(&mut scores);
        debug_assert_eq!(generation, self.inner.generation());
        StoreSnapshot {
            graph: self.inner.delta_graph().snapshot(),
            perm_forward: self.inner.permutation().map(|p| p.forward().to_vec()),
            scores,
            generation,
            teleport: self.inner.teleport().map(<[f64]>::to_vec),
            model: self.model,
            config: self.config,
            removed: self.inner.removed_nodes(),
        }
    }

    /// Apply one edge batch **durably**: validate, append + fsync the log
    /// record, then publish through [`ServingEngine::ingest`]. When the
    /// snapshot cadence fires, the snapshot/rotate/retire sequence runs
    /// after publication.
    ///
    /// # Errors
    /// Validation failures leave both the log and the served state
    /// untouched; I/O failures after validation leave the served state
    /// untouched (the record may or may not be durable — exactly a
    /// crash, which recovery resolves).
    pub fn ingest(&mut self, batch: &EdgeBatch) -> Result<RefreshOutcome> {
        self.ingest_with(batch, None).map(|(outcome, _)| outcome)
    }

    /// [`DurableServingEngine::ingest`] threading an optional prepatched
    /// transpose through to [`ServingEngine::ingest_with`] (the shard
    /// layer's structure-sharing path).
    ///
    /// # Errors
    /// As [`DurableServingEngine::ingest`].
    pub fn ingest_with(
        &mut self,
        batch: &EdgeBatch,
        prepatched: Option<Arc<CscStructure>>,
    ) -> Result<(RefreshOutcome, Arc<CscStructure>)> {
        // Validate first: a record is appended only if replaying it can
        // never fail.
        self.inner.validate_batch(batch)?;
        let generation = self.inner.generation() + 1;
        debug_assert_eq!(generation, self.wal.next_generation());
        self.wal.append(&LogRecord::from_batch(generation, batch))?;
        yield_point("store.serve.ingest", self.shard);
        let (outcome, structure) = self.inner.ingest_with(batch, prepatched)?;
        debug_assert_eq!(outcome.generation, generation);
        self.ingests_since_snapshot += 1;
        if self.opts.snapshot_every > 0 && self.ingests_since_snapshot >= self.opts.snapshot_every {
            self.snapshot_now()?;
        }
        yield_point("store.ingest.done", self.shard);
        Ok((outcome, structure))
    }

    /// Commit a snapshot at the current generation, rotate the log, and
    /// retire files outside the retention window. Returns the snapshot's
    /// generation.
    ///
    /// # Errors
    /// [`StoreError::Io`] on any failing step (the served state is
    /// never affected).
    pub fn snapshot_now(&mut self) -> Result<u64> {
        let snap = self.capture();
        let generation = snap.generation;
        write_snapshot(&self.dir, &snap, self.shard)?;
        yield_point("store.log.rotate", self.shard);
        // The rotation target can exist only after recovery raced a
        // crash here before; its records are all ≤ generation (replayed).
        let target = wal_path(&self.dir, generation);
        match std::fs::remove_file(&target) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&target, "remove", &e)),
        }
        self.wal = LogWriter::create(&self.dir, generation, self.shard)?;
        sync_dir(&self.dir)?;
        self.ingests_since_snapshot = 0;
        self.retire()?;
        Ok(generation)
    }

    /// Delete snapshots beyond the retention window and log segments no
    /// retained snapshot needs (base older than the oldest retained
    /// snapshot's generation).
    fn retire(&self) -> Result<()> {
        let (snaps, wals) = list_store_files(&self.dir)?;
        if snaps.len() > self.opts.retain_snapshots {
            let cut = snaps.len() - self.opts.retain_snapshots;
            for (_, path) in &snaps[..cut] {
                yield_point("store.log.retire", self.shard);
                std::fs::remove_file(path).map_err(|e| io_err(path, "remove", &e))?;
            }
        }
        let oldest_retained = snaps[snaps.len().saturating_sub(self.opts.retain_snapshots)..]
            .first()
            .map(|&(generation, _)| generation)
            .unwrap_or(0);
        for (base, path) in &wals {
            if *base < oldest_retained {
                yield_point("store.log.retire", self.shard);
                std::fs::remove_file(path).map_err(|e| io_err(path, "remove", &e))?;
            }
        }
        Ok(())
    }

    /// A read handle on the published scores (identical to
    /// [`ServingEngine::reader`] — durability never touches the read
    /// path).
    pub fn reader(&self) -> ScoreReader {
        self.inner.reader()
    }

    /// The latest published (and durable) generation.
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }

    /// The wrapped serving engine.
    pub fn engine(&self) -> &ServingEngine {
        &self.inner
    }

    /// The data directory this store persists into.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    /// The shared transpose structure currently served (the shard
    /// layer's group key).
    ///
    /// # Errors
    /// Reports a poisoned engine.
    pub fn shared_structure(&self) -> Result<Arc<CscStructure>> {
        Ok(self.inner.shared_structure()?)
    }
}
