//! CRC-32 (IEEE 802.3), the checksum guarding every log record frame and
//! snapshot payload.
//!
//! Hand-rolled (the build environment vendors no checksum crate): the
//! standard byte-at-a-time table algorithm over the reflected polynomial
//! `0xEDB88320`, init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — bit-exact
//! with zlib's `crc32()`, so files remain checkable with external tools.

/// The 256-entry lookup table, built once on first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// A streaming CRC-32 accumulator.
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.0;
        for &b in data {
            c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The finalized checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut s = Crc32::new();
        for chunk in data.chunks(7) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let data = b"durable before served".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
