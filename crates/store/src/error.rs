//! Typed error surface of the durability layer.
//!
//! The crash contract forbids two behaviors on bad bytes: panicking, and
//! serving state that a checksum did not verify. Everything a decoder or
//! the recovery scan can object to is therefore a variant here, with the
//! file path and byte offset carried as fields (via
//! [`CorruptFile`]) rather than formatted into prose.

use d2pr_core::error::UpdateError;
use d2pr_graph::error::{CorruptFile, GraphError};
use std::fmt;
use std::path::Path;

/// Errors produced by the log, snapshot, recovery, and durable-serving
/// layers.
#[derive(Debug)]
pub enum StoreError {
    /// A log segment or snapshot failed to decode; the payload names the
    /// file and the byte offset of the first defect. Recovery treats
    /// corruption *inside* chosen state as this hard error only when no
    /// older checksum-valid state exists to fall back to — a torn log
    /// tail is not an error at all (see `log::ScanStop`).
    Corrupt(CorruptFile),
    /// An OS-level file operation failed.
    Io {
        /// The file or directory being accessed.
        path: String,
        /// The operation that failed (`"create"`, `"fsync"`, `"rename"`, ...).
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The serving/solver layer rejected an operation (batch validation,
    /// warm re-solve, engine revival).
    Update(UpdateError),
    /// The data directory holds no checksum-valid snapshot to recover
    /// from (empty directory, or every snapshot failed verification).
    NoDurableState {
        /// The directory that was scanned.
        dir: String,
        /// Snapshot files found but rejected by verification.
        corrupt_snapshots: usize,
    },
    /// `create` was pointed at a directory that already holds durable
    /// state — opening it instead prevents silently clobbering a log.
    AlreadyInitialized {
        /// The directory holding existing state.
        dir: String,
    },
    /// The durable generation chain is broken: the log tail does not
    /// continue contiguously from the chosen snapshot's generation.
    GenerationGap {
        /// The generation recovery resumed from (snapshot).
        snapshot_generation: u64,
        /// The first generation missing from the log.
        missing: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Corrupt(c) => write!(f, "corrupt store file: {c}"),
            StoreError::Io { path, op, message } => {
                write!(f, "store i/o error: {op} {path}: {message}")
            }
            StoreError::Update(e) => write!(f, "store update failed: {e}"),
            StoreError::NoDurableState {
                dir,
                corrupt_snapshots,
            } => write!(
                f,
                "no durable state under {dir} ({corrupt_snapshots} snapshot(s) failed verification)"
            ),
            StoreError::AlreadyInitialized { dir } => write!(
                f,
                "{dir} already holds durable state (open it instead of creating over it)"
            ),
            StoreError::GenerationGap {
                snapshot_generation,
                missing,
            } => write!(
                f,
                "durable generation chain broken: snapshot at {snapshot_generation}, \
                 generation {missing} missing from the log"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CorruptFile> for StoreError {
    fn from(c: CorruptFile) -> Self {
        StoreError::Corrupt(c)
    }
}

impl From<UpdateError> for StoreError {
    fn from(e: UpdateError) -> Self {
        StoreError::Update(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::Corrupt(c) => StoreError::Corrupt(c),
            GraphError::FileIo { path, op, message } => StoreError::Io { path, op, message },
            other => StoreError::Update(UpdateError::Graph(other)),
        }
    }
}

/// Wrap an [`std::io::Error`] with the path and operation that failed.
pub(crate) fn io_err(path: &Path, op: &'static str, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        op,
        message: e.to_string(),
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use d2pr_graph::error::CorruptKind;

    #[test]
    fn display_carries_typed_context() {
        let c: StoreError = CorruptFile::at(
            17,
            CorruptKind::Checksum {
                stored: 1,
                computed: 2,
            },
        )
        .with_path("/d/wal-0.log")
        .into();
        assert!(c.to_string().contains("/d/wal-0.log"));
        assert!(c.to_string().contains("byte 17"));

        let gap = StoreError::GenerationGap {
            snapshot_generation: 4,
            missing: 5,
        };
        assert!(gap.to_string().contains("generation 5 missing"));

        let io = io_err(
            Path::new("/d/snap-0.bin.tmp"),
            "rename",
            &std::io::Error::other("boom"),
        );
        assert!(io.to_string().contains("rename /d/snap-0.bin.tmp"));
    }

    #[test]
    fn graph_errors_map_structurally() {
        let e: StoreError = GraphError::FileIo {
            path: "x".into(),
            op: "read",
            message: "gone".into(),
        }
        .into();
        assert!(matches!(e, StoreError::Io { .. }));
        let e: StoreError = GraphError::Corrupt(CorruptFile::at(
            0,
            CorruptKind::BadMagic {
                found: 0,
                expected: 1,
            },
        ))
        .into();
        assert!(matches!(e, StoreError::Corrupt(_)));
    }
}
