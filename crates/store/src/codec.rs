//! Hand-rolled stable binary encoding of log records.
//!
//! The build environment has no registry access, so there is no serde:
//! every field is written little-endian through the `Enc` helper and
//! read back through the offset-tracking `Dec`, whose errors are typed
//! [`CorruptFile`] values carrying the *absolute* byte offset inside the
//! source file (decoders of framed records pass the frame's position as
//! `base`).
//!
//! # Record payload format (version 1)
//!
//! ```text
//! [generation u64]
//! [flags u8]          bit 0: inserts carry weights
//! [n_inserts u32] [n_deletes u32]
//! n_inserts × [src u32][dst u32]
//! flags&1   × n_inserts × [weight f64]
//! n_deletes × [src u32][dst u32]      (tombstones)
//! ```
//!
//! The weight channel exists for forward compatibility with weighted
//! delta rules; today's serving layer is unweighted and
//! [`LogRecord::to_batch`] rejects weighted records as corrupt rather
//! than silently dropping the weights.
//!
//! # Frame format
//!
//! ```text
//! [len u32][crc u32][payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. A frame whose header or
//! payload extends past the end of the data is *torn*, not corrupt — the
//! distinction [`crate::log::scan_log`] turns into the crash contract.

use crate::crc::crc32;
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::error::{CorruptFile, CorruptKind};

/// Little-endian byte sink.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Offset-tracking little-endian reader over a byte slice. `base` is the
/// slice's position inside its source file, so every [`CorruptFile`]
/// reports an absolute file offset.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    base: u64,
    path: Option<&'a str>,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8], base: u64, path: Option<&'a str>) -> Self {
        Self {
            data,
            pos: 0,
            base,
            path,
        }
    }

    /// Absolute file offset of the next unread byte.
    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// A corruption record anchored at the current absolute offset.
    pub(crate) fn corrupt(&self, kind: CorruptKind) -> CorruptFile {
        let c = CorruptFile::at(self.offset(), kind);
        match self.path {
            Some(p) => c.with_path(p),
            None => c,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CorruptFile> {
        if self.remaining() < n {
            return Err(self.corrupt(CorruptKind::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            }));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CorruptFile> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CorruptFile> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CorruptFile> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CorruptFile> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], CorruptFile> {
        self.take(n)
    }
}

/// One durable log record: the edge batch published as `generation`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// The generation this batch's ingest published.
    pub generation: u64,
    /// Inserted arcs, caller (external) ids.
    pub inserts: Vec<(u32, u32)>,
    /// Optional weights parallel to `inserts` (forward-compat channel;
    /// the unweighted serving layer never writes it).
    pub weights: Option<Vec<f64>>,
    /// Deleted arcs (tombstones), caller ids.
    pub deletes: Vec<(u32, u32)>,
}

impl LogRecord {
    /// The record ingest logs for `batch` at `generation`.
    pub fn from_batch(generation: u64, batch: &EdgeBatch) -> Self {
        Self {
            generation,
            inserts: batch.inserts.clone(),
            weights: None,
            deletes: batch.deletes.clone(),
        }
    }

    /// Rebuild the edge batch for replay.
    ///
    /// # Errors
    /// A weighted record is [`CorruptKind::Malformed`] for the unweighted
    /// serving layer — dropping the weights silently would replay a
    /// different batch than the one that was served.
    pub fn to_batch(&self) -> Result<EdgeBatch, CorruptFile> {
        if self.weights.is_some() {
            return Err(CorruptFile::at(
                0,
                CorruptKind::Malformed(
                    "weighted log record replayed into an unweighted serving engine".into(),
                ),
            ));
        }
        let mut b = EdgeBatch::new();
        for &(u, v) in &self.inserts {
            b.insert(u, v);
        }
        for &(u, v) in &self.deletes {
            b.delete(u, v);
        }
        Ok(b)
    }

    /// Encode the payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.generation);
        e.u8(u8::from(self.weights.is_some()));
        e.u32(self.inserts.len() as u32);
        e.u32(self.deletes.len() as u32);
        for &(u, v) in &self.inserts {
            e.u32(u);
            e.u32(v);
        }
        if let Some(w) = &self.weights {
            debug_assert_eq!(w.len(), self.inserts.len());
            for &x in w {
                e.f64(x);
            }
        }
        for &(u, v) in &self.deletes {
            e.u32(u);
            e.u32(v);
        }
        e.into_vec()
    }

    /// Decode a payload produced by [`LogRecord::encode`]. `base`/`path`
    /// anchor error offsets in the source file.
    pub(crate) fn decode(data: &[u8], base: u64, path: Option<&str>) -> Result<Self, CorruptFile> {
        let mut d = Dec::new(data, base, path);
        let generation = d.u64()?;
        let flags = d.u8()?;
        if flags > 1 {
            return Err(d.corrupt(CorruptKind::Malformed(format!(
                "unknown record flags 0x{flags:02x}"
            ))));
        }
        let n_ins = d.u32()? as usize;
        let n_del = d.u32()? as usize;
        // Bound the declared counts by the bytes actually present before
        // allocating (a bit-flipped count must not trigger a huge alloc).
        let per_ins = 8 + if flags & 1 != 0 { 8 } else { 0 };
        let declared = n_ins
            .saturating_mul(per_ins)
            .saturating_add(n_del.saturating_mul(8));
        if declared > d.remaining() {
            return Err(d.corrupt(CorruptKind::Truncated {
                needed: declared as u64,
                available: d.remaining() as u64,
            }));
        }
        let mut inserts = Vec::with_capacity(n_ins);
        for _ in 0..n_ins {
            inserts.push((d.u32()?, d.u32()?));
        }
        let weights = if flags & 1 != 0 {
            let mut w = Vec::with_capacity(n_ins);
            for _ in 0..n_ins {
                w.push(d.f64()?);
            }
            Some(w)
        } else {
            None
        };
        let mut deletes = Vec::with_capacity(n_del);
        for _ in 0..n_del {
            deletes.push((d.u32()?, d.u32()?));
        }
        if d.remaining() != 0 {
            return Err(d.corrupt(CorruptKind::Malformed(format!(
                "{} trailing bytes after record",
                d.remaining()
            ))));
        }
        Ok(Self {
            generation,
            inserts,
            weights,
            deletes,
        })
    }
}

/// Bytes of a frame header.
pub(crate) const FRAME_HEADER: usize = 8;

/// Frame a payload: `[len u32][crc u32][payload]`.
pub(crate) fn frame(payload: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut header = Vec::with_capacity(FRAME_HEADER);
    header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    header.extend_from_slice(&crc32(payload).to_le_bytes());
    (header, payload.to_vec())
}

/// What [`read_frame`] found at an offset.
pub(crate) enum Frame<'a> {
    /// A complete, checksum-verified payload plus the offset just past it.
    Ok { payload: &'a [u8], next: usize },
    /// The data ends cleanly at this offset (no more frames).
    End,
    /// The frame is incomplete — a torn tail if nothing follows.
    Torn {
        /// Bytes the frame needed beyond what is present.
        missing: usize,
    },
    /// A complete frame whose checksum (or impossible length) failed.
    Corrupt(CorruptFile),
}

/// Decode the frame starting at `pos` in `data`.
pub(crate) fn read_frame<'a>(data: &'a [u8], pos: usize, path: Option<&str>) -> Frame<'a> {
    let rest = &data[pos..];
    if rest.is_empty() {
        return Frame::End;
    }
    if rest.len() < FRAME_HEADER {
        return Frame::Torn {
            missing: FRAME_HEADER - rest.len(),
        };
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Frame::Torn {
            missing: FRAME_HEADER + len - rest.len(),
        };
    };
    let computed = crc32(payload);
    if computed != stored {
        let c = CorruptFile::at(pos as u64 + 4, CorruptKind::Checksum { stored, computed });
        return Frame::Corrupt(match path {
            Some(p) => c.with_path(p),
            None => c,
        });
    }
    Frame::Ok {
        payload,
        next: pos + FRAME_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord {
            generation: 42,
            inserts: vec![(0, 7), (3, 9)],
            weights: None,
            deletes: vec![(1, 2)],
        }
    }

    #[test]
    fn record_round_trips() {
        for rec in [
            sample(),
            LogRecord {
                generation: 0,
                inserts: vec![],
                weights: None,
                deletes: vec![],
            },
            LogRecord {
                generation: u64::MAX,
                inserts: vec![(u32::MAX, 0)],
                weights: Some(vec![2.5]),
                deletes: vec![(5, 5); 3],
            },
        ] {
            let bytes = rec.encode();
            let back = LogRecord::decode(&bytes, 0, None).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn decode_rejects_every_truncation_prefix() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = LogRecord::decode(&bytes[..cut], 100, Some("wal")).unwrap_err();
            assert!(err.offset >= 100, "offsets are absolute");
            assert_eq!(err.path.as_deref(), Some("wal"));
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_flags() {
        let mut bytes = sample().encode();
        bytes.push(0);
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Malformed(_)));

        let mut bytes = sample().encode();
        bytes[8] = 0xFE; // flags
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Malformed(_)));
    }

    #[test]
    fn inflated_counts_do_not_allocate() {
        let mut bytes = sample().encode();
        // Blow up the insert count field (offset 9..13).
        bytes[12] = 0xFF;
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Truncated { .. }));
    }

    #[test]
    fn frames_verify_and_classify() {
        let payload = sample().encode();
        let (h, p) = frame(&payload);
        let mut data = h;
        data.extend_from_slice(&p);

        match read_frame(&data, 0, None) {
            Frame::Ok { payload: got, next } => {
                assert_eq!(got, payload.as_slice());
                assert_eq!(next, data.len());
            }
            _ => panic!("complete frame must verify"),
        }
        assert!(matches!(read_frame(&data, data.len(), None), Frame::End));
        for cut in 1..data.len() {
            assert!(
                matches!(read_frame(&data[..cut], 0, None), Frame::Torn { .. }),
                "cut at {cut} is torn"
            );
        }
        // A payload bit flip is Corrupt, not Torn.
        let mut flipped = data.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(
            read_frame(&flipped, 0, Some("w")),
            Frame::Corrupt(_)
        ));
    }

    #[test]
    fn weighted_records_cannot_replay_unweighted() {
        let rec = LogRecord {
            generation: 1,
            inserts: vec![(0, 1)],
            weights: Some(vec![1.0]),
            deletes: vec![],
        };
        assert!(rec.to_batch().is_err());
        let mut b = EdgeBatch::new();
        b.insert(2, 3);
        b.delete(4, 5);
        let rt = LogRecord::from_batch(9, &b).to_batch().unwrap();
        assert_eq!(rt.inserts, b.inserts);
        assert_eq!(rt.deletes, b.deletes);
    }
}
