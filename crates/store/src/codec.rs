//! Hand-rolled stable binary encoding of log records.
//!
//! The build environment has no registry access, so there is no serde:
//! every field is written little-endian through the `Enc` helper and
//! read back through the offset-tracking `Dec`, whose errors are typed
//! [`CorruptFile`] values carrying the *absolute* byte offset inside the
//! source file (decoders of framed records pass the frame's position as
//! `base`).
//!
//! # Record payload format
//!
//! ```text
//! [generation u64]
//! [flags u8]          bit 0: inserts carry weights
//!                     bit 1: node-ops section present
//! [n_inserts u32] [n_deletes u32]
//! n_inserts × [src u32][dst u32]
//! flags&1   × n_inserts × [weight f64]
//! n_deletes × [src u32][dst u32]      (tombstones)
//! flags&2   × [new_nodes u32][n_removed u32] n_removed × [node u32]
//! ```
//!
//! The flags byte versions the record in place: a batch with no weights
//! and no node churn encodes byte-identically to the original format, so
//! logs written before weights/node-ops existed replay unchanged, and a
//! reader from that era rejects (never misreads) newer records via the
//! unknown-flag check.
//!
//! # Frame format
//!
//! ```text
//! [len u32][crc u32][payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. A frame whose header or
//! payload extends past the end of the data is *torn*, not corrupt — the
//! distinction [`crate::log::scan_log`] turns into the crash contract.

use crate::crc::crc32;
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::error::{CorruptFile, CorruptKind};

/// Little-endian byte sink.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Offset-tracking little-endian reader over a byte slice. `base` is the
/// slice's position inside its source file, so every [`CorruptFile`]
/// reports an absolute file offset.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    base: u64,
    path: Option<&'a str>,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8], base: u64, path: Option<&'a str>) -> Self {
        Self {
            data,
            pos: 0,
            base,
            path,
        }
    }

    /// Absolute file offset of the next unread byte.
    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// A corruption record anchored at the current absolute offset.
    pub(crate) fn corrupt(&self, kind: CorruptKind) -> CorruptFile {
        let c = CorruptFile::at(self.offset(), kind);
        match self.path {
            Some(p) => c.with_path(p),
            None => c,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CorruptFile> {
        if self.remaining() < n {
            return Err(self.corrupt(CorruptKind::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            }));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CorruptFile> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CorruptFile> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CorruptFile> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CorruptFile> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], CorruptFile> {
        self.take(n)
    }
}

/// One durable log record: the edge batch published as `generation`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// The generation this batch's ingest published.
    pub generation: u64,
    /// Inserted arcs, caller (external) ids.
    pub inserts: Vec<(u32, u32)>,
    /// Optional weights parallel to `inserts`; `None` means every insert
    /// carries weight 1.
    pub weights: Option<Vec<f64>>,
    /// Deleted arcs (tombstones), caller ids.
    pub deletes: Vec<(u32, u32)>,
    /// Fresh node ids appended by the batch.
    pub new_nodes: u32,
    /// Nodes the batch tombstones, caller ids.
    pub removed_nodes: Vec<u32>,
}

impl LogRecord {
    /// The record ingest logs for `batch` at `generation`.
    pub fn from_batch(generation: u64, batch: &EdgeBatch) -> Self {
        Self {
            generation,
            inserts: batch.inserts.clone(),
            weights: batch.weights.clone(),
            deletes: batch.deletes.clone(),
            new_nodes: batch.new_nodes,
            removed_nodes: batch.removed_nodes.clone(),
        }
    }

    /// Rebuild the edge batch for replay.
    ///
    /// # Errors
    /// A weight channel whose length disagrees with the insert list is
    /// [`CorruptKind::Malformed`] — replaying it would assign weights to
    /// the wrong arcs ([`LogRecord::decode`] never produces one, but the
    /// record type is constructible by hand).
    pub fn to_batch(&self) -> Result<EdgeBatch, CorruptFile> {
        if let Some(w) = &self.weights {
            if w.len() != self.inserts.len() {
                return Err(CorruptFile::at(
                    0,
                    CorruptKind::Malformed(format!(
                        "{} weights for {} inserts",
                        w.len(),
                        self.inserts.len()
                    )),
                ));
            }
        }
        let mut b = EdgeBatch::new();
        b.add_nodes(self.new_nodes);
        for (k, &(u, v)) in self.inserts.iter().enumerate() {
            match &self.weights {
                Some(w) => b.insert_weighted(u, v, w[k]),
                None => b.insert(u, v),
            };
        }
        for &(u, v) in &self.deletes {
            b.delete(u, v);
        }
        for &v in &self.removed_nodes {
            b.remove_node(v);
        }
        Ok(b)
    }

    /// Encode the payload (unframed). Records without weights or node
    /// ops stay byte-identical to the pre-weight format.
    pub fn encode(&self) -> Vec<u8> {
        let node_ops = self.new_nodes > 0 || !self.removed_nodes.is_empty();
        let mut e = Enc::new();
        e.u64(self.generation);
        e.u8(u8::from(self.weights.is_some()) | (u8::from(node_ops) << 1));
        e.u32(self.inserts.len() as u32);
        e.u32(self.deletes.len() as u32);
        for &(u, v) in &self.inserts {
            e.u32(u);
            e.u32(v);
        }
        if let Some(w) = &self.weights {
            debug_assert_eq!(w.len(), self.inserts.len());
            for &x in w {
                e.f64(x);
            }
        }
        for &(u, v) in &self.deletes {
            e.u32(u);
            e.u32(v);
        }
        if node_ops {
            e.u32(self.new_nodes);
            e.u32(self.removed_nodes.len() as u32);
            for &v in &self.removed_nodes {
                e.u32(v);
            }
        }
        e.into_vec()
    }

    /// Decode a payload produced by [`LogRecord::encode`]. `base`/`path`
    /// anchor error offsets in the source file.
    pub(crate) fn decode(data: &[u8], base: u64, path: Option<&str>) -> Result<Self, CorruptFile> {
        let mut d = Dec::new(data, base, path);
        let generation = d.u64()?;
        let flags = d.u8()?;
        if flags > 3 {
            return Err(d.corrupt(CorruptKind::Malformed(format!(
                "unknown record flags 0x{flags:02x}"
            ))));
        }
        let n_ins = d.u32()? as usize;
        let n_del = d.u32()? as usize;
        // Bound the declared counts by the bytes actually present before
        // allocating (a bit-flipped count must not trigger a huge alloc).
        let per_ins = 8 + if flags & 1 != 0 { 8 } else { 0 };
        let declared = n_ins
            .saturating_mul(per_ins)
            .saturating_add(n_del.saturating_mul(8));
        if declared > d.remaining() {
            return Err(d.corrupt(CorruptKind::Truncated {
                needed: declared as u64,
                available: d.remaining() as u64,
            }));
        }
        let mut inserts = Vec::with_capacity(n_ins);
        for _ in 0..n_ins {
            inserts.push((d.u32()?, d.u32()?));
        }
        let weights = if flags & 1 != 0 {
            let mut w = Vec::with_capacity(n_ins);
            for _ in 0..n_ins {
                w.push(d.f64()?);
            }
            Some(w)
        } else {
            None
        };
        let mut deletes = Vec::with_capacity(n_del);
        for _ in 0..n_del {
            deletes.push((d.u32()?, d.u32()?));
        }
        let (new_nodes, removed_nodes) = if flags & 2 != 0 {
            let new_nodes = d.u32()?;
            let n_rem = d.u32()? as usize;
            if n_rem.saturating_mul(4) > d.remaining() {
                return Err(d.corrupt(CorruptKind::Truncated {
                    needed: (n_rem as u64).saturating_mul(4),
                    available: d.remaining() as u64,
                }));
            }
            let mut removed = Vec::with_capacity(n_rem);
            for _ in 0..n_rem {
                removed.push(d.u32()?);
            }
            (new_nodes, removed)
        } else {
            (0, Vec::new())
        };
        if d.remaining() != 0 {
            return Err(d.corrupt(CorruptKind::Malformed(format!(
                "{} trailing bytes after record",
                d.remaining()
            ))));
        }
        Ok(Self {
            generation,
            inserts,
            weights,
            deletes,
            new_nodes,
            removed_nodes,
        })
    }
}

/// Bytes of a frame header.
pub(crate) const FRAME_HEADER: usize = 8;

/// Frame a payload: `[len u32][crc u32][payload]`.
pub(crate) fn frame(payload: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut header = Vec::with_capacity(FRAME_HEADER);
    header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    header.extend_from_slice(&crc32(payload).to_le_bytes());
    (header, payload.to_vec())
}

/// What [`read_frame`] found at an offset.
pub(crate) enum Frame<'a> {
    /// A complete, checksum-verified payload plus the offset just past it.
    Ok { payload: &'a [u8], next: usize },
    /// The data ends cleanly at this offset (no more frames).
    End,
    /// The frame is incomplete — a torn tail if nothing follows.
    Torn {
        /// Bytes the frame needed beyond what is present.
        missing: usize,
    },
    /// A complete frame whose checksum (or impossible length) failed.
    Corrupt(CorruptFile),
}

/// Decode the frame starting at `pos` in `data`.
pub(crate) fn read_frame<'a>(data: &'a [u8], pos: usize, path: Option<&str>) -> Frame<'a> {
    let rest = &data[pos..];
    if rest.is_empty() {
        return Frame::End;
    }
    if rest.len() < FRAME_HEADER {
        return Frame::Torn {
            missing: FRAME_HEADER - rest.len(),
        };
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Frame::Torn {
            missing: FRAME_HEADER + len - rest.len(),
        };
    };
    let computed = crc32(payload);
    if computed != stored {
        let c = CorruptFile::at(pos as u64 + 4, CorruptKind::Checksum { stored, computed });
        return Frame::Corrupt(match path {
            Some(p) => c.with_path(p),
            None => c,
        });
    }
    Frame::Ok {
        payload,
        next: pos + FRAME_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord {
            generation: 42,
            inserts: vec![(0, 7), (3, 9)],
            weights: None,
            deletes: vec![(1, 2)],
            new_nodes: 0,
            removed_nodes: vec![],
        }
    }

    fn churn_sample() -> LogRecord {
        LogRecord {
            generation: 43,
            inserts: vec![(0, 7), (3, 9)],
            weights: Some(vec![2.5, 0.125]),
            deletes: vec![(1, 2)],
            new_nodes: 4,
            removed_nodes: vec![5, 6],
        }
    }

    #[test]
    fn record_round_trips() {
        for rec in [
            sample(),
            churn_sample(),
            LogRecord {
                generation: 0,
                inserts: vec![],
                weights: None,
                deletes: vec![],
                new_nodes: 0,
                removed_nodes: vec![],
            },
            LogRecord {
                generation: u64::MAX,
                inserts: vec![(u32::MAX, 0)],
                weights: Some(vec![2.5]),
                deletes: vec![(5, 5); 3],
                new_nodes: 0,
                removed_nodes: vec![],
            },
            LogRecord {
                generation: 9,
                inserts: vec![],
                weights: None,
                deletes: vec![],
                new_nodes: u32::MAX,
                removed_nodes: vec![0],
            },
        ] {
            let bytes = rec.encode();
            let back = LogRecord::decode(&bytes, 0, None).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn plain_records_encode_byte_identically_to_the_original_format() {
        // The pre-weight layout, written by hand: a reader of old logs
        // must see exactly these bytes for a weightless, churnless batch.
        let rec = sample();
        let mut expect = Vec::new();
        expect.extend_from_slice(&42u64.to_le_bytes());
        expect.push(0); // flags
        expect.extend_from_slice(&2u32.to_le_bytes());
        expect.extend_from_slice(&1u32.to_le_bytes());
        for (u, v) in [(0u32, 7u32), (3, 9), (1, 2)] {
            expect.extend_from_slice(&u.to_le_bytes());
            expect.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(rec.encode(), expect);
    }

    #[test]
    fn decode_rejects_every_truncation_prefix() {
        for rec in [sample(), churn_sample()] {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                let err = LogRecord::decode(&bytes[..cut], 100, Some("wal")).unwrap_err();
                assert!(err.offset >= 100, "offsets are absolute");
                assert_eq!(err.path.as_deref(), Some("wal"));
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_flags() {
        let mut bytes = sample().encode();
        bytes.push(0);
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Malformed(_)));

        let mut bytes = sample().encode();
        bytes[8] = 0xFE; // flags
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Malformed(_)));
    }

    #[test]
    fn inflated_counts_do_not_allocate() {
        let mut bytes = sample().encode();
        // Blow up the insert count field (offset 9..13).
        bytes[12] = 0xFF;
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Truncated { .. }));

        // Same for the removed-node count at the tail of a churn record.
        let mut bytes = churn_sample().encode();
        let cnt = bytes.len() - 2 * 4 - 1; // before the two removed ids
        bytes[cnt] = 0xFF;
        let err = LogRecord::decode(&bytes, 0, None).unwrap_err();
        assert!(matches!(err.kind, CorruptKind::Truncated { .. }));
    }

    #[test]
    fn frames_verify_and_classify() {
        let payload = sample().encode();
        let (h, p) = frame(&payload);
        let mut data = h;
        data.extend_from_slice(&p);

        match read_frame(&data, 0, None) {
            Frame::Ok { payload: got, next } => {
                assert_eq!(got, payload.as_slice());
                assert_eq!(next, data.len());
            }
            _ => panic!("complete frame must verify"),
        }
        assert!(matches!(read_frame(&data, data.len(), None), Frame::End));
        for cut in 1..data.len() {
            assert!(
                matches!(read_frame(&data[..cut], 0, None), Frame::Torn { .. }),
                "cut at {cut} is torn"
            );
        }
        // A payload bit flip is Corrupt, not Torn.
        let mut flipped = data.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(
            read_frame(&flipped, 0, Some("w")),
            Frame::Corrupt(_)
        ));
    }

    #[test]
    fn batches_replay_with_weights_and_node_ops_intact() {
        let mut b = EdgeBatch::new();
        b.add_nodes(2);
        b.insert(2, 3);
        b.insert_weighted(4, 6, 0.5);
        b.delete(4, 5);
        b.remove_node(1);
        let rt = LogRecord::from_batch(9, &b).to_batch().unwrap();
        assert_eq!(rt, b);

        // A hand-built record whose weight channel disagrees with its
        // insert list must refuse to replay, not misassign weights.
        let rec = LogRecord {
            generation: 1,
            inserts: vec![(0, 1)],
            weights: Some(vec![1.0, 2.0]),
            deletes: vec![],
            new_nodes: 0,
            removed_nodes: vec![],
        };
        assert!(rec.to_batch().is_err());
    }
}
