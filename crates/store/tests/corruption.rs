//! The corruption battery: bit flips, truncations at every byte offset,
//! stale and duplicated files, and raw garbage. The invariant under
//! attack is always the same — recovery lands on the last
//! checksum-valid durable prefix, never serves torn state, and never
//! panics on bad bytes.

use d2pr_core::pagerank::{pagerank, PageRankConfig};
use d2pr_core::serving::ServingEngine;
use d2pr_core::transition::TransitionModel;
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction};
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use d2pr_store::durable::{DurableServingEngine, StoreOptions};
use d2pr_store::{recover_dir, StoreError};
use std::path::{Path, PathBuf};

const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };
const N: u32 = 60;

fn tight() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-11,
        max_iterations: 2_000,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("d2pr-cor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn batch(step: u64) -> EdgeBatch {
    let mut b = EdgeBatch::new();
    let s = step as u32;
    b.insert(s % N, (s * 7 + 1) % N);
    b.insert((s * 3 + 2) % N, (s * 5 + 4) % N);
    b.delete((s + 1) % N, (s * 7 + 8) % N);
    b
}

fn base_graph() -> CsrGraph {
    barabasi_albert(N as usize, 2, 31).unwrap()
}

fn graph_at(upto: u64) -> CsrGraph {
    let mut dg = DeltaGraph::new(base_graph()).unwrap();
    for g in 1..=upto {
        dg.apply_batch(&batch(g)).unwrap();
    }
    dg.into_snapshot()
}

/// Lay down the canonical fixture: snapshot at 0 and 3 (retained), wal-3
/// holding generations 4..=6.
fn fixture(tag: &str) -> PathBuf {
    let dir = tmpdir(tag);
    let mut store = DurableServingEngine::create(
        &dir,
        base_graph(),
        MODEL,
        tight(),
        1,
        StoreOptions::default(),
    )
    .unwrap();
    for g in 1..=3 {
        store.ingest(&batch(g)).unwrap();
    }
    store.snapshot_now().unwrap();
    for g in 4..=6 {
        store.ingest(&batch(g)).unwrap();
    }
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Recover and check the full contract at `expect_gen`: the scan lands
/// exactly there and a revived engine serves ranks matching a cold solve
/// of the graph at that generation.
fn assert_recovers_to(dir: &Path, expect_gen: u64) {
    let state = recover_dir(dir).unwrap();
    assert_eq!(
        state.durable_generation(),
        expect_gen,
        "scan landed on the wrong durable generation"
    );
    let scratch = dir.with_extension("open");
    copy_dir(dir, &scratch);
    let (store, report) = DurableServingEngine::open(&scratch, 1, StoreOptions::default()).unwrap();
    assert_eq!(report.recovered_generation, expect_gen);
    assert_eq!(store.generation(), expect_gen);
    let mut scores = Vec::new();
    store.reader().snapshot_into(&mut scores);
    let cold = pagerank(&graph_at(expect_gen), MODEL, &tight());
    let l1: f64 = scores
        .iter()
        .zip(&cold.scores)
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        l1 < 1e-8,
        "recovered ranks diverge from cold solve at gen {expect_gen}: L1 {l1:.3e}"
    );
    drop(store);
    std::fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn truncating_the_wal_at_every_byte_recovers_a_valid_prefix() {
    let dir = fixture("trunc");
    let wal = dir.join("wal-00000000000000000003.log");
    let full = std::fs::read(&wal).unwrap();

    // Frame boundaries: generation g becomes durable once the file holds
    // its complete frame.
    let mut boundaries = Vec::new(); // (byte_len, durable_gen)
    {
        let probe = tmpdir("trunc-probe");
        std::fs::create_dir_all(&probe).unwrap();
        let p = probe.join("wal-00000000000000000003.log");
        for len in 0..=full.len() {
            std::fs::write(&p, &full[..len]).unwrap();
            let scan = d2pr_store::log::scan_log(&p).unwrap();
            boundaries.push(3 + scan.records.len() as u64);
        }
        std::fs::remove_dir_all(&probe).unwrap();
    }
    assert_eq!(*boundaries.last().unwrap(), 6);
    assert_eq!(boundaries[0], 3);
    // Durability is monotone in bytes on disk.
    assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));

    // Full recovery contract at every truncation point of the final
    // record, plus spot checks across the whole file.
    let last_frame_start = full.len()
        - (1..=full.len())
            .find(|&k| {
                let probe = tmpdir("trunc-k");
                std::fs::create_dir_all(&probe).unwrap();
                let p = probe.join("wal-00000000000000000003.log");
                std::fs::write(&p, &full[..full.len() - k]).unwrap();
                let n = d2pr_store::log::scan_log(&p).unwrap().records.len();
                std::fs::remove_dir_all(&probe).unwrap();
                n == 2
            })
            .unwrap();
    for len in last_frame_start..=full.len() {
        std::fs::write(&wal, &full[..len]).unwrap();
        assert_recovers_to(&dir, boundaries[len]);
    }
    for len in (0..last_frame_start).step_by(7) {
        std::fs::write(&wal, &full[..len]).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.durable_generation(), boundaries[len]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_flip_in_the_latest_snapshot_falls_back() {
    let dir = fixture("snapflip");
    let snap = dir.join("snap-00000000000000000003.bin");
    let clean = std::fs::read(&snap).unwrap();

    // Any flipped byte must reject the snapshot; recovery then falls
    // back to snap-0 and stitches gens 1..=6 across both wal segments.
    for (i, step) in (0..clean.len()).step_by(3).enumerate() {
        let mut bytes = clean.clone();
        bytes[step] ^= 1 << (i % 8);
        std::fs::write(&snap, &bytes).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshot_generation, 0, "flip at byte {step} accepted");
        assert_eq!(state.corrupt_snapshots_skipped, 1);
        assert_eq!(state.durable_generation(), 6);
    }
    // Full engine-revival contract for one representative flip.
    let mut bytes = clean.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&snap, &bytes).unwrap();
    assert_recovers_to(&dir, 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_byte_flip_in_the_wal_recovers_the_prefix_before_it() {
    let dir = fixture("walflip");
    let wal = dir.join("wal-00000000000000000003.log");
    let clean = std::fs::read(&wal).unwrap();

    for (i, step) in (0..clean.len()).step_by(3).enumerate() {
        let mut bytes = clean.clone();
        bytes[step] ^= 1 << (i % 8);
        std::fs::write(&wal, &bytes).unwrap();
        // Never a panic, never an error: the chain stops at (or before)
        // the flipped byte and everything up to it replays.
        let state = recover_dir(&dir).unwrap();
        assert!(state.durable_generation() >= 3);
        assert!(state.durable_generation() <= 6);
        if step >= 20 {
            // Flips past the segment header leave the header valid, so
            // generations framed entirely before the flip survive.
            let intact = state.parts.tail.len() as u64;
            assert!(
                state.durable_generation() == 3 + intact,
                "inconsistent tail accounting at byte {step}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_and_duplicate_snapshots_never_mask_newer_state() {
    let dir = fixture("stale");
    // A duplicate of the OLD snapshot parked at a mid-chain generation:
    // verification passes but its payload says generation 0, while the
    // newest snapshot still wins the scan.
    std::fs::copy(
        dir.join("snap-00000000000000000000.bin"),
        dir.join("snap-00000000000000000002.bin"),
    )
    .unwrap();
    assert_recovers_to(&dir, 6);

    // Corrupt the newest snapshot too: the scan skips it, tries the
    // parked duplicate next — whose *payload* generation (0) governs
    // replay, not its filename — and still reaches gen 6 through the
    // full log chain.
    let snap = dir.join("snap-00000000000000000003.bin");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&snap, &bytes).unwrap();
    let state = recover_dir(&dir).unwrap();
    assert_eq!(state.snapshot_generation, 0);
    assert_eq!(state.durable_generation(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_files_and_empty_stores_fail_typed_never_panic() {
    // Garbage wearing store names.
    let dir = tmpdir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("snap-00000000000000000005.bin"), b"not a snapshot").unwrap();
    std::fs::write(
        dir.join("wal-00000000000000000005.log"),
        b"not a log either",
    )
    .unwrap();
    match recover_dir(&dir).unwrap_err() {
        StoreError::NoDurableState {
            corrupt_snapshots, ..
        } => assert_eq!(corrupt_snapshots, 1),
        other => panic!("expected NoDurableState, got {other}"),
    }

    // Garbage *alongside* a healthy store: ignored where foreign, skipped
    // where it shadows real names.
    let healthy = fixture("garbage-healthy");
    std::fs::write(healthy.join("snap-00000000000000000009.bin"), b"\0\0\0\0").unwrap();
    std::fs::write(healthy.join("wal-00000000000000000009.log"), vec![0xFF; 64]).unwrap();
    std::fs::write(healthy.join("README.txt"), b"unrelated").unwrap();
    let state = recover_dir(&healthy).unwrap();
    assert_eq!(state.snapshot_generation, 3);
    assert_eq!(state.durable_generation(), 6);
    assert_eq!(state.corrupt_snapshots_skipped, 1);
    assert_eq!(state.corrupt_log_tails, 1);
    assert_recovers_to(&healthy, 6);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&healthy).unwrap();
}

/// A deterministic weighted digraph for the node-op battery.
fn churn_base() -> CsrGraph {
    let mut b = GraphBuilder::new(Direction::Directed, N as usize);
    for s in 0..N {
        for k in 1..=3u32 {
            let t = (s * 7 + k * 13 + 1) % N;
            if t != s {
                b.add_weighted_edge(s, t, 0.5 + ((s + k) % 5) as f64);
            }
        }
    }
    b.build().unwrap()
}

/// Weighted edits plus node churn; generations 2 and 5 grow the id
/// space, 3 and 6 tombstone a node — so both retained wal segments hold
/// node-op frames.
fn churn_batch(step: u64) -> EdgeBatch {
    let mut b = EdgeBatch::new();
    match step {
        1 => {
            b.insert_weighted(1, 40, 2.5);
            b.set_weight(0, 14, 9.0);
        }
        2 => {
            b.add_nodes(1);
            b.insert_weighted(N, 7, 2.0);
            b.insert_weighted(3, N, 1.25);
        }
        3 => {
            b.remove_node(5);
        }
        4 => {
            b.insert_weighted(6, 17, 3.5);
            b.delete(1, 40);
        }
        5 => {
            b.add_nodes(1);
            b.insert_weighted(N + 1, 2, 0.5);
            b.insert_weighted(N, N + 1, 4.0);
        }
        _ => {
            b.remove_node(8);
            b.set_weight(6, 17, 0.25);
        }
    }
    b
}

#[test]
fn node_op_frames_survive_truncation_and_flips() {
    let model = TransitionModel::Blended { p: 0.5, beta: 0.5 };
    let dir = tmpdir("churnfix");
    let mut store = DurableServingEngine::create(
        &dir,
        churn_base(),
        model,
        tight(),
        1,
        StoreOptions::default(),
    )
    .unwrap();
    for g in 1..=3 {
        store.ingest(&churn_batch(g)).unwrap();
    }
    store.snapshot_now().unwrap(); // v2 snapshot: grown, tombstoned, weighted
    for g in 4..=6 {
        store.ingest(&churn_batch(g)).unwrap();
    }
    drop(store);

    // Reference scores per generation, straight through the live serving
    // path (masking and revival semantics included).
    let reference: Vec<Vec<f64>> = (3..=6)
        .map(|upto| {
            let mut eng = ServingEngine::new(churn_base(), model, tight(), 1).unwrap();
            for g in 1..=upto {
                eng.ingest(&churn_batch(g)).unwrap();
            }
            let mut s = Vec::new();
            eng.reader().snapshot_into(&mut s);
            s
        })
        .collect();
    let parity = |dir: &Path, expect_gen: u64| {
        let scratch = dir.with_extension("open");
        copy_dir(dir, &scratch);
        let (store, report) =
            DurableServingEngine::open(&scratch, 1, StoreOptions::default()).unwrap();
        assert_eq!(report.recovered_generation, expect_gen);
        let mut scores = Vec::new();
        store.reader().snapshot_into(&mut scores);
        let expect = &reference[(expect_gen - 3) as usize];
        assert_eq!(scores.len(), expect.len());
        let l1: f64 = scores.iter().zip(expect).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            l1 < 1e-7,
            "recovered churn state diverges at gen {expect_gen}: L1 {l1:.3e}"
        );
        drop(store);
        std::fs::remove_dir_all(&scratch).unwrap();
    };

    // Truncating the wal at every byte: never an error, never a served
    // torn record; full revival parity at each reachable generation.
    let wal = dir.join("wal-00000000000000000003.log");
    let full = std::fs::read(&wal).unwrap();
    let mut reached = std::collections::BTreeSet::new();
    for len in 0..=full.len() {
        std::fs::write(&wal, &full[..len]).unwrap();
        let state = recover_dir(&dir).unwrap();
        let g = state.durable_generation();
        assert!((3..=6).contains(&g), "cut at {len} landed on gen {g}");
        if reached.insert(g) {
            parity(&dir, g);
        }
    }
    assert_eq!(reached.into_iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    std::fs::write(&wal, &full).unwrap();

    // Byte flips inside node-op frames: the chain stops at or before the
    // damage, and what replays is consistent.
    for (i, step) in (20..full.len()).step_by(3).enumerate() {
        let mut bytes = full.clone();
        bytes[step] ^= 1 << (i % 8);
        std::fs::write(&wal, &bytes).unwrap();
        let state = recover_dir(&dir).unwrap();
        let g = state.durable_generation();
        assert!((3..=6).contains(&g), "flip at {step} landed on gen {g}");
        assert_eq!(g, 3 + state.parts.tail.len() as u64);
    }
    std::fs::write(&wal, &full).unwrap();

    // Byte flips in the grown/tombstoned v2 snapshot: every one is
    // rejected, and recovery stitches the node-op chain from scratch.
    let snap = dir.join("snap-00000000000000000003.bin");
    let clean = std::fs::read(&snap).unwrap();
    for (i, step) in (0..clean.len()).step_by(7).enumerate() {
        let mut bytes = clean.clone();
        bytes[step] ^= 1 << (i % 8);
        std::fs::write(&snap, &bytes).unwrap();
        let state = recover_dir(&dir).unwrap();
        assert_eq!(state.snapshot_generation, 0, "flip at byte {step} accepted");
        assert_eq!(state.durable_generation(), 6);
    }
    // Full revival contract across the fallback path (gens 1..=6 replay
    // from the generation-0 snapshot, node ops and all).
    parity(&dir, 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_snapshot_commits_are_invisible() {
    let dir = fixture("tmpfile");
    // A crash between tmp-write and rename leaves a .tmp file; the scan
    // must ignore it even though it decodes (rename is the commit point).
    let committed = std::fs::read(dir.join("snap-00000000000000000003.bin")).unwrap();
    std::fs::write(dir.join("snap-00000000000000000006.bin.tmp"), &committed).unwrap();
    let state = recover_dir(&dir).unwrap();
    assert_eq!(state.snapshot_generation, 3);
    assert_recovers_to(&dir, 6);
    // open() sweeps the leftover.
    let (store, _) = DurableServingEngine::open(&dir, 1, StoreOptions::default()).unwrap();
    drop(store);
    assert!(!dir.join("snap-00000000000000000006.bin.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
