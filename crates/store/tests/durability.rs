//! End-to-end durability lifecycle: create → ingest → restart → resume,
//! with and without layout permutations, snapshot cadences, and the
//! sharded layouts — every recovered rank vector is checked against a
//! cold solve of the graph at the recovered generation.

use d2pr_core::pagerank::{pagerank, PageRankConfig};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction};
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use d2pr_graph::generators::barabasi_albert;
use d2pr_graph::permute::Layout;
use d2pr_store::durable::{DurableServingEngine, StoreOptions};
use d2pr_store::shard::{DurableShardManager, ShardIngest};
use d2pr_store::StoreError;
use std::path::PathBuf;

const MODEL: TransitionModel = TransitionModel::DegreeDecoupled { p: 0.5 };

fn tight() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-11,
        max_iterations: 2_000,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("d2pr-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_close(a: &[f64], b: &[f64], eps: f64) {
    assert_eq!(a.len(), b.len());
    let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
    assert!(l1 < eps, "L1 divergence {l1:.3e} exceeds {eps:.0e}");
}

/// Deterministic batch stream over an `n`-node graph.
fn batch(n: u32, step: u64) -> EdgeBatch {
    let mut b = EdgeBatch::new();
    let s = step as u32;
    b.insert(s % n, (s * 7 + 1) % n);
    b.insert((s * 3 + 2) % n, (s * 5 + 4) % n);
    b.delete((s + 1) % n, (s * 7 + 8) % n);
    b
}

/// The graph after replaying `upto` batches onto `base` (reference for
/// cold solves at a recovered generation).
fn graph_at(base: &CsrGraph, n: u32, upto: u64) -> CsrGraph {
    let mut dg = DeltaGraph::new(base.clone()).unwrap();
    for g in 1..=upto {
        dg.apply_batch(&batch(n, g)).unwrap();
    }
    dg.into_snapshot()
}

#[test]
fn clean_restart_replays_the_log_tail() {
    let dir = tmpdir("clean");
    let n = 300u32;
    let base = barabasi_albert(n as usize, 3, 11).unwrap();

    let mut served = Vec::new();
    {
        let mut store = DurableServingEngine::create(
            &dir,
            base.clone(),
            MODEL,
            tight(),
            2,
            StoreOptions::default(),
        )
        .unwrap();
        for g in 1..=6 {
            let outcome = store.ingest(&batch(n, g)).unwrap();
            assert_eq!(outcome.generation, g);
        }
        store.reader().snapshot_into(&mut served);
    } // process "dies" without snapshotting — the wal holds gens 1..=6

    let (store, report) = DurableServingEngine::open(&dir, 2, StoreOptions::default()).unwrap();
    assert_eq!(report.snapshot_generation, 0);
    assert_eq!(report.recovered_generation, 6);
    assert_eq!(report.outcome.replayed_batches, 6);
    assert_eq!(store.generation(), 6);

    let mut recovered = Vec::new();
    store.reader().snapshot_into(&mut recovered);
    assert_close(&recovered, &served, 1e-8);
    let cold = pagerank(&graph_at(&base, n, 6), MODEL, &tight());
    assert_close(&recovered, &cold.scores, 1e-8);

    // Replay was compacted into a fresh snapshot: the next open replays
    // nothing and lands on the same state.
    drop(store);
    let (store, report) = DurableServingEngine::open(&dir, 2, StoreOptions::default()).unwrap();
    assert_eq!(report.outcome.replayed_batches, 0);
    assert_eq!(store.generation(), 6);
    let mut again = Vec::new();
    store.reader().snapshot_into(&mut again);
    assert_close(&again, &recovered, 1e-12);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_cadence_rotates_and_retires() {
    let dir = tmpdir("cadence");
    let n = 200u32;
    let base = barabasi_albert(n as usize, 3, 7).unwrap();
    let opts = StoreOptions {
        snapshot_every: 2,
        retain_snapshots: 2,
    };
    let mut store =
        DurableServingEngine::create(&dir, base.clone(), MODEL, tight(), 1, opts).unwrap();
    for g in 1..=7 {
        store.ingest(&batch(n, g)).unwrap();
    }
    // Snapshots landed at 2, 4, 6; retention keeps {4, 6}; wal-4 and
    // wal-6 (holding gens 5..=6 and 7) survive, older wals are retired.
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "snap-00000000000000000004.bin",
            "snap-00000000000000000006.bin",
            "wal-00000000000000000004.log",
            "wal-00000000000000000006.log",
        ]
    );
    drop(store);

    let (store, report) = DurableServingEngine::open(&dir, 1, opts).unwrap();
    assert_eq!(report.snapshot_generation, 6);
    assert_eq!(report.outcome.replayed_batches, 1);
    assert_eq!(store.generation(), 7);
    let mut scores = Vec::new();
    store.reader().snapshot_into(&mut scores);
    let cold = pagerank(&graph_at(&base, n, 7), MODEL, &tight());
    assert_close(&scores, &cold.scores, 1e-8);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn layout_permutation_survives_restart() {
    let dir = tmpdir("layout");
    let n = 300u32;
    let base = barabasi_albert(n as usize, 3, 13).unwrap();
    {
        let mut store = DurableServingEngine::create_with(
            &dir,
            base.clone(),
            Layout::DegreeDescending,
            None,
            MODEL,
            tight(),
            2,
            StoreOptions::default(),
        )
        .unwrap();
        for g in 1..=4 {
            store.ingest(&batch(n, g)).unwrap();
        }
    }
    let (store, report) = DurableServingEngine::open(&dir, 2, StoreOptions::default()).unwrap();
    assert_eq!(report.recovered_generation, 4);
    // Reader ids are external: the recovered scores line up with a cold
    // solve in the caller's original node order.
    let mut scores = Vec::new();
    store.reader().snapshot_into(&mut scores);
    let cold = pagerank(&graph_at(&base, n, 4), MODEL, &tight());
    assert_close(&scores, &cold.scores, 1e-8);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn create_refuses_an_initialized_directory() {
    let dir = tmpdir("reinit");
    let g = barabasi_albert(50, 2, 3).unwrap();
    let _store =
        DurableServingEngine::create(&dir, g.clone(), MODEL, tight(), 1, StoreOptions::default())
            .unwrap();
    match DurableServingEngine::create(&dir, g, MODEL, tight(), 1, StoreOptions::default()) {
        Err(StoreError::AlreadyInitialized { .. }) => {}
        other => panic!("expected AlreadyInitialized, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn validation_failures_leave_log_and_state_untouched() {
    let dir = tmpdir("validate");
    let n = 100u32;
    let g = barabasi_albert(n as usize, 2, 5).unwrap();
    let mut store =
        DurableServingEngine::create(&dir, g, MODEL, tight(), 1, StoreOptions::default()).unwrap();
    store.ingest(&batch(n, 1)).unwrap();

    let mut bad = EdgeBatch::new();
    bad.insert(0, n + 7); // out of range
    assert!(matches!(store.ingest(&bad), Err(StoreError::Update(_))));
    assert_eq!(store.generation(), 1);
    drop(store);

    // Nothing about the rejected batch hit the disk: recovery replays
    // exactly the one good batch.
    let (store, report) = DurableServingEngine::open(&dir, 1, StoreOptions::default()).unwrap();
    assert_eq!(report.outcome.replayed_batches, 1);
    assert_eq!(store.generation(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharded_partial_failure_recovers_per_shard() {
    let root = tmpdir("shards");
    let big = barabasi_albert(120, 3, 17).unwrap();
    let small = barabasi_albert(40, 2, 19).unwrap();
    let tiny = barabasi_albert(30, 2, 23).unwrap();
    let mut shards = DurableShardManager::from_graphs(
        &root,
        vec![big, small, tiny],
        MODEL,
        tight(),
        1,
        StoreOptions::default(),
    )
    .unwrap();

    // Valid everywhere: all three apply and advance.
    let mut ok = EdgeBatch::new();
    ok.insert(0, 29);
    let report = shards.ingest_all(&ok);
    assert!(report.is_complete());
    assert_eq!(report.applied(), 3);

    // Valid on shard 0 only: shard 1 fails validation, shard 2 is never
    // touched — the documented partial-not-atomic contract.
    let mut partial = EdgeBatch::new();
    partial.insert(1, 90);
    let report = shards.ingest_all(&partial);
    assert!(!report.is_complete());
    assert_eq!(report.applied(), 1);
    let (failed_at, err) = report.first_failure().unwrap();
    assert_eq!(failed_at, 1);
    assert!(matches!(err, StoreError::Update(_)));
    assert!(matches!(report.outcomes[2], ShardIngest::Skipped));
    assert_eq!(shards.shard(0).generation(), 2);
    assert_eq!(shards.shard(1).generation(), 1);
    assert_eq!(shards.shard(2).generation(), 1);
    drop(shards);

    // Each shard recovers to its own durable generation.
    let (shards, reports) = DurableShardManager::open(&root, 1, StoreOptions::default()).unwrap();
    assert_eq!(reports.len(), 3);
    assert_eq!(
        reports
            .iter()
            .map(|r| r.recovered_generation)
            .collect::<Vec<_>>(),
        vec![2, 1, 1]
    );
    assert_eq!(shards.num_shards(), 3);
    std::fs::remove_dir_all(&root).unwrap();
}

/// A deterministic weighted digraph (out-degree 3, varied weights).
fn weighted_base(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::new(Direction::Directed, n as usize);
    for s in 0..n {
        for k in 1..=3u32 {
            let t = (s * 7 + k * 13 + 1) % n;
            if t != s {
                b.add_weighted_edge(s, t, 0.5 + ((s + k) % 5) as f64);
            }
        }
    }
    b.build().unwrap()
}

/// Weighted edits plus node churn: growth at generation 2, a tombstone
/// at generation 4, re-weights throughout.
fn churn_batches(n: u32) -> Vec<EdgeBatch> {
    let mut g1 = EdgeBatch::new();
    g1.insert_weighted(1, 40, 2.5);
    g1.set_weight(0, 14, 9.0);
    g1.delete(2, 28);
    let mut g2 = EdgeBatch::new();
    g2.add_nodes(1);
    g2.insert_weighted(n, 7, 2.0);
    g2.insert_weighted(3, n, 1.25);
    let mut g3 = EdgeBatch::new();
    g3.insert_weighted(n, 12, 0.5);
    g3.delete(3, n);
    let mut g4 = EdgeBatch::new();
    g4.remove_node(5);
    let mut g5 = EdgeBatch::new();
    g5.insert_weighted(6, 17, 3.5);
    g5.delete(0, 14);
    let mut g6 = EdgeBatch::new();
    g6.set_weight(1, 40, 0.75);
    vec![g1, g2, g3, g4, g5, g6]
}

#[test]
fn weighted_node_churn_survives_crash_and_compaction() {
    let dir = tmpdir("churn");
    let n = 60u32;
    let base = weighted_base(n);
    let model = TransitionModel::Blended { p: 0.5, beta: 0.5 };
    let batches = churn_batches(n);

    let mut served = Vec::new();
    {
        let mut store = DurableServingEngine::create(
            &dir,
            base.clone(),
            model,
            tight(),
            1,
            StoreOptions::default(),
        )
        .unwrap();
        for (i, b) in batches.iter().enumerate() {
            let outcome = store.ingest(b).unwrap();
            assert_eq!(outcome.generation, i as u64 + 1);
        }
        assert_eq!(store.engine().removed_nodes(), vec![5]);
        assert_eq!(store.engine().live_nodes(), n as usize);
        store.reader().snapshot_into(&mut served);
        assert_eq!(served.len(), n as usize + 1);
        assert_eq!(served[5], 0.0, "tombstoned node serves score 0");
    } // dies before any snapshot: the wal holds all six generations

    // Crash recovery replays the weighted/node-churn tail bit-faithfully.
    let (store, report) = DurableServingEngine::open(&dir, 1, StoreOptions::default()).unwrap();
    assert_eq!(report.snapshot_generation, 0);
    assert_eq!(report.outcome.replayed_batches, 6);
    assert_eq!(store.engine().removed_nodes(), vec![5]);
    let mut recovered = Vec::new();
    store.reader().snapshot_into(&mut recovered);
    assert_close(&recovered, &served, 1e-7);

    // And matches a cold solve of the evolved graph on every live node.
    let mut dg = DeltaGraph::new(base).unwrap();
    for b in &batches {
        dg.apply_batch(b).unwrap();
    }
    let mut cold = pagerank(&dg.into_snapshot(), model, &tight()).scores;
    cold[5] = 0.0;
    assert_close(&recovered, &cold, 1e-7);

    // The replay was compacted into a v2 snapshot: the next open replays
    // nothing, and the tombstone set comes back from the snapshot alone.
    drop(store);
    let (store, report) = DurableServingEngine::open(&dir, 1, StoreOptions::default()).unwrap();
    assert_eq!(report.outcome.replayed_batches, 0);
    assert_eq!(store.engine().removed_nodes(), vec![5]);
    let mut again = Vec::new();
    store.reader().snapshot_into(&mut again);
    assert_eq!(again[5], 0.0);
    assert_close(&again, &recovered, 1e-9);

    // A later arc incident to the tombstone revives it durably.
    let mut store = store;
    let mut revive = EdgeBatch::new();
    revive.insert_weighted(5, 9, 1.5);
    store.ingest(&revive).unwrap();
    assert!(store.engine().removed_nodes().is_empty());
    assert!(store.reader().get(5).unwrap() > 0.0);
    drop(store);
    let (store, _) = DurableServingEngine::open(&dir, 1, StoreOptions::default()).unwrap();
    assert!(store.engine().removed_nodes().is_empty());
    assert!(store.reader().get(5).unwrap() > 0.0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn personalized_shards_share_one_patch_per_group() {
    let root = tmpdir("pshards");
    let n = 150u32;
    let g = barabasi_albert(n as usize, 3, 29).unwrap();
    let uniform = 1.0 / n as f64;
    let mut t0 = vec![uniform; n as usize];
    t0[0] = 0.5;
    let teleports = vec![vec![uniform; n as usize], t0];
    let mut shards = DurableShardManager::personalized(
        &root,
        &g,
        &teleports,
        MODEL,
        tight(),
        1,
        StoreOptions::default(),
    )
    .unwrap();
    // Construction shares one transpose; a group ingest keeps it shared.
    let s0 = shards.shard(0).shared_structure().unwrap();
    assert!(std::sync::Arc::ptr_eq(
        &s0,
        &shards.shard(1).shared_structure().unwrap()
    ));
    let report = shards.ingest_all(&batch(n, 1));
    assert!(report.is_complete());
    let s0 = shards.shard(0).shared_structure().unwrap();
    assert!(std::sync::Arc::ptr_eq(
        &s0,
        &shards.shard(1).shared_structure().unwrap()
    ));
    drop(shards);

    let (shards, reports) = DurableShardManager::open(&root, 1, StoreOptions::default()).unwrap();
    assert!(reports.iter().all(|r| r.recovered_generation == 1));
    // Per-view teleports survived: the personalized view still favors
    // node 0 over the uniform view.
    let r_uniform = shards.reader(0);
    let r_biased = shards.reader(1);
    assert!(r_biased.get(0).unwrap() > r_uniform.get(0).unwrap());
    std::fs::remove_dir_all(&root).unwrap();
}
