//! Property tests for the log encoding: arbitrary record streams
//! (unweighted and weighted arcs, tombstones, node growth and removal,
//! empty batches) round-trip through the framed segment format, and
//! truncating the file at *any* byte yields exactly the records whose
//! frames fit — never an error, never a panic, never a partially-decoded
//! record.

use d2pr_store::codec::LogRecord;
use d2pr_store::log::{scan_log, LogWriter, ScanStop};
use proptest::prelude::*;

/// One record's raw content: inserts, whether they carry weights,
/// deletes, appended nodes, tombstoned nodes.
type RawRecord = (Vec<(u32, u32)>, bool, Vec<(u32, u32)>, u32, Vec<u32>);

fn arb_arcs(max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..500, 0u32..500), 0..=max)
}

/// Empty batches (every channel empty) are a legal, loggable case.
fn arb_record() -> impl Strategy<Value = RawRecord> {
    (
        arb_arcs(12),
        any::<bool>(),
        arb_arcs(12),
        0u32..4,
        proptest::collection::vec(0u32..500, 0..=3),
    )
}

fn arb_records() -> impl Strategy<Value = Vec<RawRecord>> {
    proptest::collection::vec(arb_record(), 1..=8)
}

fn materialize(base: u64, raw: &[RawRecord]) -> Vec<LogRecord> {
    raw.iter()
        .enumerate()
        .map(|(i, (inserts, weighted, deletes, new_nodes, removed))| LogRecord {
            generation: base + 1 + i as u64,
            weights: weighted.then(|| (0..inserts.len()).map(|k| k as f64 * 0.5 + 0.25).collect()),
            inserts: inserts.clone(),
            deletes: deletes.clone(),
            new_nodes: *new_nodes,
            removed_nodes: removed.clone(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Append → scan is the identity on any record stream, and the byte
    /// lengths after each append are exactly the truncation points where
    /// one more record becomes durable.
    #[test]
    fn appended_records_scan_back_verbatim(
        raw in arb_records(),
        case in 0u64..u64::MAX,
    ) {
        let base = 7u64;
        let records = materialize(base, &raw);
        // LogWriter names its own file; write into a fresh subdir so
        // concurrent cases never collide.
        let dir = std::env::temp_dir().join(format!("d2pr-logprops-{}", std::process::id()));
        let subdir = dir.join(format!("verbatim-{case}"));
        let _ = std::fs::remove_dir_all(&subdir);
        std::fs::create_dir_all(&subdir).unwrap();
        let mut lengths = Vec::new();
        let wal = {
            let mut w = LogWriter::create(&subdir, base, 0).unwrap();
            for r in &records {
                w.append(r).unwrap();
                lengths.push(std::fs::metadata(w.path()).unwrap().len());
            }
            w.path().to_path_buf()
        };
        let scan = scan_log(&wal).unwrap();
        prop_assert!(matches!(scan.stop, ScanStop::Clean));
        prop_assert_eq!(&scan.records, &records);
        prop_assert_eq!(scan.valid_bytes, *lengths.last().unwrap());
        // Monotone, strictly growing frame boundaries.
        prop_assert!(lengths.windows(2).all(|w| w[0] < w[1]));
        std::fs::remove_dir_all(&subdir).unwrap();
    }

    /// Truncating the segment at an arbitrary byte never errors and
    /// yields exactly the frames that fit: records whose frame boundary
    /// is ≤ the cut survive verbatim, everything after is gone, and the
    /// stop reason is Clean only at a frame boundary.
    #[test]
    fn truncation_at_any_byte_yields_the_exact_frame_prefix(
        raw in arb_records(),
        cut_seed in 0u64..u64::MAX,
        case in 0u64..u64::MAX,
    ) {
        let base = 7u64;
        let records = materialize(base, &raw);
        let dir = std::env::temp_dir().join(format!("d2pr-logprops-{}", std::process::id()));
        let subdir = dir.join(format!("cut-{case}"));
        let _ = std::fs::remove_dir_all(&subdir);
        std::fs::create_dir_all(&subdir).unwrap();
        let mut boundaries = vec![20u64]; // segment header
        let wal = {
            let mut w = LogWriter::create(&subdir, base, 0).unwrap();
            for r in &records {
                w.append(r).unwrap();
                boundaries.push(std::fs::metadata(w.path()).unwrap().len());
            }
            w.path().to_path_buf()
        };
        let full = std::fs::read(&wal).unwrap();
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
        std::fs::write(&wal, &full[..cut]).unwrap();

        let scan = scan_log(&wal).unwrap();
        let expect = boundaries.iter().filter(|&&b| b > 20 && b <= cut as u64).count();
        prop_assert_eq!(scan.records.len(), expect);
        prop_assert_eq!(&scan.records[..], &records[..expect]);
        if cut < 20 {
            // Inside the segment header: nothing is durable yet.
            prop_assert!(matches!(scan.stop, ScanStop::Torn { .. }));
        } else if boundaries.contains(&(cut as u64)) {
            prop_assert!(matches!(scan.stop, ScanStop::Clean));
        } else {
            prop_assert!(matches!(scan.stop, ScanStop::Torn { .. }));
        }
        std::fs::remove_dir_all(&subdir).unwrap();
    }
}
