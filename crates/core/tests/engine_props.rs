//! Property tests for the fused pull-engine: for *any* graph, model,
//! dangling policy, teleport vector, and thread count, the engine must
//! match the serial reference solver to 1e-8 — and its arc-balanced
//! partitions must cover every node exactly once.

use d2pr_core::engine::Engine;
use d2pr_core::pagerank::{pagerank_with_matrix, DanglingPolicy, PageRankConfig};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction};
use d2pr_graph::transpose::CscStructure;
use proptest::prelude::*;

fn arb_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 1..=max_edges),
            )
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(Direction::Directed, n as usize);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build().expect("in-range edges")
        })
}

fn arb_weighted_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, 0.01f64..20.0), 1..=max_edges),
            )
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(Direction::Directed, n as usize);
            for (u, v, w) in edges {
                b.add_weighted_edge(u, v, w);
            }
            b.build().expect("in-range edges")
        })
}

fn policy_from(ix: u8) -> DanglingPolicy {
    match ix % 3 {
        0 => DanglingPolicy::RedistributeTeleport,
        1 => DanglingPolicy::SelfLoop,
        _ => DanglingPolicy::Renormalize,
    }
}

fn assert_engine_matches_serial(
    g: &CsrGraph,
    model: TransitionModel,
    config: &PageRankConfig,
    teleport: Option<&[f64]>,
    threads: usize,
) -> Result<(), TestCaseError> {
    let matrix = TransitionMatrix::build(g, model);
    let serial = pagerank_with_matrix(g, &matrix, config, teleport);
    let mut engine = Engine::with_threads(g, threads)
        .with_config(*config)
        .expect("validated config");
    engine.set_model(model).expect("validated model");
    let r = engine
        .solve_with_teleport(teleport)
        .expect("validated inputs");
    prop_assert!(
        serial.converged == r.converged,
        "convergence flags must agree"
    );
    for (i, (a, b)) in serial.scores.iter().zip(&r.scores).enumerate() {
        prop_assert!(
            (a - b).abs() < 1e-8,
            "node {i}: serial {a} vs engine {b} (threads {threads})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Engine == serial across all dangling policies and 1–16 threads
    /// (unweighted graphs, Standard + DegreeDecoupled models).
    #[test]
    fn engine_matches_serial_unweighted(
        g in arb_graph(40, 160),
        p in -3.0f64..3.0,
        policy_ix in 0u8..3,
        threads in 1usize..=16,
        standard in any::<bool>(),
    ) {
        let model = if standard {
            TransitionModel::Standard
        } else {
            TransitionModel::DegreeDecoupled { p }
        };
        let config = PageRankConfig { dangling: policy_from(policy_ix), ..Default::default() };
        assert_engine_matches_serial(&g, model, &config, None, threads)?;
    }

    /// Engine == serial on weighted graphs under the Blended model.
    #[test]
    fn engine_matches_serial_blended(
        g in arb_weighted_graph(30, 120),
        p in -2.0f64..2.0,
        beta in 0.0f64..=1.0,
        policy_ix in 0u8..3,
        threads in 1usize..=16,
    ) {
        let model = TransitionModel::Blended { p, beta };
        let config = PageRankConfig { dangling: policy_from(policy_ix), ..Default::default() };
        assert_engine_matches_serial(&g, model, &config, None, threads)?;
    }

    /// Engine == serial with personalized (possibly sparse, unnormalized)
    /// teleport vectors.
    #[test]
    fn engine_matches_serial_personalized(
        g in arb_graph(30, 120),
        p in -2.0f64..2.0,
        threads in 1usize..=16,
        seed_weights in proptest::collection::vec(0.0f64..5.0, 1..8),
    ) {
        let n = g.num_nodes();
        let mut teleport = vec![0.0; n];
        // Scatter the drawn weights over deterministic positions.
        for (i, &w) in seed_weights.iter().enumerate() {
            teleport[(i * 7 + 3) % n] += w;
        }
        prop_assume!(teleport.iter().sum::<f64>() > 0.0);
        let model = TransitionModel::DegreeDecoupled { p };
        let config = PageRankConfig::default();
        assert_engine_matches_serial(&g, model, &config, Some(&teleport), threads)?;
    }

    /// Engine sweeps (cold and warm) hit the same fixed points as
    /// independent solves.
    #[test]
    fn engine_sweep_matches_pointwise(
        g in arb_graph(30, 120),
        warm in any::<bool>(),
        threads in 1usize..=8,
    ) {
        let ps = [-1.5, 0.0, 1.5];
        let models: Vec<TransitionModel> =
            ps.iter().map(|&p| TransitionModel::DegreeDecoupled { p }).collect();
        let mut engine = Engine::with_threads(&g, threads);
        let results = engine.sweep(&models, warm).expect("valid sweep");
        prop_assert_eq!(results.len(), models.len());
        for (&model, r) in models.iter().zip(&results) {
            let matrix = TransitionMatrix::build(&g, model);
            let serial = pagerank_with_matrix(&g, &matrix, &PageRankConfig::default(), None);
            for (a, b) in serial.scores.iter().zip(&r.scores) {
                prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
            }
        }
    }

    /// Arc-balanced partitions are a partition in the mathematical sense:
    /// disjoint, consecutive, covering every node exactly once — for any
    /// graph and any requested width.
    #[test]
    fn arc_balanced_partition_covers_exactly_once(
        g in arb_graph(60, 240),
        parts in 1usize..=40,
    ) {
        let csc = CscStructure::build(&g);
        let ranges = csc.arc_balanced_partition(parts);
        prop_assert!(ranges.len() <= parts);
        let mut covered = vec![0u32; g.num_nodes()];
        let mut cursor = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor, "ranges must be consecutive");
            prop_assert!(r.start < r.end, "ranges must be non-empty");
            for v in r.clone() {
                covered[v] += 1;
            }
            cursor = r.end;
        }
        prop_assert_eq!(cursor, g.num_nodes(), "partition must end at n");
        prop_assert!(covered.iter().all(|&c| c == 1), "every node exactly once");
    }
}
