//! Property-based tests for the D2PR core.

use d2pr_core::kernel::DegreeKernel;
use d2pr_core::pagerank::{pagerank, pagerank_with_matrix, DanglingPolicy, PageRankConfig};
use d2pr_core::robust::{robust_personalized_pagerank, SeedAggregation};
use d2pr_core::transition::{TransitionMatrix, TransitionModel};
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction};
use proptest::prelude::*;

fn arb_graph(n: u32, max_edges: usize, directed: bool) -> impl Strategy<Value = CsrGraph> {
    let dir = if directed {
        Direction::Directed
    } else {
        Direction::Undirected
    };
    proptest::collection::vec((0..n, 0..n), 1..=max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(dir, n as usize);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build().expect("in-range edges")
    })
}

fn arb_weighted_graph(n: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    proptest::collection::vec((0..n, 0..n, 0.01f64..50.0), 1..=max_edges).prop_map(move |edges| {
        let mut b = GraphBuilder::new(Direction::Directed, n as usize);
        for (u, v, w) in edges {
            b.add_weighted_edge(u, v, w);
        }
        b.build().expect("in-range edges")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Kernel outputs are a probability distribution for any inputs.
    #[test]
    fn kernel_is_distribution(
        degs in proptest::collection::vec(0.0f64..1e7, 1..64),
        p in -50.0f64..50.0,
    ) {
        let probs = DegreeKernel::new(p).normalize(&degs);
        prop_assert_eq!(probs.len(), degs.len());
        prop_assert!(probs.iter().all(|&x| x.is_finite() && x >= 0.0));
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    /// Kernel monotonicity: for p > 0, a smaller degree never receives a
    /// smaller probability than a larger degree (and vice versa for p < 0).
    #[test]
    fn kernel_monotone_in_degree(
        degs in proptest::collection::vec(1.0f64..1e4, 2..32),
        p in 0.01f64..20.0,
    ) {
        let pen = DegreeKernel::new(p).normalize(&degs);
        let boost = DegreeKernel::new(-p).normalize(&degs);
        for i in 0..degs.len() {
            for j in 0..degs.len() {
                if degs[i] < degs[j] {
                    prop_assert!(pen[i] >= pen[j] - 1e-12);
                    prop_assert!(boost[i] <= boost[j] + 1e-12);
                }
            }
        }
    }

    /// Every dangling policy conserves probability mass.
    #[test]
    fn dangling_policies_conserve_mass(
        g in arb_graph(24, 70, true),
        p in -3.0f64..3.0,
    ) {
        for dangling in [
            DanglingPolicy::RedistributeTeleport,
            DanglingPolicy::SelfLoop,
            DanglingPolicy::Renormalize,
        ] {
            let cfg = PageRankConfig { dangling, ..Default::default() };
            let r = pagerank(&g, TransitionModel::DegreeDecoupled { p }, &cfg);
            let sum: f64 = r.scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "{dangling:?}: {sum}");
        }
    }

    /// α = 0 returns exactly the teleport vector, regardless of structure.
    #[test]
    fn alpha_zero_is_teleport(g in arb_graph(16, 50, false), p in -2.0f64..2.0) {
        let cfg = PageRankConfig { alpha: 0.0, ..Default::default() };
        let r = pagerank(&g, TransitionModel::DegreeDecoupled { p }, &cfg);
        let u = 1.0 / g.num_nodes() as f64;
        for &s in &r.scores {
            prop_assert!((s - u).abs() < 1e-12);
        }
    }

    /// Blended transitions interpolate linearly in β.
    #[test]
    fn blend_linearity(g in arb_weighted_graph(14, 50), p in -2.0f64..2.0, beta in 0.0f64..=1.0) {
        let full = TransitionMatrix::build(&g, TransitionModel::Blended { p, beta });
        let conn = TransitionMatrix::build(&g, TransitionModel::Blended { p, beta: 1.0 });
        let dec = TransitionMatrix::build(&g, TransitionModel::Blended { p, beta: 0.0 });
        for i in 0..full.arc_probs().len() {
            let mix = beta * conn.arc_probs()[i] + (1.0 - beta) * dec.arc_probs()[i];
            prop_assert!((full.arc_probs()[i] - mix).abs() < 1e-12);
        }
    }

    /// On unweighted graphs, DegreeDecoupled{p} equals Blended{p, β} for all
    /// β (there is no connection-strength signal to blend).
    #[test]
    fn unweighted_blend_collapses(g in arb_graph(14, 50, false), p in -2.0f64..2.0) {
        let a = TransitionMatrix::build(&g, TransitionModel::DegreeDecoupled { p });
        // β affects only the weighted T_conn component; on unweighted graphs
        // T_conn is uniform — equal to the p=0 kernel, not to T_D. So only
        // β = 0 must collapse:
        let b = TransitionMatrix::build(&g, TransitionModel::Blended { p, beta: 0.0 });
        for (x, y) in a.arc_probs().iter().zip(b.arc_probs()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// Seeded PPR assigns its maximum score within the seed set when seeds
    /// are dangling-free and alpha is moderate — weaker invariant: every
    /// seed scores above the uniform baseline.
    #[test]
    fn ppr_seeds_above_uniform(g in arb_graph(20, 80, false), seed in 0u32..20) {
        let matrix = TransitionMatrix::build(&g, TransitionModel::Standard);
        let mut t = vec![0.0; g.num_nodes()];
        t[seed as usize] = 1.0;
        let cfg = PageRankConfig::default();
        let r = pagerank_with_matrix(&g, &matrix, &cfg, Some(&t));
        let uniform = 1.0 / g.num_nodes() as f64;
        prop_assert!(
            r.scores[seed as usize] >= uniform,
            "seed score {} below uniform {uniform}",
            r.scores[seed as usize]
        );
    }

    /// Robust aggregation yields a distribution and mean-aggregation equals
    /// classic multi-seed PPR for any graph.
    #[test]
    fn robust_ppr_invariants(g in arb_graph(18, 60, false), s1 in 0u32..18, s2 in 0u32..18) {
        let cfg = PageRankConfig::default();
        for agg in [SeedAggregation::Mean, SeedAggregation::Median] {
            let r = robust_personalized_pagerank(
                &g,
                TransitionModel::Standard,
                &[s1, s2],
                &cfg,
                agg,
            );
            let sum: f64 = r.scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "{agg:?}: {sum}");
            prop_assert_eq!(r.per_seed.len(), 2);
        }
    }

    /// More iterations never increase the final residual (monotone
    /// convergence of the contraction).
    #[test]
    fn residual_shrinks_with_iterations(g in arb_graph(20, 80, false)) {
        let mk = |iters: usize| PageRankConfig {
            max_iterations: iters,
            tolerance: 1e-300,
            ..Default::default()
        };
        let short = pagerank(&g, TransitionModel::Standard, &mk(3));
        let long = pagerank(&g, TransitionModel::Standard, &mk(30));
        prop_assert!(long.residual <= short.residual + 1e-12);
    }
}
