//! Property tests for cache-aware layouts: solving on a permuted graph
//! must be observationally identical to solving on the original — for
//! *any* graph, layout, dangling policy, and teleport vector, and across
//! an evolving-graph churn sequence served through [`ServingEngine`]
//! (reader-visible ids never change meaning between generations).

use d2pr_core::engine::Engine;
use d2pr_core::pagerank::{DanglingPolicy, PageRankConfig};
use d2pr_core::serving::ServingEngine;
use d2pr_core::transition::TransitionModel;
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction};
use d2pr_graph::delta::EdgeBatch;
use d2pr_graph::permute::Layout;
use d2pr_graph::transpose::CscStructure;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n), 1..=max_edges),
            )
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(Direction::Directed, n as usize);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            b.build().expect("in-range edges")
        })
}

fn policy_from(ix: u8) -> DanglingPolicy {
    match ix % 3 {
        0 => DanglingPolicy::RedistributeTeleport,
        1 => DanglingPolicy::SelfLoop,
        _ => DanglingPolicy::Renormalize,
    }
}

fn layout_from(ix: u8) -> Layout {
    Layout::ALL[ix as usize % Layout::ALL.len()]
}

fn tight() -> PageRankConfig {
    PageRankConfig {
        tolerance: 1e-11,
        max_iterations: 2_000,
        ..Default::default()
    }
}

/// Solve `g` under `layout` and return the scores in **external** order.
fn solve_with_layout(
    g: &CsrGraph,
    layout: Layout,
    config: &PageRankConfig,
    model: TransitionModel,
    teleport: Option<&[f64]>,
    threads: usize,
) -> Vec<f64> {
    let (internal, csc) = CscStructure::with_layout(g, layout).expect("valid graph");
    let perm = csc.permutation().cloned();
    let internal_teleport = teleport.map(|t| match &perm {
        Some(p) => {
            let mut buf = Vec::new();
            p.permute_values(t, &mut buf);
            buf
        }
        None => t.to_vec(),
    });
    let mut engine = Engine::with_structure(&internal, Arc::new(csc), threads)
        .expect("structure matches graph")
        .with_config(*config)
        .expect("validated config");
    engine.set_model(model).expect("validated model");
    let r = engine
        .solve_with_teleport(internal_teleport.as_deref())
        .expect("validated inputs");
    assert!(r.converged, "tight config must converge");
    match &perm {
        Some(p) => {
            let mut ext = Vec::new();
            p.unpermute_values(&r.scores, &mut ext);
            ext
        }
        None => r.scores,
    }
}

/// First `(u, v)` pair (u != v) absent from `g`, scanning from `from`.
fn first_non_arc(g: &CsrGraph, from: u32) -> Option<(u32, u32)> {
    let n = g.num_nodes() as u32;
    for du in 0..n {
        let u = (from + du) % n;
        for dv in 1..n {
            let v = (u + dv) % n;
            if !g.has_arc(u, v) {
                return Some((u, v));
            }
        }
    }
    None
}

/// First arc `(u, v)` of `g`, scanning sources from `from`.
fn first_arc(g: &CsrGraph, from: u32) -> Option<(u32, u32)> {
    let n = g.num_nodes() as u32;
    for du in 0..n {
        let u = (from + du) % n;
        if let Some(&v) = g.neighbors(u).first() {
            return Some((u, v));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Permuted == identity to 1e-8 per node, across every layout, every
    /// dangling policy, and 1–8 threads.
    #[test]
    fn permuted_solve_matches_identity_all_policies(
        g in arb_graph(40, 160),
        p in -3.0f64..3.0,
        policy_ix in 0u8..3,
        layout_ix in 0u8..3,
        threads in 1usize..=8,
    ) {
        let model = TransitionModel::DegreeDecoupled { p };
        let config = PageRankConfig { dangling: policy_from(policy_ix), ..tight() };
        let identity = solve_with_layout(&g, Layout::Baseline, &config, model, None, threads);
        let permuted = solve_with_layout(&g, layout_from(layout_ix), &config, model, None, threads);
        for (i, (a, b)) in identity.iter().zip(&permuted).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-8,
                "node {i}: identity {a} vs permuted {b}"
            );
        }
    }

    /// Permuted == identity with personalized (sparse, unnormalized)
    /// teleport vectors — the teleport crosses the layout boundary too.
    #[test]
    fn permuted_solve_matches_identity_personalized(
        g in arb_graph(30, 120),
        p in -2.0f64..2.0,
        layout_ix in 0u8..3,
        threads in 1usize..=8,
        seed_weights in proptest::collection::vec(0.0f64..5.0, 1..8),
    ) {
        let n = g.num_nodes();
        let mut teleport = vec![0.0; n];
        for (i, &w) in seed_weights.iter().enumerate() {
            teleport[(i * 7 + 3) % n] += w;
        }
        prop_assume!(teleport.iter().sum::<f64>() > 0.0);
        let model = TransitionModel::DegreeDecoupled { p };
        let config = tight();
        let identity =
            solve_with_layout(&g, Layout::Baseline, &config, model, Some(&teleport), threads);
        let permuted = solve_with_layout(
            &g, layout_from(layout_ix), &config, model, Some(&teleport), threads,
        );
        for (i, (a, b)) in identity.iter().zip(&permuted).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-8,
                "node {i}: identity {a} vs permuted {b}"
            );
        }
    }

    /// A churn sequence ingested by a layouted [`ServingEngine`] publishes
    /// the same scores, under the same external node ids, as the baseline
    /// engine fed the identical batches — across every generation.
    #[test]
    fn serving_churn_keeps_reader_ids_stable_across_generations(
        g in arb_graph(25, 100),
        p in -2.0f64..2.0,
        layout_ix in 1u8..3, // degree / rcm: the layouts with a real permutation
        rounds in 1usize..=3,
    ) {
        let model = TransitionModel::DegreeDecoupled { p };
        let mut baseline =
            ServingEngine::new(g.clone(), model, tight(), 1).expect("unweighted graph");
        let mut layouted = ServingEngine::with_layout(
            g.clone(), layout_from(layout_ix), None, model, tight(), 1,
        ).expect("unweighted graph");
        prop_assert!(layouted.permutation().is_some(), "non-baseline layouts permute");

        let reader = layouted.reader();
        let (mut snap_base, mut snap_layout) = (Vec::new(), Vec::new());
        // Generation 0: the cold publications already agree id-by-id.
        baseline.reader().snapshot_into(&mut snap_base);
        reader.snapshot_into(&mut snap_layout);
        for (i, (a, b)) in snap_base.iter().zip(&snap_layout).enumerate() {
            prop_assert!((a - b).abs() < 1e-8, "gen 0 node {i}: {a} vs {b}");
        }

        // Track the evolving graph in EXTERNAL order to pick valid churn.
        let mut external = g;
        for round in 0..rounds {
            let mut batch = EdgeBatch::new();
            if let Some((u, v)) = first_non_arc(&external, round as u32) {
                batch.insert(u, v);
            }
            if let Some((u, v)) = first_arc(&external, (round as u32) * 3 + 1) {
                batch.delete(u, v);
            }
            prop_assume!(!(batch.inserts.is_empty() && batch.deletes.is_empty()));

            let out_base = baseline.ingest(&batch).expect("valid external batch");
            let out_layout = layouted.ingest(&batch).expect("batch translates at boundary");
            prop_assert_eq!(out_base.generation, out_layout.generation);
            prop_assert_eq!(out_base.generation, reader.generation());

            baseline.reader().snapshot_into(&mut snap_base);
            reader.snapshot_into(&mut snap_layout);
            for (i, (a, b)) in snap_base.iter().zip(&snap_layout).enumerate() {
                prop_assert!(
                    (a - b).abs() < 1e-8,
                    "gen {} node {i}: baseline {a} vs layouted {b}",
                    out_base.generation
                );
            }
            // Point reads agree under the caller's ids too.
            for v in [0u32, (external.num_nodes() / 2) as u32] {
                let (a, b) = (baseline.get(v).unwrap(), reader.get(v).unwrap());
                prop_assert!((a - b).abs() < 1e-8, "get({v}): {a} vs {b}");
            }

            // Mirror the batch onto the external-order tracker.
            let mut dg = d2pr_graph::delta::DeltaGraph::new(external).expect("unweighted");
            dg.apply_batch(&batch).expect("valid batch");
            external = dg.snapshot();
        }
    }
}
