//! Property tests for the weighted, fully-mutable incremental path: for
//! *any* weighted base graph and *any* supported batch stream — weighted
//! inserts, re-weights, deletes, node arrivals, node tombstones — the
//! strategy-selected refresh ([`Engine::resolve_incremental`]) must land
//! on the same fixed point as a cold solve of the post-batch graph, for
//! every blend weight β ∈ {0, ½, 1}, every dangling policy, and
//! personalized teleports. Plus the serving acceptance check: a
//! single-edge re-weight at the 1e-6 serving tolerance takes the
//! localized path and still matches a tight cold solve to ≤ 1e-7 L1.

use d2pr_core::engine::{Engine, ResolveMode};
use d2pr_core::pagerank::{DanglingPolicy, PageRankConfig};
use d2pr_core::transition::TransitionModel;
use d2pr_graph::builder::GraphBuilder;
use d2pr_graph::csr::{CsrGraph, Direction};
use d2pr_graph::delta::{DeltaGraph, EdgeBatch};
use proptest::prelude::*;

/// `(kind, u, v, w)` raw material for one queued edit; `build_batches`
/// maps it onto the evolving id space.
type RawOp = (u8, u32, u32, f64);

fn arb_weighted_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = CsrGraph> {
    (4..=max_nodes, any::<bool>())
        .prop_flat_map(move |(n, directed)| {
            (
                Just(n),
                Just(directed),
                proptest::collection::vec((0..n, 0..n, 0.05f64..10.0), 2..=max_edges),
            )
        })
        .prop_map(|(n, directed, edges)| {
            let dir = if directed {
                Direction::Directed
            } else {
                Direction::Undirected
            };
            let mut b = GraphBuilder::new(dir, n as usize);
            for (u, v, w) in edges {
                b.add_weighted_edge(u, v, w);
            }
            b.build().expect("in-range edges")
        })
}

fn arb_ops(batches: usize, ops: usize) -> impl Strategy<Value = Vec<Vec<RawOp>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..5, any::<u32>(), any::<u32>(), 0.05f64..8.0), 1..=ops),
        1..=batches,
    )
}

fn policy_from(ix: u8) -> DanglingPolicy {
    match ix % 3 {
        0 => DanglingPolicy::RedistributeTeleport,
        1 => DanglingPolicy::SelfLoop,
        _ => DanglingPolicy::Renormalize,
    }
}

/// Map raw op material onto concrete batches against the evolving id
/// space (`mirror` tracks it), exercising every mutation channel:
/// weighted insert, re-weight, delete, arrival wired to a survivor,
/// tombstone. Every batch this produces is valid by construction — ids
/// stay in range and weights are finite — so `apply_batch` must accept
/// it (the `GraphError::WeightMismatch` arm is unreachable from a
/// weighted base).
fn build_batches(raw: &[Vec<RawOp>], mirror: &mut DeltaGraph) -> Vec<EdgeBatch> {
    let mut out = Vec::with_capacity(raw.len());
    for ops in raw {
        let mut b = EdgeBatch::new();
        let mut grown = 0u32;
        for &(kind, u, v, w) in ops {
            let n = mirror.num_nodes() as u32 + grown;
            let (u, v) = (u % n, v % n);
            match kind {
                0 => {
                    b.insert_weighted(u, v, w);
                }
                1 => {
                    b.set_weight(u, v, 0.5 + w);
                }
                2 => {
                    b.delete(u, v);
                }
                3 => {
                    b.add_nodes(1);
                    b.insert_weighted(n, u, w);
                    grown += 1;
                }
                _ => {
                    b.remove_node(u);
                }
            }
        }
        mirror.apply_batch(&b).expect("supported edits validate");
        out.push(b);
    }
    out
}

/// Drive `batches` through the incremental pipeline (patched transpose,
/// warm start, auto-selected refresh) and compare every generation
/// against a cold solve of the same engine.
fn assert_incremental_matches_cold(
    base: CsrGraph,
    batches: &[EdgeBatch],
    model: TransitionModel,
    config: PageRankConfig,
    teleport: Option<Vec<f64>>,
) -> Result<(), TestCaseError> {
    let mut snapshot = base.clone();
    let mut dg = DeltaGraph::new(base).expect("weighted base");
    let mut teleport = teleport;
    let (mut prev, mut state);
    {
        let mut engine = Engine::with_threads(&snapshot, 1)
            .with_config(config)
            .expect("validated config");
        engine.set_model(model).expect("validated model");
        prev = engine
            .solve_with_teleport(teleport.as_deref())
            .expect("cold base solve")
            .scores;
        state = engine.into_state();
    }
    for (i, batch) in batches.iter().enumerate() {
        let outcome = dg.apply_batch(batch).expect("pre-validated batch");
        let new_snapshot = dg.snapshot();
        state = state
            .patched(&new_snapshot, &outcome.delta)
            .expect("patched transpose");
        let mut engine = Engine::from_state(&new_snapshot, state).expect("rebound engine");
        // Arrivals start unranked with zero personalization mass — the
        // serving layer's growth rule.
        prev.resize(new_snapshot.num_nodes(), 0.0);
        if let Some(t) = &mut teleport {
            t.resize(new_snapshot.num_nodes(), 0.0);
        }
        let inc = engine
            .resolve_incremental_with_teleport(&prev, teleport.as_deref(), &outcome.delta)
            .expect("incremental refresh");
        let cold = engine
            .solve_with_teleport(teleport.as_deref())
            .expect("cold solve");
        let l1: f64 = cold
            .scores
            .iter()
            .zip(&inc.result.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        prop_assert!(
            l1 < 1e-8,
            "batch {i} ({:?}): incremental diverges from cold by {l1:.3e}",
            inc.mode
        );
        prev = inc.result.scores;
        state = engine.into_state();
        snapshot = new_snapshot;
    }
    let _ = &snapshot;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental == cold across β ∈ {0, ½, 1} and all three dangling
    /// policies, over arbitrary weighted + node-churn batch streams.
    #[test]
    fn weighted_churn_refresh_matches_cold(
        base in arb_weighted_graph(28, 100),
        raw in arb_ops(3, 10),
        p in -2.0f64..2.0,
        beta_ix in 0usize..3,
        policy_ix in 0u8..3,
    ) {
        let beta = [0.0, 0.5, 1.0][beta_ix];
        let model = TransitionModel::Blended { p, beta };
        let config = PageRankConfig {
            dangling: policy_from(policy_ix),
            tolerance: 1e-11,
            max_iterations: 2_000,
            ..Default::default()
        };
        let mut mirror = DeltaGraph::new(base.clone()).expect("weighted base");
        let batches = build_batches(&raw, &mut mirror);
        assert_incremental_matches_cold(base, &batches, model, config, None)?;
    }

    /// Same contract with sparse personalized teleports — the stored
    /// vector must ride id-space growth (zero mass on arrivals) and
    /// node removals without desyncing from the cold reference.
    #[test]
    fn weighted_churn_refresh_matches_cold_personalized(
        base in arb_weighted_graph(24, 80),
        raw in arb_ops(3, 8),
        p in -2.0f64..2.0,
        beta_ix in 0usize..3,
        seed_weights in proptest::collection::vec(0.1f64..5.0, 1..6),
    ) {
        let beta = [0.0, 0.5, 1.0][beta_ix];
        let n = base.num_nodes();
        let mut teleport = vec![0.0; n];
        for (i, &w) in seed_weights.iter().enumerate() {
            teleport[(i * 7 + 3) % n] += w;
        }
        let model = TransitionModel::Blended { p, beta };
        let config = PageRankConfig {
            tolerance: 1e-11,
            max_iterations: 2_000,
            ..Default::default()
        };
        let mut mirror = DeltaGraph::new(base.clone()).expect("weighted base");
        let batches = build_batches(&raw, &mut mirror);
        assert_incremental_matches_cold(base, &batches, model, config, Some(teleport))?;
    }

    /// From a weighted base, every supported edit validates: the
    /// `GraphError::WeightMismatch` arm (non-unit weight on an
    /// *unweighted* base) is unreachable, including for plain
    /// weight-1 `insert` calls mixed into weighted batches.
    #[test]
    fn weight_mismatch_is_unreachable_from_a_weighted_base(
        base in arb_weighted_graph(24, 80),
        raw in arb_ops(4, 12),
        plain in any::<bool>(),
    ) {
        let mut dg = DeltaGraph::new(base).expect("weighted base");
        for ops in &raw {
            let mut b = EdgeBatch::new();
            let mut grown = 0u32;
            for &(kind, u, v, w) in ops {
                let n = dg.num_nodes() as u32 + grown;
                let (u, v) = (u % n, v % n);
                match kind {
                    0 if plain => {
                        // Weight-1 structural insert on a weighted base.
                        b.insert(u, v);
                    }
                    0 => {
                        b.insert_weighted(u, v, w);
                    }
                    1 => {
                        b.set_weight(u, v, 0.5 + w);
                    }
                    2 => {
                        b.delete(u, v);
                    }
                    3 => {
                        b.add_nodes(1);
                        b.insert_weighted(n, u, w);
                        grown += 1;
                    }
                    _ => {
                        b.remove_node(u);
                    }
                }
            }
            let applied = dg.apply_batch(&b);
            prop_assert!(
                applied.is_ok(),
                "supported edits on a weighted base must validate: {:?}",
                applied.err()
            );
        }
    }
}

/// One single-edge re-weight refresh on a 400-node weighted world at the
/// given solver tolerance; returns the refresh outcome plus its L1
/// distance from a cold solve of the same engine.
fn single_edge_reweight_refresh(tolerance: f64) -> (ResolveMode, usize, f64) {
    let n: u32 = 400;
    let mut b = GraphBuilder::new(Direction::Undirected, n as usize);
    for v in 0..n {
        b.add_weighted_edge(v, (v + 1) % n, 1.0 + f64::from(v % 7) * 0.5);
        b.add_weighted_edge(v, (v * 17 + 5) % n, 0.5 + f64::from(v % 5));
    }
    let base = b.build().expect("weighted world");
    let model = TransitionModel::Blended { p: 0.6, beta: 0.5 };
    let config = PageRankConfig {
        tolerance,
        max_iterations: 2_000,
        ..Default::default()
    };

    let mut dg = DeltaGraph::new(base.clone()).expect("weighted base");
    let (prev, state) = {
        let mut engine = Engine::with_threads(&base, 1)
            .with_config(config)
            .expect("validated config");
        engine.set_model(model).expect("model");
        let scores = engine.solve().expect("base solve").scores;
        (scores, engine.into_state())
    };

    let mut batch = EdgeBatch::new();
    batch.set_weight(10, 11, 3.25);
    let outcome = dg.apply_batch(&batch).expect("single re-weight");
    assert_eq!(outcome.delta.reweighted.len(), 2, "both mirrored arcs");
    let snapshot = dg.snapshot();
    let state = state
        .patched(&snapshot, &outcome.delta)
        .expect("patched transpose");
    let mut engine = Engine::from_state(&snapshot, state).expect("rebound engine");
    let inc = engine
        .resolve_localized(&prev, &outcome.delta)
        .expect("localized refresh");
    let cold = engine.solve().expect("cold solve");
    let l1: f64 = cold
        .scores
        .iter()
        .zip(&inc.result.scores)
        .map(|(a, b)| (a - b).abs())
        .sum();
    (inc.mode, inc.frontier, l1)
}

/// The serving acceptance check, on a graph past the dense-GS threshold
/// (n > 128): a single-edge re-weight at the 1e-6 serving tolerance takes
/// the residual-localized path with a frontier that is a small fraction
/// of the graph — no forced sweep — and the same refresh matches a cold
/// weighted solve to ≤ 1e-7 L1 once the solver tolerance (1e-9) sits
/// below that budget (at 1e-6 both sides only promise ~tolerance-level
/// accuracy, so the gap is the stopping criterion's, not the incremental
/// machinery's).
#[test]
fn weighted_single_edge_refresh_stays_localized_at_serving_tolerance() {
    let (mode, frontier, _) = single_edge_reweight_refresh(1e-6);
    assert_eq!(
        mode,
        ResolveMode::LocalizedPush,
        "a weighted single-edge refresh must stay on the localized path"
    );
    assert!(
        frontier < 50,
        "frontier {frontier} is not localized on 400 nodes"
    );

    let (mode, _, l1) = single_edge_reweight_refresh(1e-9);
    assert_eq!(mode, ResolveMode::LocalizedPush);
    assert!(
        l1 <= 1e-7,
        "localized weighted refresh diverges from the cold solve by {l1:.3e}"
    );
}
